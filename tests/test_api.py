"""Tests of the stable repro.api facade."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RecordingTracer,
    Runtime,
    RuntimeConfig,
    Simulation,
    SimulationResult,
    TraceConfig,
)
from repro.baselines import jetscope_policy
from repro.obs import Category
from repro.sim.failures import FailureKind, FailureSpec
from repro.workloads import terasort


def _small_config(**overrides) -> RuntimeConfig:
    defaults = dict(n_machines=4, executors_per_machine=8)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


# ----------------------------------------------------------------------
# RuntimeConfig
# ----------------------------------------------------------------------

def test_config_dict_round_trip_is_exact():
    config = _small_config(reference_duration=50.0, fast_path=False)
    config.sim.seed = 7
    config.failure_plan.add(FailureSpec(
        kind=FailureKind.TASK_CRASH, stage="M1", at_fraction=0.5,
    ))
    payload = config.to_dict()
    rebuilt = RuntimeConfig.from_dict(payload)
    assert rebuilt.to_dict() == payload


def test_config_survives_json_serialization():
    payload = json.loads(json.dumps(_small_config().to_dict()))
    rebuilt = RuntimeConfig.from_dict(payload)
    assert rebuilt.to_dict() == _small_config().to_dict()


def test_config_round_trips_non_default_policy():
    config = _small_config(policy=jetscope_policy())
    rebuilt = RuntimeConfig.from_dict(config.to_dict())
    assert rebuilt.policy.name == config.policy.name
    assert rebuilt.policy.partitioner.name == config.policy.partitioner.name
    assert rebuilt.policy.recovery == config.policy.recovery


@pytest.mark.parametrize("overrides", [
    {"n_machines": 0},
    {"executors_per_machine": 0},
    {"reference_duration": -1.0},
    {"reference_duration": {"j": 0.0}},
])
def test_config_validation_rejects_bad_values(overrides):
    with pytest.raises(ValueError):
        RuntimeConfig(**overrides).validate()


def test_from_dict_rejects_unknown_partitioner():
    with pytest.raises(ValueError, match="partitioner"):
        RuntimeConfig.from_dict({"policy": {"partitioner": "nope"}})


# ----------------------------------------------------------------------
# TraceConfig
# ----------------------------------------------------------------------

def test_trace_config_rejects_unknown_format():
    with pytest.raises(ValueError, match="format"):
        TraceConfig(format="xml")


def test_trace_config_output_paths():
    both = TraceConfig(path="run.json", format="both")
    assert both.output_paths() == ["run.json", "run.jsonl"]
    assert TraceConfig(path=None).output_paths() == []
    assert TraceConfig(path="t", format="jsonl").output_paths() == ["t.jsonl"]


# ----------------------------------------------------------------------
# Simulation / Runtime
# ----------------------------------------------------------------------

def test_simulation_run_without_trace_still_aggregates_metrics():
    outcome = Simulation(_small_config()).run(terasort.terasort_job(10, 10))
    assert isinstance(outcome, SimulationResult)
    assert outcome.completed
    assert outcome.trace == []
    assert outcome.makespan > 0
    assert outcome.mean_latency > 0
    assert outcome.metrics.counter("jobs_completed").value == 1


def test_simulation_run_with_trace_records_and_exports(tmp_path):
    base = tmp_path / "run"
    outcome = Simulation(_small_config()).run(
        terasort.terasort_job(10, 10),
        trace=TraceConfig(path=str(base), format="both"),
    )
    assert outcome.completed
    task_spans = [r for r in outcome.trace if r.cat == Category.TASK]
    assert len(task_spans) == 20
    assert outcome.trace_files == [str(base) + ".json", str(base) + ".jsonl"]
    chrome = json.loads((tmp_path / "run.json").read_text())
    assert {e["ph"] for e in chrome["traceEvents"]} >= {"X", "M"}
    assert outcome.metrics.counter("tasks_finished").value == 20


def test_simulation_accepts_prebuilt_tracer():
    tracer = RecordingTracer()
    outcome = Simulation(_small_config()).run(
        terasort.terasort_job(6, 6), trace=tracer
    )
    assert outcome.trace and outcome.trace == tracer.records


def test_simulation_result_job_lookup():
    outcome = Simulation(_small_config()).run(terasort.terasort_job(6, 6))
    job_id = outcome.results[0].job_id
    assert outcome.job(job_id) is outcome.results[0]
    with pytest.raises(KeyError):
        outcome.job("missing")


def test_with_config_overrides_top_level_fields():
    sim = Simulation(_small_config()).with_config(n_machines=6)
    assert sim.config.n_machines == 6
    assert sim.config.executors_per_machine == 8


def test_runtime_facade_submit_run():
    runtime = Runtime(_small_config())
    runtime.submit(terasort.terasort_job(6, 6))
    results = runtime.run()
    assert len(results) == 1 and results[0].completed
    assert not runtime.tracer.enabled


def test_runtime_facade_validates_config():
    with pytest.raises(ValueError):
        Runtime(RuntimeConfig(n_machines=0))


def test_facade_reexported_from_package_root():
    import repro

    assert repro.Simulation is Simulation
    assert repro.RuntimeConfig is RuntimeConfig
    assert repro.TraceConfig is TraceConfig


# ----------------------------------------------------------------------
# SQL facade
# ----------------------------------------------------------------------

def _sql_fixture():
    from repro.sql import Catalog, TableSchema
    from repro.sql.catalog import _cols

    catalog = Catalog()
    catalog.register(TableSchema("t", _cols("x:int"), base_rows=3,
                                 bytes_per_row=8))
    return {"t": [{"x": 1}, {"x": 2}, {"x": 3}]}, catalog


def test_run_sql_facade_reports_engine():
    from repro.api import run_sql

    database, catalog = _sql_fixture()
    outcome = run_sql("select sum(x) as total from t", database,
                      catalog=catalog)
    assert outcome.rows == [{"total": 6}]
    assert outcome.engine == "columnar"
    assert outcome.requested == "auto"
    forced = run_sql("select sum(x) as total from t", database,
                     catalog=catalog, engine="row")
    assert forced.rows == outcome.rows
    assert forced.engine == "row"


def test_sql_engine_for_facade():
    from repro.api import sql_engine_for

    database, catalog = _sql_fixture()
    engine, reason = sql_engine_for("select x from t", database,
                                    catalog=catalog)
    assert engine == "columnar"
    assert reason


def test_run_sql_threads_observability():
    from repro.api import MetricsRegistry, run_sql

    database, catalog = _sql_fixture()
    metrics = MetricsRegistry()
    tracer = RecordingTracer()
    run_sql("select count(*) as n from t", database, catalog=catalog,
            metrics=metrics, tracer=tracer)
    assert metrics.to_dict()["counters"]["sql_queries"] == 1
    assert any(r.cat == "sql" for r in tracer.records)


def test_sql_facade_reexported_from_package_root():
    import repro
    from repro.api import QueryOutcome, run_sql

    assert repro.run_sql is run_sql
    assert repro.QueryOutcome is QueryOutcome


# ----------------------------------------------------------------------
# Unified submission path + deprecated aliases
# ----------------------------------------------------------------------

def test_runtime_submit_accepts_single_job_and_batches():
    runtime = Runtime(_small_config())
    runtime.submit(terasort.terasort_job(4, 4))
    runtime.submit([terasort.terasort_job(5, 4), terasort.terasort_job(6, 4)])
    results = runtime.run()
    assert len(results) == 3
    assert len({r.job_id for r in results}) == 3


def test_runtime_submit_all_is_deprecated_but_works():
    runtime = Runtime(_small_config())
    with pytest.warns(DeprecationWarning, match="submit_all is deprecated"):
        runtime.submit_all([terasort.terasort_job(4, 4)])
    assert len(runtime.run()) == 1


def test_runtime_execute_is_deprecated_but_works():
    runtime = Runtime(_small_config())
    with pytest.warns(DeprecationWarning, match="execute is deprecated"):
        result = runtime.execute(terasort.terasort_job(4, 4))
    assert result.completed


def test_simulation_run_jobs_keyword_is_deprecated():
    sim = Simulation(_small_config())
    with pytest.warns(DeprecationWarning, match="jobs=.*deprecated"):
        outcome = sim.run(jobs=terasort.terasort_job(4, 4))
    assert outcome.completed


def test_simulation_run_rejects_ambiguous_or_missing_workload():
    sim = Simulation(_small_config())
    job = terasort.terasort_job(4, 4)
    with pytest.raises(TypeError, match="not both"):
        sim.run(job, jobs=job)
    with pytest.raises(TypeError, match="needs a workload"):
        sim.run()


def test_service_facade_reexported_from_package_root():
    import repro
    from repro.api import (
        AdmissionPolicy,
        QueuePolicy,
        Service,
        ServiceConfig,
        ServiceResult,
        SubmitHandle,
        TenantReport,
        TenantSpec,
    )

    assert repro.Service is Service
    assert repro.ServiceConfig is ServiceConfig
    assert repro.ServiceResult is ServiceResult
    assert repro.SubmitHandle is SubmitHandle
    assert repro.TenantSpec is TenantSpec
    assert repro.TenantReport is TenantReport
    assert repro.AdmissionPolicy is AdmissionPolicy
    assert repro.QueuePolicy is QueuePolicy
