"""Tests for the trace-calibrated workload generators."""

from __future__ import annotations

import random

import pytest

from repro.core.dag import EdgeMode
from repro.core.shuffle import ShuffleScheme, select_scheme
from repro.sim.config import SimConfig
from repro.workloads import traces


def test_trace_matches_fig8_structure():
    jobs = traces.generate_trace(traces.TraceConfig(n_jobs=1000))
    stats = traces.trace_statistics(jobs)
    # Fig. 8(b): >80% of jobs have <=80 tasks and <=4 stages.
    assert stats["frac_tasks_le_80"] >= 0.80
    assert stats["frac_stages_le_4"] >= 0.80
    assert stats["max_stages"] <= 8


def test_trace_contains_large_jobs():
    jobs = traces.generate_trace(traces.TraceConfig(n_jobs=1000))
    assert max(j.dag.total_tasks() for j in jobs) > 300


def test_trace_deterministic_by_seed():
    a = traces.generate_trace(traces.TraceConfig(n_jobs=50, seed=5))
    b = traces.generate_trace(traces.TraceConfig(n_jobs=50, seed=5))
    assert [j.dag.total_tasks() for j in a] == [j.dag.total_tasks() for j in b]
    assert [j.submit_time for j in a] == [j.submit_time for j in b]
    c = traces.generate_trace(traces.TraceConfig(n_jobs=50, seed=6))
    assert [j.dag.total_tasks() for j in a] != [j.dag.total_tasks() for j in c]


def test_arrivals_are_monotone():
    jobs = traces.generate_trace(traces.TraceConfig(n_jobs=100))
    times = [j.submit_time for j in jobs]
    assert times == sorted(times)
    assert times[0] == 0.0


def test_all_trace_jobs_validate():
    for job in traces.generate_trace(traces.TraceConfig(n_jobs=200)):
        job.dag.validate()
        assert job.dag.sinks()


def test_work_tail_truncated():
    config = traces.TraceConfig(n_jobs=500, max_total_work=140.0)
    for job in traces.generate_trace(config):
        total_work = max(
            s.work_seconds_per_task or 0.0 for s in job.dag.stages.values()
        ) * len(job.dag)
        assert total_work <= 140.0 * 1.4 * len(job.dag)  # generous bound


def test_cluster_profiles_increase_in_depth():
    deep_fracs = []
    for profile in range(4):
        jobs = traces.cluster_profile_jobs(profile, n_jobs=150)
        deep = sum(1 for j in jobs if len(j.dag) >= 2) / len(jobs)
        deep_fracs.append(deep)
    assert deep_fracs[0] < deep_fracs[1] <= deep_fracs[3] + 0.05
    with pytest.raises(ValueError):
        traces.cluster_profile_jobs(4)


def test_shuffle_classes_hit_adaptive_bands():
    """The three Fig. 12 classes must land in the three adaptive bands."""
    config = SimConfig().shuffle
    expected = {
        "small": ShuffleScheme.DIRECT,
        "medium": ShuffleScheme.REMOTE,
        "large": ShuffleScheme.LOCAL,
    }
    for category, scheme in expected.items():
        m, n = traces.SHUFFLE_CLASSES[category]
        assert select_scheme(m * n, config) == scheme
        jobs = traces.shuffle_class_jobs(category, n_jobs=2)
        for job in jobs:
            assert job.dag.stage("src").task_count == m
            assert job.tags["shuffle_class"] == category
            assert job.dag.edge_mode(job.dag.edges[0]) == EdgeMode.BARRIER


def test_shuffle_class_rejects_unknown():
    with pytest.raises(ValueError):
        traces.shuffle_class_jobs("gigantic")


def test_generate_job_respects_stage_override():
    rng = random.Random(0)
    job = traces.generate_job(rng, "x", traces.TraceConfig(), n_stages=5)
    assert len(job.dag) == 5


def test_side_scan_shape_is_connected():
    # Force many samples; every generated DAG must be fully connected from
    # roots to sink (validate catches dangling stages via topo coverage).
    rng = random.Random(3)
    config = traces.TraceConfig()
    for i in range(200):
        job = traces.generate_job(rng, f"j{i}", config)
        order = job.dag.topo_order()
        assert len(order) == len(job.dag)
        sinks = job.dag.sinks()
        assert f"S{len(job.dag)}" in sinks


def test_max_stage_tasks_cap():
    config = traces.TraceConfig(n_jobs=300, max_stage_tasks=48)
    jobs = traces.generate_trace(config)
    assert max(s.task_count for j in jobs for s in j.dag.stages.values()) <= 48
