"""Tests for the chaos engine: campaigns, invariants, shrinking, repros."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    Campaign,
    ChaosEngine,
    PROFILES,
    generate_campaign,
)
from repro.core.failure import RecoveryCase, RecoveryDecision


def test_campaign_generation_is_deterministic():
    a = generate_campaign(7, "terasort", PROFILES["standard"], 8)
    b = generate_campaign(7, "terasort", PROFILES["standard"], 8)
    assert a.to_dict() == b.to_dict()
    c = generate_campaign(8, "terasort", PROFILES["standard"], 8)
    assert a.to_dict() != c.to_dict()


def test_campaign_round_trips_through_json(tmp_path):
    campaign = generate_campaign(3, "terasort", PROFILES["hostile"], 8)
    path = tmp_path / "campaign.json"
    campaign.save(str(path))
    assert Campaign.load(str(path)).to_dict() == campaign.to_dict()


def test_campaign_events_make_a_valid_failure_plan():
    campaign = generate_campaign(11, "terasort", PROFILES["hostile"], 8)
    plan = campaign.to_failure_plan()
    # Every event converted; FailureSpec construction validates each one.
    assert len(plan) == len(campaign.events)


def test_unknown_workload_and_profile_are_rejected():
    with pytest.raises(ValueError):
        ChaosEngine(workload="nope")
    with pytest.raises(ValueError):
        ChaosEngine(profile="nope")


def test_terasort_sweep_passes_invariants():
    report = ChaosEngine("terasort", "standard").sweep(range(5), shrink=False)
    assert report.ok, report.format_summary()
    assert report.runs == 5
    assert report.passed == 5


def test_sweep_is_deterministic():
    first = ChaosEngine("terasort", "standard").sweep(range(3), shrink=False)
    second = ChaosEngine("terasort", "standard").sweep(range(3), shrink=False)
    assert first.to_dict() == second.to_dict()


def test_campaigns_degrade_but_recover():
    """Campaigns with destructive events finish slower than the baseline."""
    engine = ChaosEngine("terasort", "standard")
    slowed = 0
    for seed in range(5):
        result = engine.run_seed(seed, shrink=False)
        assert result.passed
        if result.makespan > result.baseline_makespan:
            slowed += 1
    assert slowed >= 1


def test_replay_from_saved_repro(tmp_path):
    engine = ChaosEngine("terasort", "standard")
    path = tmp_path / "repro.json"
    engine.generate(1).save(str(path))
    assert engine.replay(str(path)).passed


def test_shrink_rejects_passing_campaign():
    engine = ChaosEngine("terasort", "standard")
    with pytest.raises(ValueError):
        engine.shrink(engine.generate(0))


def _broken_plan_recovery(*args, **kwargs):
    """A recovery planner that always declares the failure harmless."""
    return RecoveryDecision(case=RecoveryCase.INTRA_GRAPHLET, noop=True)


def test_mutation_broken_recovery_caught_and_shrunk(tmp_path, monkeypatch):
    """Deliberately break recovery: the invariants must catch it and the
    shrinker must reduce the campaign to a tiny replayable repro."""
    import repro.core.runtime as runtime_module

    monkeypatch.setattr(runtime_module, "plan_recovery", _broken_plan_recovery)
    engine = ChaosEngine("terasort", "standard", out_dir=str(tmp_path))
    result = None
    for seed in range(10):
        candidate = engine.run_seed(seed, shrink=True)
        if not candidate.passed:
            result = candidate
            break
    assert result is not None, "no campaign caught the broken recovery"
    assert any(v.invariant == "terminal-state" for v in result.violations)
    # Shrinking converged on a minimal repro.
    assert result.shrunk is not None
    assert len(result.shrunk.events) <= 3
    assert not engine.run_campaign(result.shrunk).passed
    # The JSON repro file replays to the same failure ...
    assert result.repro_path is not None
    assert not engine.replay(result.repro_path).passed
    # ... and the obs trail of failure/recovery spans was written.
    assert result.trace_path is not None
    with open(result.trace_path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert records


SHUFFLE_PROFILES = (
    "cache-worker-loss-during-shuffle",
    "mode-switch-under-crash",
    "replica-placement-skew",
)


def test_shuffle_v2_profiles_registered():
    from repro.sim.failures import FailureKind

    for name in SHUFFLE_PROFILES:
        profile = PROFILES[name]
        assert profile.name == name
        assert generate_campaign(0, "terasort", profile, 8).events
    # The failover profile is dominated by Cache Worker losses.
    weights = dict(PROFILES["cache-worker-loss-during-shuffle"].kind_weights)
    assert max(weights, key=weights.get) == FailureKind.CACHE_WORKER_LOSS.value


@pytest.mark.parametrize("profile", SHUFFLE_PROFILES)
def test_shuffle_v2_profiles_pass_invariants(profile):
    report = ChaosEngine("terasort", profile).sweep(range(3), shrink=False)
    assert report.ok, report.format_summary()
    assert report.passed == 3


def _runtime_with_log(records):
    from repro.core.policies import swift_policy
    from repro.core.runtime import SwiftRuntime
    from repro.sim.cluster import Cluster

    runtime = SwiftRuntime(Cluster.build(2, 4), swift_policy())
    runtime.shuffle_recovery_log.extend(records)
    return runtime


def _campaign(events):
    return Campaign(seed=0, workload="terasort", profile="light",
                    events=events)


def test_bounded_shuffle_recovery_invariant():
    from repro.chaos.campaign import ChaosEvent
    from repro.chaos.invariants import check_bounded_shuffle_recovery
    from repro.sim.failures import FailureKind

    loss = ChaosEvent(kind=FailureKind.CACHE_WORKER_LOSS.value,
                      at_fraction=0.5, machine_id=0)
    failover = {"job_id": "j", "edge_key": "a->b", "machine_id": 0,
                "survivors": 1, "action": "failover"}
    rerun = {"job_id": "j", "edge_key": "a->b", "machine_id": 0,
             "survivors": 0, "action": "rerun"}
    # Legitimate decisions pass.
    ok = check_bounded_shuffle_recovery(
        _campaign([loss]), _runtime_with_log([failover, rerun]))
    assert ok == []
    # A rerun despite surviving replicas is wasted recovery.
    bad_rerun = dict(rerun, survivors=1)
    out = check_bounded_shuffle_recovery(
        _campaign([loss]), _runtime_with_log([bad_rerun]))
    assert [v.invariant for v in out] == ["bounded-shuffle-recovery"]
    # A failover with no survivor cannot have served the share.
    bad_failover = dict(failover, survivors=0)
    out = check_bounded_shuffle_recovery(
        _campaign([loss]), _runtime_with_log([bad_failover]))
    assert len(out) == 1
    # Shuffle recovery without any injected Cache Worker loss is spurious.
    out = check_bounded_shuffle_recovery(
        _campaign([]), _runtime_with_log([failover]))
    assert len(out) == 1


def test_cli_chaos_sweep(tmp_path, capsys):
    from repro.cli import main

    code = main(["chaos", "--runs", "2", "--workload", "terasort",
                 "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "passed=2" in out


def test_chaos_report_is_exported_by_the_api():
    from repro.api import ChaosEngine as ApiEngine, ChaosReport

    report = ApiEngine("terasort", "light").sweep(range(2), shrink=False)
    assert isinstance(report, ChaosReport)
    assert report.ok
    payload = report.to_dict()
    assert payload["runs"] == 2
    assert json.dumps(payload)  # JSON-serializable end to end
