"""Tests for the Swift Admin controller model."""

from __future__ import annotations

import pytest

from repro.core.admin import SwiftAdmin
from repro.sim.config import AdminConfig


def make_admin(n_machines: int = 100) -> SwiftAdmin:
    return SwiftAdmin(AdminConfig(), n_machines)


def test_heartbeat_interval_scales_with_cluster():
    # Section IV-A: 5s / 10s / 15s for small / medium / large clusters.
    assert make_admin(100).heartbeat_interval == 5.0
    assert make_admin(2_000).heartbeat_interval == 10.0
    assert make_admin(50_000).heartbeat_interval == 15.0


def test_dispatch_times_are_serialized():
    admin = make_admin()
    times = admin.dispatch_times(0.0, 5)
    assert len(times) == 5
    ept = admin.config.event_processing_time
    for a, b in zip(times, times[1:]):
        assert b - a == pytest.approx(ept)
    assert times[0] == pytest.approx(ept + admin.config.dispatch_latency)


def test_dispatch_backlog_carries_over():
    admin = make_admin()
    first = admin.dispatch_times(0.0, 100)
    second = admin.dispatch_times(0.0, 1)
    assert second[0] > first[-1] - admin.config.dispatch_latency


def test_admit_ops_accounting():
    admin = make_admin()
    admin.admit_ops(0.0, 10)
    assert admin.stats.events_processed == 10
    assert admin.backlog == pytest.approx(10 * admin.config.event_processing_time)


def test_admit_ops_rejects_negative():
    with pytest.raises(ValueError):
        make_admin().admit_ops(0.0, -1)
    with pytest.raises(ValueError):
        make_admin().dispatch_times(0.0, -1)


def test_dispatch_times_empty():
    assert make_admin().dispatch_times(0.0, 0) == []


def test_health_monitor_marks_read_only_after_burst():
    admin = make_admin()
    threshold = admin.config.unhealthy_task_failures
    flagged = [admin.record_task_failure(7, now=float(i)) for i in range(threshold)]
    assert flagged[-1] is True
    assert flagged[:-1] == [False] * (threshold - 1)
    assert 7 in admin.health.read_only
    assert admin.stats.machines_marked_read_only == 1


def test_health_monitor_window_expiry():
    admin = make_admin()
    window = admin.config.unhealthy_window
    threshold = admin.config.unhealthy_task_failures
    # Failures spread wider than the window never trigger quarantine.
    for i in range(threshold * 2):
        assert admin.record_task_failure(3, now=i * (window + 1)) is False


def test_quarantine_episode_counts_exactly_once():
    admin = make_admin()
    assert admin.quarantine_machine(5) is True
    assert admin.stats.machines_marked_read_only == 1
    # Re-quarantining inside the same episode does not double-count.
    assert admin.quarantine_machine(5) is False
    assert admin.stats.machines_marked_read_only == 1
    assert 5 in admin.health.read_only


def test_recover_then_requarantine_starts_new_episode():
    admin = make_admin()
    admin.quarantine_machine(5)
    assert admin.record_machine_recovered(5) is True
    assert 5 not in admin.health.read_only
    assert admin.quarantine_machine(5) is True
    assert admin.stats.machines_marked_read_only == 2


def test_recover_unquarantined_machine_is_noop():
    admin = make_admin()
    assert admin.record_machine_recovered(3) is False
    assert admin.stats.machines_marked_read_only == 0


def test_recovery_clears_failure_history():
    admin = make_admin()
    threshold = admin.config.unhealthy_task_failures
    for i in range(threshold):
        admin.record_task_failure(7, now=float(i))
    assert 7 in admin.health.read_only
    admin.record_machine_recovered(7)
    # One more failure is far below the burst threshold again.
    assert admin.record_task_failure(7, now=float(threshold)) is False
    assert 7 not in admin.health.read_only


def test_status_counters():
    admin = make_admin()
    admin.record_status_report()
    admin.record_heartbeat()
    assert admin.stats.status_reports == 1
    assert admin.stats.heartbeats_received == 1


def test_plan_cache_hits_and_misses():
    admin = make_admin()
    assert admin.plan_cached("job", "s1") is False
    assert admin.plan_cached("job", "s1") is True
    assert admin.plan_cached("job", "s2") is False
    assert admin.stats.plan_cache_hits == 1
    assert admin.stats.plan_cache_misses == 2


def test_plan_cache_job_eviction():
    admin = make_admin()
    admin.plan_cached("a", "s1")
    admin.plan_cached("b", "s1")
    admin.drop_job_plans("a")
    assert admin.plan_cached("a", "s1") is False
    assert admin.plan_cached("b", "s1") is True


def test_recovery_hits_plan_cache():
    from repro.core.policies import swift_policy
    from repro.core.runtime import SwiftRuntime
    from repro.sim.cluster import Cluster
    from repro.sim.failures import FailureKind, FailurePlan, FailureSpec
    from conftest import as_job, chain_dag

    dag = chain_dag("pc", blocking_stages=(1,), tasks=4)
    baseline = SwiftRuntime(Cluster.build(4, 8), swift_policy()).execute(
        as_job(chain_dag("pc0", blocking_stages=(1,), tasks=4))
    ).metrics.run_time
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.3)
    runtime = SwiftRuntime(
        Cluster.build(4, 8), swift_policy(),
        failure_plan=FailurePlan([spec]), reference_duration=baseline,
    )
    runtime.execute(as_job(dag))
    assert runtime.admin.stats.plan_cache_hits >= 1
