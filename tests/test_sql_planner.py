"""Tests for logical planning and physical DAG compilation."""

from __future__ import annotations

import pytest

from repro.core.dag import EdgeMode
from repro.core.operators import OperatorKind as K
from repro.core.partition import partition_job
from repro.sql import FIG1_QUERY
from repro.sql.catalog import Catalog, CatalogError, DEFAULT_CATALOG
from repro.sql.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    PlanError,
    explain,
    plan_statement,
    scans_in,
)
from repro.sql.parser import parse
from repro.sql.physical import compile_sql


def plan(sql):
    return plan_statement(parse(sql), DEFAULT_CATALOG)


def test_scan_filter_project():
    node = plan("select l_orderkey from lineitem where l_quantity > 10")
    assert isinstance(node, LogicalProject)
    assert isinstance(node.child, LogicalFilter)
    assert isinstance(node.child.child, LogicalScan)
    assert node.child.child.table == "lineitem"


def test_join_tree_left_deep():
    node = plan(
        "select 1 from lineitem l join orders o on l.l_orderkey = o.o_orderkey "
        "join part p on p.p_partkey = l.l_partkey"
    )
    assert isinstance(node, LogicalProject)
    top = node.child
    assert isinstance(top, LogicalJoin)
    assert isinstance(top.left, LogicalJoin)
    assert isinstance(top.right, LogicalScan)


def test_aggregate_sort_limit_stack():
    node = plan(
        "select l_returnflag, sum(l_quantity) q from lineitem "
        "group by l_returnflag order by q desc limit 5"
    )
    assert isinstance(node, LogicalLimit)
    assert isinstance(node.child, LogicalSort)
    assert isinstance(node.child.child, LogicalAggregate)


def test_aggregate_without_group_by():
    node = plan("select sum(l_quantity) from lineitem")
    assert isinstance(node, LogicalAggregate)
    assert node.group_by == []


def test_tpch_prefix_resolves():
    node = plan("select 1 from tpch_lineitem")
    assert scans_in(node)[0].table == "lineitem"


def test_unknown_table_raises():
    with pytest.raises(CatalogError):
        plan("select 1 from nonexistent")


def test_select_without_from_rejected():
    with pytest.raises(PlanError):
        plan("select 1")


def test_explain_renders_tree():
    text = explain(plan("select a from lineitem where l_quantity > 1 order by a"))
    assert "Scan(lineitem" in text
    assert "Sort" in text


def test_compile_produces_valid_dag():
    dag = compile_sql(
        "select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag",
        scale_factor=100,
    )
    dag.validate()
    kinds = [op.kind for s in dag.stages.values() for op in s.operators]
    assert K.TABLE_SCAN in kinds
    assert K.STREAMED_AGGREGATE in kinds
    assert K.ADHOC_SINK in kinds


def test_compile_join_stages_are_blocking():
    """Sort-merge joins produce blocking stages, so their outgoing edges
    are barriers — the Fig. 4 pattern."""
    dag = compile_sql(
        "select 1 from lineitem l join orders o on l.l_orderkey = o.o_orderkey",
        scale_factor=100,
    )
    join_stages = [s for s in dag.stages.values() if s.name.startswith("J")]
    assert join_stages and all(s.is_blocking for s in join_stages)
    for stage in join_stages:
        for edge in dag.out_edges(stage.name):
            assert dag.edge_mode(edge) == EdgeMode.BARRIER


def test_compile_fig1_matches_q9_shape():
    """The Fig. 1 text compiles to a DAG with Q9's structure: 6 scans,
    5 joins, an aggregate, a sort, and a sink, partitioned into multiple
    graphlets."""
    dag = compile_sql(FIG1_QUERY, scale_factor=1000, job_id="q9")
    scans = [s for s in dag.stages.values() if s.name.startswith("M")]
    joins = [s for s in dag.stages.values() if s.name.startswith("J")]
    assert len(scans) == 6
    assert len(joins) == 5
    graph = partition_job(dag)
    assert len(graph) >= 4
    assert dag.sinks() == [dag.topo_order()[-1]]


def test_scale_factor_scales_tasks():
    small = compile_sql("select 1 from lineitem", scale_factor=1)
    large = compile_sql("select 1 from lineitem", scale_factor=1000)
    assert large.total_tasks() > small.total_tasks()


def test_compiled_dag_runs_on_simulator():
    from repro import Cluster, Job, SwiftRuntime, swift_policy

    dag = compile_sql(FIG1_QUERY, scale_factor=50, job_id="sim_q9")
    runtime = SwiftRuntime(Cluster.build(20, 16), swift_policy())
    result = runtime.execute(Job(dag=dag))
    assert result.completed
    assert result.metrics.run_time > 0


def test_custom_catalog_registration():
    from repro.sql.catalog import Column, TableSchema

    catalog = Catalog()
    catalog.register(
        TableSchema("events", (Column("ts", "int"),), base_rows=10, bytes_per_row=8)
    )
    node = plan_statement(parse("select ts from events"), catalog)
    assert scans_in(node)[0].table == "events"
