"""Tests for the TPC-H workload DAGs."""

from __future__ import annotations

import pytest

from repro.core.dag import EdgeMode
from repro.core.partition import partition_job
from repro.workloads import tpch


def test_all_22_queries_build_and_validate():
    for q in tpch.ALL_QUERIES:
        dag = tpch.query_dag(q)
        dag.validate()
        assert len(dag.sinks()) == 1
        assert dag.total_tasks() > 1


def test_query_numbering():
    assert tpch.ALL_QUERIES == tuple(range(1, 23))
    with pytest.raises(ValueError):
        tpch.query_dag(0)
    with pytest.raises(ValueError):
        tpch.query_dag(23)


def test_q9_task_counts_match_fig4():
    dag = tpch.query_dag(9)
    expected = {"M1": 956, "M2": 220, "M3": 3, "M5": 403, "M7": 220, "M8": 20}
    for stage, tasks in expected.items():
        assert dag.stage(stage).task_count == tasks


def test_q9_barrier_edges_match_fig4():
    """J4, J6 and J10 contain MergeSort, so their outgoing edges are the
    barrier edges of Fig. 4."""
    dag = tpch.query_dag(9)
    barriers = {
        (e.src, e.dst) for e in dag.edges if dag.edge_mode(e) == EdgeMode.BARRIER
    }
    assert barriers == {("J4", "J6"), ("J6", "J10"), ("J10", "R11")}


def test_q13_task_counts_match_fig13():
    dag = tpch.query_dag(13)
    for row in tpch.Q13_DETAILS:
        assert dag.stage(str(row["stage"])).task_count == row["tasks"]


def test_q13_chain_structure():
    dag = tpch.query_dag(13)
    assert dag.successors("J3") == ["R4"]
    assert set(dag.predecessors("J3")) == {"M1", "M2"}
    assert dag.sinks() == ["R6"]


def test_scale_parameter_shrinks_volumes():
    full = tpch.query_dag(3, scale=1.0)
    small = tpch.query_dag(3, scale=0.1)
    # The split size stays fixed, so scan *task counts* shrink with the
    # data while per-task bytes stay roughly constant.
    assert small.total_tasks() < full.total_tasks()

    def total_scan(dag):
        return sum(
            s.scan_bytes_per_task * s.task_count for s in dag.stages.values()
        )

    assert total_scan(small) == pytest.approx(total_scan(full) * 0.1, rel=0.2)


def test_scan_task_count_formula():
    assert tpch.scan_task_count("lineitem", 1.0) == 956
    assert tpch.scan_task_count("nation", 1.0) == 1


def test_query_job_wrapper():
    job = tpch.query_job(5, submit_time=3.0)
    assert job.submit_time == 3.0
    assert job.job_id == "tpch_q5"


def test_custom_job_id():
    dag = tpch.query_dag(1, job_id="custom")
    assert dag.job_id == "custom"


def test_queries_have_sensible_graphlet_counts():
    for q in tpch.ALL_QUERIES:
        graph = partition_job(tpch.query_dag(q))
        assert 1 <= len(graph) <= 8


def test_critical_stage_list_exists_in_q9():
    dag = tpch.query_dag(9)
    for stage in tpch.Q9_CRITICAL_STAGES:
        assert stage in dag.stages
