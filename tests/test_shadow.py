"""Tests for the shadow-controller failover model."""

from __future__ import annotations

import pytest

from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.core.shadow import FailoverEvent, ShadowController
from repro.sim.cluster import Cluster

from conftest import as_job, chain_dag


def test_failover_event_validation():
    with pytest.raises(ValueError):
        FailoverEvent(at_time=-1.0)
    with pytest.raises(ValueError):
        FailoverEvent(at_time=1.0, failover_seconds=-1.0)


def test_window_lookup():
    shadow = ShadowController().add(FailoverEvent(at_time=10.0, failover_seconds=3.0))
    assert shadow.window_at(9.9) is None
    assert shadow.window_at(10.0) == (10.0, 13.0)
    assert shadow.window_at(12.9) == (10.0, 13.0)
    assert shadow.window_at(13.0) is None


def test_next_available_outside_window_is_now():
    shadow = ShadowController().add(FailoverEvent(at_time=10.0))
    assert shadow.next_available(5.0) == 5.0
    assert shadow.next_available(20.0) == 20.0


def test_next_available_inside_window_waits():
    shadow = ShadowController().add(FailoverEvent(at_time=10.0, failover_seconds=3.0))
    assert shadow.next_available(11.0) == 13.0


def test_chained_failovers_accumulate():
    shadow = ShadowController()
    shadow.add(FailoverEvent(at_time=10.0, failover_seconds=3.0))
    shadow.add(FailoverEvent(at_time=12.0, failover_seconds=5.0))
    # Leaving the first window at 13.0 lands inside the second (ends 17.0).
    assert shadow.next_available(10.5) == 17.0


def test_completion_counter():
    shadow = ShadowController().add(FailoverEvent(at_time=1.0, failover_seconds=1.0))
    shadow.record_completion(0.5)
    assert shadow.failovers_completed == 0
    shadow.record_completion(2.5)
    assert shadow.failovers_completed == 1


def _run(dag, shadow=None):
    runtime = SwiftRuntime(Cluster.build(4, 8), swift_policy(), shadow=shadow)
    return runtime.execute(as_job(dag))


def test_failover_delays_dispatch_but_job_completes():
    dag = chain_dag("fo", blocking_stages=(1,))
    baseline = _run(chain_dag("fo0", blocking_stages=(1,))).metrics.run_time
    # Fail over right when graphlet 2 would be submitted.
    shadow = ShadowController().add(
        FailoverEvent(at_time=baseline * 0.3, failover_seconds=5.0)
    )
    result = _run(dag, shadow=shadow)
    assert result.completed
    assert result.metrics.run_time > baseline
    assert result.metrics.run_time < baseline + 10.0


def test_failover_before_submit_shifts_everything():
    shadow = ShadowController().add(FailoverEvent(at_time=0.0, failover_seconds=4.0))
    result = _run(chain_dag("fo2"), shadow=shadow)
    assert min(t.plan_arrive for t in result.metrics.tasks) >= 4.0
