"""Unit tests for the bench regression gate (``repro bench --check``)."""

from __future__ import annotations

import pytest

from repro.experiments.bench import CHECK_METRICS, compare_payloads


def _payload(**speedups):
    return {name: {"speedup": value} for name, value in speedups.items()}


def test_identical_payloads_pass():
    payload = _payload(terasort=3.0, q1_aggregate=6.0)
    assert compare_payloads(payload, payload) == []


def test_regression_beyond_tolerance_is_reported():
    committed = _payload(q1_aggregate=8.0)
    fresh = _payload(q1_aggregate=5.0)  # 37.5% drop > 25% tolerance
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "q1_aggregate.speedup" in problems[0]


def test_drop_within_tolerance_passes():
    committed = _payload(hash_join=4.0)
    fresh = _payload(hash_join=3.2)  # 20% drop < 25% tolerance
    assert compare_payloads(committed, fresh) == []


def test_improvement_always_passes():
    assert compare_payloads(_payload(terasort=2.0), _payload(terasort=9.0)) == []


def test_custom_tolerance():
    committed = _payload(filter_project=10.0)
    fresh = _payload(filter_project=9.4)
    assert compare_payloads(committed, fresh, tolerance=0.1) == []
    assert compare_payloads(committed, fresh, tolerance=0.05)


def test_missing_scenarios_are_skipped():
    # An old committed file without the SQL scenarios compares cleanly.
    committed = _payload(terasort=3.0)
    fresh = _payload(terasort=3.0, q1_aggregate=6.0)
    assert compare_payloads(committed, fresh) == []
    assert compare_payloads(fresh, committed) == []


def test_ungated_metrics_are_ignored():
    committed = {"terasort": {"speedup": 3.0, "fast_tasks_per_s": 100.0}}
    fresh = {"terasort": {"speedup": 3.0, "fast_tasks_per_s": 1.0}}
    assert compare_payloads(committed, fresh) == []


def test_invalid_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_payloads({}, {}, tolerance=1.5)
    with pytest.raises(ValueError):
        compare_payloads({}, {}, tolerance=-0.1)


def test_gated_metrics_are_relative_only():
    # Absolute rates are host-dependent; the gate must only watch ratios.
    for metrics in CHECK_METRICS.values():
        assert all("per_s" not in metric and "ms" not in metric
                   for metric in metrics)
