"""Unit tests for the bench regression gate (``repro bench --check``)."""

from __future__ import annotations

import pytest

from repro.experiments.bench import CHECK_METRICS, compare_payloads


def _payload(**speedups):
    return {name: {"speedup": value} for name, value in speedups.items()}


def test_identical_payloads_pass():
    payload = _payload(terasort=3.0, q1_aggregate=6.0)
    assert compare_payloads(payload, payload) == []


def test_regression_beyond_tolerance_is_reported():
    committed = _payload(q1_aggregate=8.0)
    fresh = _payload(q1_aggregate=5.0)  # 37.5% drop > 25% tolerance
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "q1_aggregate.speedup" in problems[0]


def test_drop_within_tolerance_passes():
    committed = _payload(hash_join=4.0)
    fresh = _payload(hash_join=3.2)  # 20% drop < 25% tolerance
    assert compare_payloads(committed, fresh) == []


def test_improvement_always_passes():
    assert compare_payloads(_payload(terasort=2.0), _payload(terasort=9.0)) == []


def test_custom_tolerance():
    committed = _payload(filter_project=10.0)
    fresh = _payload(filter_project=9.4)
    assert compare_payloads(committed, fresh, tolerance=0.1) == []
    assert compare_payloads(committed, fresh, tolerance=0.05)


def test_missing_scenarios_are_skipped():
    # An old committed file without the SQL scenarios compares cleanly.
    committed = _payload(terasort=3.0)
    fresh = _payload(terasort=3.0, q1_aggregate=6.0)
    assert compare_payloads(committed, fresh) == []
    assert compare_payloads(fresh, committed) == []


def test_ungated_metrics_are_ignored():
    committed = {"terasort": {"speedup": 3.0, "fast_tasks_per_s": 100.0}}
    fresh = {"terasort": {"speedup": 3.0, "fast_tasks_per_s": 1.0}}
    assert compare_payloads(committed, fresh) == []


def test_invalid_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_payloads({}, {}, tolerance=1.5)
    with pytest.raises(ValueError):
        compare_payloads({}, {}, tolerance=-0.1)


def test_gated_metrics_are_relative_only():
    # Absolute rates are host-dependent; the gate must only watch ratios.
    for metrics in CHECK_METRICS.values():
        assert all("per_s" not in metric and "ms" not in metric
                   for metric in metrics)


def test_parallel_replay_serial_mode_skips_speedup_gate():
    # A serial-degraded run (1-CPU host) commits speedup 1.0 by
    # construction; neither direction of the comparison may gate on it.
    pooled = {"parallel_replay": {"speedup": 2.5, "mode": "process-pool"}}
    degraded = {"parallel_replay": {"speedup": 1.0, "mode": "serial"}}
    assert compare_payloads(pooled, degraded) == []
    assert compare_payloads(degraded, pooled) == []
    assert compare_payloads(degraded, degraded) == []


def test_parallel_replay_pooled_runs_still_gated():
    committed = {"parallel_replay": {"speedup": 2.5, "mode": "process-pool"}}
    fresh = {"parallel_replay": {"speedup": 1.2, "mode": "process-pool"}}
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "parallel_replay.speedup" in problems[0]


def test_scale_kernel_speedup_is_gated():
    committed = {"scale": {"kernel_speedup": 2.5, "events_per_s": 4e5}}
    fresh = {"scale": {"kernel_speedup": 1.0, "events_per_s": 1e5}}
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "scale.kernel_speedup" in problems[0]


def test_merge_payload_preserves_other_scenarios(tmp_path):
    import json

    from repro.experiments.bench import merge_payload, write_payload

    path = str(tmp_path / "bench.json")
    write_payload(path, {"terasort": {"speedup": 2.0}, "scale": {"kernel_speedup": 1.0}})
    merged = merge_payload(path, {"scale": {"kernel_speedup": 2.5}})
    assert merged["terasort"] == {"speedup": 2.0}
    assert merged["scale"] == {"kernel_speedup": 2.5}
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == merged


def test_service_overhead_ceiling_is_absolute():
    # The <10% gateway overhead budget fires on the fresh payload alone,
    # even when the committed file predates the service scenario.
    fresh_bad = {"service": {"direct_vs_gateway": 0.9, "overhead_frac": 0.12}}
    problems = compare_payloads({}, fresh_bad)
    assert len(problems) == 1
    assert "overhead budget" in problems[0]
    fresh_good = {"service": {"direct_vs_gateway": 1.0, "overhead_frac": 0.04}}
    assert compare_payloads({}, fresh_good) == []


def test_service_ratio_rides_relative_gate():
    committed = {"service": {"direct_vs_gateway": 1.0, "overhead_frac": 0.0}}
    fresh = {"service": {"direct_vs_gateway": 0.5, "overhead_frac": 0.05}}
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "service.direct_vs_gateway" in problems[0]


def test_shuffle_recovery_floor_is_absolute():
    # v2 failover must beat v1 producer rerun on the fresh payload alone,
    # regardless of what (if anything) the committed file holds.
    fresh_bad = {"shuffle": {"recovery_improvement": 0.8}}
    problems = compare_payloads({}, fresh_bad)
    assert len(problems) == 1
    assert "failover" in problems[0]
    fresh_good = {"shuffle": {"recovery_improvement": 50.0}}
    assert compare_payloads({}, fresh_good) == []


def test_shuffle_improvement_rides_relative_gate():
    committed = {"shuffle": {"recovery_improvement": 100.0}}
    fresh = {"shuffle": {"recovery_improvement": 10.0}}
    problems = compare_payloads(committed, fresh)
    assert len(problems) == 1
    assert "shuffle.recovery_improvement" in problems[0]
