"""Tests for machines, executors, and cluster capacity."""

from __future__ import annotations

import pytest

from repro.sim.cluster import Cluster, ExecutorState, Machine, MachineState
from repro.sim.config import SimConfig


def test_build_dimensions():
    cluster = Cluster.build(5, 8)
    assert cluster.n_machines == 5
    assert cluster.total_executors() == 40
    assert cluster.free_executor_count() == 40
    assert cluster.busy_executor_count() == 0


def test_build_rejects_bad_dimensions():
    with pytest.raises(ValueError):
        Cluster.build(0, 8)
    with pytest.raises(ValueError):
        Cluster.build(4, 0)
    with pytest.raises(ValueError):
        Cluster([], SimConfig())


def test_build_uses_config_default_executor_count():
    config = SimConfig()
    cluster = Cluster.build(2, config=config)
    assert cluster.total_executors() == 2 * config.executors_per_machine


def test_executor_assign_start_release_cycle():
    machine = Machine(0, 2)
    executor = machine.executors[0]
    executor.assign("task")
    assert executor.state == ExecutorState.ASSIGNED
    executor.start()
    assert executor.state == ExecutorState.RUNNING
    assert machine.busy_count() == 1
    executor.release()
    assert executor.state == ExecutorState.IDLE
    assert executor.current_task is None


def test_executor_double_assign_raises():
    machine = Machine(0, 1)
    executor = machine.executors[0]
    executor.assign("a")
    with pytest.raises(RuntimeError):
        executor.assign("b")


def test_executor_start_without_assign_raises():
    machine = Machine(0, 1)
    with pytest.raises(RuntimeError):
        machine.executors[0].start()


def test_executor_relaunch_changes_pid():
    machine = Machine(0, 1)
    executor = machine.executors[0]
    old_pid = executor.pid
    executor.assign("t")
    executor.relaunch()
    assert executor.pid != old_pid
    assert executor.state == ExecutorState.IDLE


def test_machine_load():
    machine = Machine(0, 4)
    assert machine.load() == 0.0
    machine.executors[0].assign("t")
    assert machine.load() == pytest.approx(0.25)


def test_read_only_machine_rejects_new_tasks():
    machine = Machine(0, 4)
    machine.mark_read_only()
    assert machine.state == MachineState.READ_ONLY
    assert not machine.accepts_tasks
    assert machine.alive
    assert machine.free_executors() == []


def test_dead_machine_revokes_executors():
    machine = Machine(0, 4)
    machine.executors[0].assign("t")
    machine.mark_dead()
    assert not machine.alive
    assert all(e.state == ExecutorState.REVOKED for e in machine.executors)


def test_dead_machine_not_marked_read_only():
    machine = Machine(0, 1)
    machine.mark_dead()
    machine.mark_read_only()
    assert machine.state == MachineState.DEAD


def test_record_failure_window():
    machine = Machine(0, 1)
    assert machine.record_failure(now=10.0, window=30.0) == 1
    assert machine.record_failure(now=20.0, window=30.0) == 2
    # The first failure ages out of the window.
    assert machine.record_failure(now=45.0, window=30.0) == 2


def test_schedulable_excludes_read_only_and_dead():
    cluster = Cluster.build(3, 2)
    cluster.machines[0].mark_read_only()
    cluster.machines[1].mark_dead()
    assert len(cluster.schedulable_machines()) == 1
    assert len(cluster.alive_machines()) == 2
    assert cluster.free_executor_count() == 2


def test_machines_used_by():
    cluster = Cluster.build(3, 2)
    executors = [cluster.machines[0].executors[0], cluster.machines[0].executors[1],
                 cluster.machines[2].executors[0]]
    assert cluster.machines_used_by(executors) == 2


def test_iter_executors_covers_all():
    cluster = Cluster.build(3, 4)
    assert len(list(cluster.iter_executors())) == 12
