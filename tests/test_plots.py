"""Tests for the text plotting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.plots import bar_chart, sparkline, xy_plot


def test_sparkline_basic():
    line = sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] == " " and line[-1] == "@"


def test_sparkline_empty_and_flat():
    assert sparkline([]) == ""
    assert set(sparkline([0, 0, 0])) == {" "}


def test_sparkline_downsamples():
    assert len(sparkline(list(range(1000)), width=50)) <= 50


def test_bar_chart_alignment():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="s")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5
    assert "1.00s" in lines[0]


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert bar_chart([], []) == ""


def test_xy_plot_contains_markers_and_legend():
    text = xy_plot([1, 2, 3], {"ideal": [1, 2, 3], "measured": [1, 1.8, 2.5]})
    assert "o=ideal" in text
    assert "x=measured" in text
    assert "o" in text and "x" in text
    assert "x: 1 .. 3" in text


def test_xy_plot_length_mismatch():
    with pytest.raises(ValueError):
        xy_plot([1, 2], {"a": [1.0]})
    assert xy_plot([], {}) == ""
