"""Tests for adaptive shuffle selection and the cost model."""

from __future__ import annotations

import pytest

from repro.core.shuffle import (
    ShuffleCostModel,
    ShuffleModeController,
    ShuffleScheme,
    connection_count,
    memory_copies,
    plan_partition_merge,
    resolve_scheme,
    select_scheme,
)
from repro.sim.config import ShuffleConfig, SimConfig
from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel

GB = 1e9
MiB = 1024 ** 2


@pytest.fixture
def model() -> ShuffleCostModel:
    config = SimConfig()
    return ShuffleCostModel(config, NetworkModel(config.network), DiskModel(config.disk))


def test_adaptive_thresholds_match_production_settings(config):
    # Section III-B: thresholds at 10,000 and 90,000 edges.
    assert select_scheme(0, config.shuffle) == ShuffleScheme.DIRECT
    assert select_scheme(10_000, config.shuffle) == ShuffleScheme.DIRECT
    assert select_scheme(10_001, config.shuffle) == ShuffleScheme.REMOTE
    assert select_scheme(90_000, config.shuffle) == ShuffleScheme.REMOTE
    assert select_scheme(90_001, config.shuffle) == ShuffleScheme.LOCAL


def test_select_scheme_rejects_negative(config):
    with pytest.raises(ValueError):
        select_scheme(-1, config.shuffle)


def test_resolve_scheme_passthrough_and_adaptive(config):
    assert resolve_scheme(ShuffleScheme.DISK, 10**9, config.shuffle) == ShuffleScheme.DISK
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 5_000, config.shuffle) == ShuffleScheme.DIRECT
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 50_000, config.shuffle) == ShuffleScheme.REMOTE
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 500_000, config.shuffle) == ShuffleScheme.LOCAL


def test_connection_counts_match_paper_formulas():
    # Section III-B: Direct M*N, Local M+N+C(Y,2), Remote M+N*Y.
    m, n, y = 100, 80, 10
    assert connection_count(ShuffleScheme.DIRECT, m, n, y) == 8_000
    assert connection_count(ShuffleScheme.LOCAL, m, n, y) == 100 + 80 + 45
    assert connection_count(ShuffleScheme.REMOTE, m, n, y) == 100 + 800
    assert connection_count(ShuffleScheme.DISK, m, n, y) == 8_000


def test_local_has_fewest_connections_when_y_small():
    # "Local Shuffle has the least TCP connections between tasks" because
    # Y is much smaller than M and N.
    m, n, y = 1000, 1000, 10
    local = connection_count(ShuffleScheme.LOCAL, m, n, y)
    remote = connection_count(ShuffleScheme.REMOTE, m, n, y)
    direct = connection_count(ShuffleScheme.DIRECT, m, n, y)
    assert local < remote < direct


def test_connection_count_rejects_bad_inputs():
    with pytest.raises(ValueError):
        connection_count(ShuffleScheme.DIRECT, 0, 1, 1)
    with pytest.raises(ValueError):
        connection_count(ShuffleScheme.ADAPTIVE, 1, 1, 1)


def test_memory_copies_match_paper():
    # Direct has the fewest copies; Local adds two; Remote is in between.
    assert memory_copies(ShuffleScheme.DIRECT) == 0
    assert memory_copies(ShuffleScheme.LOCAL) == 2
    assert memory_copies(ShuffleScheme.REMOTE) == 1
    assert memory_copies(ShuffleScheme.DISK) == 0


def test_edge_cost_rejects_bad_inputs(model):
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.DIRECT, -1, 1, 1, 1)
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.DIRECT, 1, 0, 1, 1)


def test_direct_wins_small_shuffles(model):
    """For small shuffles the extra memory copies make the cache-mediated
    schemes slower (Fig. 12's small class)."""
    kwargs = dict(total_bytes=20 * GB, m=60, n=60, y=4, concurrent_connections=4_000)
    direct = model.edge_cost(ShuffleScheme.DIRECT, **kwargs)
    local = model.edge_cost(ShuffleScheme.LOCAL, **kwargs)
    remote = model.edge_cost(ShuffleScheme.REMOTE, **kwargs)
    d = direct.write_per_task + direct.read_per_task
    assert d <= local.write_per_task + local.read_per_task
    assert d <= remote.write_per_task + remote.read_per_task + 0.05


def test_remote_wins_medium_shuffles(model):
    """Direct's M x N handshakes dominate at medium size (Fig. 12)."""
    kwargs = dict(total_bytes=20 * GB, m=200, n=200, y=13,
                  concurrent_connections=80_000)
    direct = model.edge_cost(ShuffleScheme.DIRECT, **kwargs)
    remote = model.edge_cost(
        ShuffleScheme.REMOTE, total_bytes=20 * GB, m=200, n=200, y=13,
        concurrent_connections=6_000,
    )
    assert (remote.write_per_task + remote.read_per_task
            < direct.write_per_task + direct.read_per_task)


def test_local_wins_large_shuffles(model):
    """At large sizes Direct collapses (incast) and Remote pays Y pulls."""
    big = dict(total_bytes=20 * GB, m=400, n=400, y=25)
    direct = model.edge_cost(ShuffleScheme.DIRECT, concurrent_connections=320_000, **big)
    local = model.edge_cost(ShuffleScheme.LOCAL, concurrent_connections=2_000, **big)
    remote = model.edge_cost(ShuffleScheme.REMOTE, concurrent_connections=20_000, **big)
    l = local.write_per_task + local.read_per_task
    r = remote.write_per_task + remote.read_per_task
    d = direct.write_per_task + direct.read_per_task
    assert l < r < d


def test_direct_barrier_charges_read_side(model):
    pull = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=True)
    push = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=False)
    assert pull.read_per_task > push.read_per_task
    assert pull.write_per_task < push.write_per_task


def test_direct_barrier_write_has_no_memory_copy(model):
    """Section III-B: ``memory_copies(DIRECT) == 0`` — the producer already
    holds its output in executor memory, so the barrier branch must not
    charge a copy on the write side."""
    assert memory_copies(ShuffleScheme.DIRECT) == 0
    pull = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=True)
    assert pull.write_per_task == 0.0


def test_disk_write_scales_with_partition_files(model):
    narrow = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 10, 10, 2, 100)
    wide = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 10, 1000, 2, 100)
    assert wide.write_per_task > narrow.write_per_task


def test_disk_read_fragment_latency_escalates_with_load(model):
    quiet = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 1000, 1000, 30, 10_000)
    loaded = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 1000, 1000, 30, 2_000_000)
    assert loaded.read_per_task > quiet.read_per_task * 2


def test_retx_rate_reported(model):
    cost = model.edge_cost(
        ShuffleScheme.DIRECT, 1 * GB, 400, 400, 25,
        concurrent_connections=int(model.network.config.retx_saturation),
    )
    assert cost.retx_rate == pytest.approx(model.network.config.retx_cap)


def test_costs_scale_with_bytes(model):
    small = model.edge_cost(ShuffleScheme.LOCAL, 1 * GB, 50, 50, 5, 1000)
    large = model.edge_cost(ShuffleScheme.LOCAL, 10 * GB, 50, 50, 5, 1000)
    assert large.read_per_task > small.read_per_task
    assert large.write_per_task > small.write_per_task


def test_unknown_scheme_raises(model):
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.ADAPTIVE, 1.0, 1, 1, 1)


# ----------------------------------------------------------------------
# ShuffleConfig: configurable thresholds, validation, round trip
# ----------------------------------------------------------------------

def test_select_scheme_honors_custom_thresholds():
    """Boundary regression: the `<=` comparisons must hold at exactly the
    configured thresholds, whatever their values."""
    config = ShuffleConfig(direct_threshold=100, local_threshold=200)
    assert select_scheme(99, config) == ShuffleScheme.DIRECT
    assert select_scheme(100, config) == ShuffleScheme.DIRECT
    assert select_scheme(101, config) == ShuffleScheme.REMOTE
    assert select_scheme(200, config) == ShuffleScheme.REMOTE
    assert select_scheme(201, config) == ShuffleScheme.LOCAL


def test_shuffle_config_validation():
    with pytest.raises(ValueError):
        ShuffleConfig(direct_threshold=90_000, local_threshold=10_000).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(direct_threshold=0).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(replication_factor=0).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(pressure_demote_utilization=1.5).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(setup_promote_latency=0.0).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(merge_min_edges=1).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(merge_max_bytes=-1.0).validate()


def test_shuffle_config_round_trips():
    config = ShuffleConfig(
        direct_threshold=5_000, local_threshold=50_000,
        replication_factor=3, mode_switching=False, switch_margin=0.25,
    )
    assert ShuffleConfig.from_dict(config.to_dict()) == config


def test_shuffle_config_from_dict_rejects_unknown_and_invalid():
    with pytest.raises(ValueError):
        ShuffleConfig.from_dict({"direct_threshold": 10, "bogus": 1})
    with pytest.raises(ValueError):
        ShuffleConfig.from_dict({"replication_factor": 0})


# ----------------------------------------------------------------------
# ShuffleModeController: pressure-driven mid-job switching
# ----------------------------------------------------------------------

def test_mode_controller_demotes_under_cache_pressure(config):
    controller = ShuffleModeController(config.shuffle)
    decision = controller.resolve(
        ShuffleScheme.ADAPTIVE, 12_000, cache_utilization=0.95
    )
    assert decision.scheme == ShuffleScheme.DIRECT
    assert decision.static_scheme == ShuffleScheme.REMOTE
    assert decision.switched and decision.reason == "cache-pressure"
    assert controller.switches == 1


def test_mode_controller_promotes_under_setup_cost(config):
    controller = ShuffleModeController(config.shuffle)
    decision = controller.resolve(
        ShuffleScheme.ADAPTIVE, 8_000, setup_latency=0.2
    )
    assert decision.scheme == ShuffleScheme.REMOTE
    assert decision.static_scheme == ShuffleScheme.DIRECT
    assert decision.switched and decision.reason == "setup-cost"


def test_mode_controller_only_switches_borderline_edges(config):
    controller = ShuffleModeController(config.shuffle)
    # Far above the margin: pressure must not demote a huge LOCAL edge.
    big = controller.resolve(
        ShuffleScheme.ADAPTIVE, 500_000, cache_utilization=1.0
    )
    assert big.scheme == ShuffleScheme.LOCAL and not big.switched
    # Far below the margin: setup cost must not promote a tiny edge.
    small = controller.resolve(
        ShuffleScheme.ADAPTIVE, 1_000, setup_latency=1.0
    )
    assert small.scheme == ShuffleScheme.DIRECT and not small.switched
    assert controller.switches == 0


def test_mode_controller_never_overrides_explicit_schemes(config):
    controller = ShuffleModeController(config.shuffle)
    decision = controller.resolve(
        ShuffleScheme.LOCAL, 12_000, cache_utilization=1.0, setup_latency=1.0
    )
    assert decision.scheme == ShuffleScheme.LOCAL and not decision.switched


def test_mode_controller_disabled_by_config(config):
    config.shuffle.mode_switching = False
    controller = ShuffleModeController(config.shuffle)
    decision = controller.resolve(
        ShuffleScheme.ADAPTIVE, 12_000, cache_utilization=1.0
    )
    assert decision.scheme == ShuffleScheme.REMOTE and not decision.switched


def test_mode_controller_calm_observations_match_static_rule(config):
    controller = ShuffleModeController(config.shuffle)
    for size in (0, 5_000, 10_000, 10_001, 90_000, 90_001, 10**6):
        decision = controller.resolve(ShuffleScheme.ADAPTIVE, size)
        assert decision.scheme == select_scheme(size, config.shuffle)
        assert not decision.switched


# ----------------------------------------------------------------------
# Push-based partition merging
# ----------------------------------------------------------------------

def test_partition_merge_collapses_small_edge_storms(config):
    candidates = [(f"s{i}->dst", 1.0 * MiB, 8) for i in range(6)]
    merged, rest = plan_partition_merge(candidates, 16, config.shuffle)
    assert merged is not None and rest == []
    assert merged.edges == tuple(f"s{i}->dst" for i in range(6))
    assert merged.total_bytes == pytest.approx(6 * MiB)
    assert merged.m == 48 and merged.n == 16
    assert merged.size == 48 * 16


def test_partition_merge_leaves_big_edges_per_edge(config):
    candidates = [(f"s{i}->dst", 1.0 * MiB, 8) for i in range(4)]
    candidates.append(("big->dst", 100.0 * MiB, 8))
    merged, rest = plan_partition_merge(candidates, 16, config.shuffle)
    assert merged is not None
    assert "big->dst" not in merged.edges
    assert rest == ["big->dst"]


def test_partition_merge_needs_enough_tiny_edges(config):
    candidates = [(f"s{i}->dst", 1.0 * MiB, 8) for i in range(3)]
    merged, rest = plan_partition_merge(candidates, 16, config.shuffle)
    assert merged is None
    assert rest == [key for key, _, _ in candidates]


def test_partition_merge_rejects_bad_consumer_count(config):
    with pytest.raises(ValueError):
        plan_partition_merge([], 0, config.shuffle)
