"""Tests for adaptive shuffle selection and the cost model."""

from __future__ import annotations

import pytest

from repro.core.shuffle import (
    ShuffleCostModel,
    ShuffleScheme,
    connection_count,
    memory_copies,
    resolve_scheme,
    select_scheme,
)
from repro.sim.config import SimConfig
from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel

GB = 1e9


@pytest.fixture
def model() -> ShuffleCostModel:
    config = SimConfig()
    return ShuffleCostModel(config, NetworkModel(config.network), DiskModel(config.disk))


def test_adaptive_thresholds_match_production_settings(config):
    # Section III-B: thresholds at 10,000 and 90,000 edges.
    assert select_scheme(0, config.shuffle) == ShuffleScheme.DIRECT
    assert select_scheme(10_000, config.shuffle) == ShuffleScheme.DIRECT
    assert select_scheme(10_001, config.shuffle) == ShuffleScheme.REMOTE
    assert select_scheme(90_000, config.shuffle) == ShuffleScheme.REMOTE
    assert select_scheme(90_001, config.shuffle) == ShuffleScheme.LOCAL


def test_select_scheme_rejects_negative(config):
    with pytest.raises(ValueError):
        select_scheme(-1, config.shuffle)


def test_resolve_scheme_passthrough_and_adaptive(config):
    assert resolve_scheme(ShuffleScheme.DISK, 10**9, config.shuffle) == ShuffleScheme.DISK
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 5_000, config.shuffle) == ShuffleScheme.DIRECT
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 50_000, config.shuffle) == ShuffleScheme.REMOTE
    assert resolve_scheme(ShuffleScheme.ADAPTIVE, 500_000, config.shuffle) == ShuffleScheme.LOCAL


def test_connection_counts_match_paper_formulas():
    # Section III-B: Direct M*N, Local M+N+C(Y,2), Remote M+N*Y.
    m, n, y = 100, 80, 10
    assert connection_count(ShuffleScheme.DIRECT, m, n, y) == 8_000
    assert connection_count(ShuffleScheme.LOCAL, m, n, y) == 100 + 80 + 45
    assert connection_count(ShuffleScheme.REMOTE, m, n, y) == 100 + 800
    assert connection_count(ShuffleScheme.DISK, m, n, y) == 8_000


def test_local_has_fewest_connections_when_y_small():
    # "Local Shuffle has the least TCP connections between tasks" because
    # Y is much smaller than M and N.
    m, n, y = 1000, 1000, 10
    local = connection_count(ShuffleScheme.LOCAL, m, n, y)
    remote = connection_count(ShuffleScheme.REMOTE, m, n, y)
    direct = connection_count(ShuffleScheme.DIRECT, m, n, y)
    assert local < remote < direct


def test_connection_count_rejects_bad_inputs():
    with pytest.raises(ValueError):
        connection_count(ShuffleScheme.DIRECT, 0, 1, 1)
    with pytest.raises(ValueError):
        connection_count(ShuffleScheme.ADAPTIVE, 1, 1, 1)


def test_memory_copies_match_paper():
    # Direct has the fewest copies; Local adds two; Remote is in between.
    assert memory_copies(ShuffleScheme.DIRECT) == 0
    assert memory_copies(ShuffleScheme.LOCAL) == 2
    assert memory_copies(ShuffleScheme.REMOTE) == 1
    assert memory_copies(ShuffleScheme.DISK) == 0


def test_edge_cost_rejects_bad_inputs(model):
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.DIRECT, -1, 1, 1, 1)
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.DIRECT, 1, 0, 1, 1)


def test_direct_wins_small_shuffles(model):
    """For small shuffles the extra memory copies make the cache-mediated
    schemes slower (Fig. 12's small class)."""
    kwargs = dict(total_bytes=20 * GB, m=60, n=60, y=4, concurrent_connections=4_000)
    direct = model.edge_cost(ShuffleScheme.DIRECT, **kwargs)
    local = model.edge_cost(ShuffleScheme.LOCAL, **kwargs)
    remote = model.edge_cost(ShuffleScheme.REMOTE, **kwargs)
    d = direct.write_per_task + direct.read_per_task
    assert d <= local.write_per_task + local.read_per_task
    assert d <= remote.write_per_task + remote.read_per_task + 0.05


def test_remote_wins_medium_shuffles(model):
    """Direct's M x N handshakes dominate at medium size (Fig. 12)."""
    kwargs = dict(total_bytes=20 * GB, m=200, n=200, y=13,
                  concurrent_connections=80_000)
    direct = model.edge_cost(ShuffleScheme.DIRECT, **kwargs)
    remote = model.edge_cost(
        ShuffleScheme.REMOTE, total_bytes=20 * GB, m=200, n=200, y=13,
        concurrent_connections=6_000,
    )
    assert (remote.write_per_task + remote.read_per_task
            < direct.write_per_task + direct.read_per_task)


def test_local_wins_large_shuffles(model):
    """At large sizes Direct collapses (incast) and Remote pays Y pulls."""
    big = dict(total_bytes=20 * GB, m=400, n=400, y=25)
    direct = model.edge_cost(ShuffleScheme.DIRECT, concurrent_connections=320_000, **big)
    local = model.edge_cost(ShuffleScheme.LOCAL, concurrent_connections=2_000, **big)
    remote = model.edge_cost(ShuffleScheme.REMOTE, concurrent_connections=20_000, **big)
    l = local.write_per_task + local.read_per_task
    r = remote.write_per_task + remote.read_per_task
    d = direct.write_per_task + direct.read_per_task
    assert l < r < d


def test_direct_barrier_charges_read_side(model):
    pull = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=True)
    push = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=False)
    assert pull.read_per_task > push.read_per_task
    assert pull.write_per_task < push.write_per_task


def test_direct_barrier_write_has_no_memory_copy(model):
    """Section III-B: ``memory_copies(DIRECT) == 0`` — the producer already
    holds its output in executor memory, so the barrier branch must not
    charge a copy on the write side."""
    assert memory_copies(ShuffleScheme.DIRECT) == 0
    pull = model.edge_cost(ShuffleScheme.DIRECT, 1 * GB, 50, 50, 5, 1000, barrier=True)
    assert pull.write_per_task == 0.0


def test_disk_write_scales_with_partition_files(model):
    narrow = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 10, 10, 2, 100)
    wide = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 10, 1000, 2, 100)
    assert wide.write_per_task > narrow.write_per_task


def test_disk_read_fragment_latency_escalates_with_load(model):
    quiet = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 1000, 1000, 30, 10_000)
    loaded = model.edge_cost(ShuffleScheme.DISK, 1 * GB, 1000, 1000, 30, 2_000_000)
    assert loaded.read_per_task > quiet.read_per_task * 2


def test_retx_rate_reported(model):
    cost = model.edge_cost(
        ShuffleScheme.DIRECT, 1 * GB, 400, 400, 25,
        concurrent_connections=int(model.network.config.retx_saturation),
    )
    assert cost.retx_rate == pytest.approx(model.network.config.retx_cap)


def test_costs_scale_with_bytes(model):
    small = model.edge_cost(ShuffleScheme.LOCAL, 1 * GB, 50, 50, 5, 1000)
    large = model.edge_cost(ShuffleScheme.LOCAL, 10 * GB, 50, 50, 5, 1000)
    assert large.read_per_task > small.read_per_task
    assert large.write_per_task > small.write_per_task


def test_unknown_scheme_raises(model):
    with pytest.raises(ValueError):
        model.edge_cost(ShuffleScheme.ADAPTIVE, 1.0, 1, 1, 1)
