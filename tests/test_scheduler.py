"""Tests for the Resource Scheduler: gangs, FIFO, locality, load."""

from __future__ import annotations

import pytest

from repro.core.scheduler import ResourceScheduler, pick_locality_machines
from repro.sim.cluster import Cluster


def make_scheduler(machines: int = 4, executors: int = 4) -> ResourceScheduler:
    return ResourceScheduler(Cluster.build(machines, executors))


def test_gang_grant_all_or_nothing():
    rs = make_scheduler(2, 2)  # 4 executors total
    rs.request("job", 1, n_executors=3, now=0.0)
    grants = rs.schedule()
    assert len(grants) == 1
    assert len(grants[0].executors) == 3
    assert rs.cluster.free_executor_count() == 1


def test_gang_request_waits_until_it_fits():
    rs = make_scheduler(1, 4)
    rs.request("a", 1, n_executors=3, now=0.0)
    assert len(rs.schedule()) == 1
    rs.request("b", 1, n_executors=3, now=1.0)
    assert rs.schedule() == []
    assert len(rs.pending()) == 1


def test_gang_request_exceeding_cluster_raises():
    rs = make_scheduler(1, 4)
    with pytest.raises(ValueError):
        rs.request("a", 1, n_executors=5)


def test_request_rejects_zero_executors():
    rs = make_scheduler()
    with pytest.raises(ValueError):
        rs.request("a", 1, n_executors=0)


def test_strict_fifo_head_of_line_blocking():
    """A big gang at the head blocks smaller requests behind it — the
    JetScope pathology of Figs. 10-11."""
    rs = make_scheduler(2, 2)
    # Occupy 2 executors so the big request cannot fit.
    rs.request("small0", 1, n_executors=2, now=0.0)
    rs.schedule()
    rs.request("big", 1, n_executors=4, now=1.0)
    rs.request("small1", 2, n_executors=1, now=2.0)
    grants = rs.schedule()
    assert grants == []  # small1 is stuck behind big


def test_priority_orders_queue():
    rs = make_scheduler(1, 2)
    rs.request("low", 1, n_executors=2, priority=5, now=0.0)
    rs.request("high", 2, n_executors=2, priority=0, now=1.0)
    grants = rs.schedule()
    assert len(grants) == 1
    assert grants[0].request.job_id == "high"


def test_non_gang_partial_grants():
    rs = make_scheduler(1, 4)
    item = rs.request("spark", 1, n_executors=10, gang=False, now=0.0)
    grants = rs.schedule()
    assert len(grants) == 1
    assert len(grants[0].executors) == 4
    assert item.remaining == 6
    assert not item.granted
    # Free two executors and pump again.
    for executor in grants[0].executors[:2]:
        executor.release()
    grants = rs.schedule()
    assert len(grants[0].executors) == 2
    assert item.remaining == 4


def test_non_gang_completes_and_leaves_queue():
    rs = make_scheduler(1, 4)
    item = rs.request("spark", 1, n_executors=3, gang=False)
    rs.schedule()
    assert item.granted
    assert rs.pending() == []


def test_locality_preferred_machines_used_first():
    rs = make_scheduler(4, 2)
    preferred = rs.cluster.machines[2].machine_id
    rs.request("job", 1, n_executors=2, locality=(preferred,))
    grants = rs.schedule()
    used = {e.machine.machine_id for e in grants[0].executors}
    assert used == {preferred}


def test_load_spreading_round_robin():
    rs = make_scheduler(4, 4)
    rs.request("job", 1, n_executors=4)
    grants = rs.schedule()
    used = {e.machine.machine_id for e in grants[0].executors}
    assert len(used) == 4  # one task per machine, no flock


def test_least_loaded_machines_chosen():
    rs = make_scheduler(2, 4)
    # Pre-load machine 0 with three busy executors.
    for executor in rs.cluster.machines[0].executors[:3]:
        executor.assign("x")
    rs.request("job", 1, n_executors=2)
    grants = rs.schedule()
    used = [e.machine.machine_id for e in grants[0].executors]
    assert used.count(1) >= 1


def test_read_only_machines_skipped():
    rs = make_scheduler(2, 2)
    rs.cluster.machines[0].mark_read_only()
    rs.request("job", 1, n_executors=2)
    grants = rs.schedule()
    used = {e.machine.machine_id for e in grants[0].executors}
    assert used == {1}


def test_cancel_job_drops_requests():
    rs = make_scheduler(1, 2)
    rs.request("doomed", 1, n_executors=2)
    rs.cancel_job("doomed")
    assert rs.schedule() == []
    assert rs.pending() == []


def test_grants_counter():
    rs = make_scheduler(1, 4)
    rs.request("a", 1, n_executors=1)
    rs.request("b", 1, n_executors=1)
    rs.schedule()
    assert rs.grants_made == 2


def test_pick_locality_machines_returns_least_loaded():
    cluster = Cluster.build(4, 2)
    for executor in cluster.machines[0].executors:
        executor.assign("x")
    picks = pick_locality_machines(cluster, n_tasks=4)
    assert 0 not in picks
