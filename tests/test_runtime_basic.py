"""Runtime tests: single jobs, pipelining, barriers, timing sanity."""

from __future__ import annotations


from repro.core.dag import JobDAG
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.sim.cluster import Cluster, ExecutorState

from conftest import as_job, chain_dag, diamond_dag, make_stage


def run_job(dag, machines=4, executors=8, policy=None):
    cluster = Cluster.build(machines, executors)
    runtime = SwiftRuntime(cluster, policy or swift_policy())
    return runtime.execute(as_job(dag)), runtime


def test_single_stage_job_completes():
    dag = JobDAG("one", [make_stage("only", tasks=3, scan_mb=5, work=2.0)], [])
    result, runtime = run_job(dag)
    assert result.completed and not result.failed
    assert len(result.metrics.tasks) == 3
    assert result.metrics.run_time > 2.0
    assert runtime.cluster.free_executor_count() == runtime.cluster.total_executors()


def test_task_timings_are_recorded():
    result, _ = run_job(chain_dag())
    for t in result.metrics.tasks:
        assert t.finish > t.plan_arrive
        assert t.processing_time > 0
        assert t.plan_arrive <= t.data_arrive <= t.finish


def test_pipeline_chain_overlaps_stages():
    """Pipelined stages overlap: the chain's span is far less than the sum
    of stage spans."""
    pipelined, _ = run_job(chain_dag("p", n_stages=4))
    barriered, _ = run_job(chain_dag("b", blocking_stages=(1, 2, 3), n_stages=4))
    assert pipelined.metrics.run_time < barriered.metrics.run_time


def test_barrier_consumer_starts_after_producer():
    result, _ = run_job(chain_dag("b", blocking_stages=(1,)))
    s1_finish = max(t.finish for t in result.metrics.tasks if t.stage == "S1")
    s2_data = min(t.data_arrive for t in result.metrics.tasks if t.stage == "S2")
    assert s2_data >= s1_finish - 1e-6


def test_diamond_dag_completes():
    result, _ = run_job(diamond_dag(blocking_mid=True))
    assert result.completed
    stages = {t.stage for t in result.metrics.tasks}
    assert stages == {"A", "B", "C", "D"}


def test_determinism_same_seed():
    a, _ = run_job(chain_dag())
    b, _ = run_job(chain_dag())
    assert a.metrics.run_time == b.metrics.run_time
    assert [t.finish for t in a.metrics.tasks] == [t.finish for t in b.metrics.tasks]


def test_multiple_jobs_share_cluster():
    cluster = Cluster.build(4, 8)
    runtime = SwiftRuntime(cluster, swift_policy())
    jobs = [as_job(chain_dag(f"j{i}"), submit_time=float(i)) for i in range(3)]
    runtime.submit_all(jobs)
    results = runtime.run()
    assert len(results) == 3
    assert {r.job_id for r in results} == {"j0", "j1", "j2"}
    for r in results:
        assert r.completed


def test_latency_includes_queueing():
    """With only enough executors for one job at a time, the second job's
    latency includes its wait for resources."""
    dag1 = chain_dag("first", tasks=8, n_stages=1)
    dag2 = chain_dag("second", tasks=8, n_stages=1)
    cluster = Cluster.build(1, 8)
    runtime = SwiftRuntime(cluster, swift_policy())
    runtime.submit_all([as_job(dag1), as_job(dag2)])
    results = {r.job_id: r for r in runtime.run()}
    assert results["second"].metrics.latency > results["first"].metrics.latency


def test_executors_released_after_each_stage():
    _, runtime = run_job(chain_dag())
    for executor in runtime.cluster.iter_executors():
        assert executor.state == ExecutorState.IDLE


def test_shuffle_schemes_recorded_per_edge():
    result, _ = run_job(chain_dag("s", blocking_stages=(1,)))
    schemes = result.metrics.shuffle_schemes
    assert "S1->S2" in schemes and "S2->S3" in schemes
    assert all(v in {"direct", "local", "remote", "disk"} for v in schemes.values())


def test_execute_returns_matching_result():
    cluster = Cluster.build(2, 8)
    runtime = SwiftRuntime(cluster, swift_policy())
    job = as_job(chain_dag("mine"))
    result = runtime.execute(job)
    assert result.job_id == "mine"
    assert result.policy_name == "swift"


def test_sink_output_counts_as_write():
    dag = JobDAG(
        "sink",
        [make_stage("only", tasks=1, scan_mb=1, out_mb=100.0, work=0.1)],
        [],
    )
    result, _ = run_job(dag)
    assert result.metrics.tasks[0].shuffle_write_time > 0


def test_busy_intervals_cover_tasks():
    result, runtime = run_job(chain_dag())
    assert len(runtime.busy_intervals) == len(result.metrics.tasks)
    for start, end in runtime.busy_intervals:
        assert end > start


def test_start_time_set_at_first_dispatch():
    result, _ = run_job(chain_dag())
    assert result.metrics.start_time > 0.0
    assert result.metrics.start_time <= min(t.plan_arrive for t in result.metrics.tasks)


def test_submit_after_drained_run_raises():
    # Regression: submitting into a runtime whose run() already drained
    # the event queue used to hang or silently drop the job.
    import pytest

    from repro.core.runtime import RuntimeDrainedError

    cluster = Cluster.build(2, 8)
    runtime = SwiftRuntime(cluster, swift_policy())
    runtime.submit_all([as_job(chain_dag("first"))])
    runtime.run()
    with pytest.raises(RuntimeDrainedError, match="drained"):
        runtime.submit(as_job(chain_dag("too-late")))
    with pytest.raises(RuntimeDrainedError):
        runtime.submit_all([as_job(chain_dag("also-too-late"))])
