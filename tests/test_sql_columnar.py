"""Tests for the columnar SQL engine and the row/columnar dispatcher.

The correctness contract is differential: on every TPC-H query and on
assorted plan shapes, the columnar engine must return *exactly* the rows
the row executor returns — same values, same order, same key sets.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, RecordingTracer
from repro.sql import (
    DEFAULT_CATALOG,
    FIG1_QUERY,
    ColumnarExecutor,
    QueryExecutor,
    UnsupportedFeature,
    compile_kernel,
    engine_for,
    execute_sql,
    generate_database,
    parse,
    plan_statement,
    run_query,
)
from repro.sql.ast import BinaryOp, ColumnRef, Literal
from repro.sql.columnar import ColumnBatch
from repro.workloads.tpch_sql import TPCH_SQL, run_tpch_query, runnable_queries


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=5)


def _row_engine(sql, database):
    plan = plan_statement(parse(sql), DEFAULT_CATALOG)
    return QueryExecutor(database, DEFAULT_CATALOG).execute(plan)


def _columnar_engine(sql, database, batch_size=4096):
    plan = plan_statement(parse(sql), DEFAULT_CATALOG)
    executor = ColumnarExecutor(database, DEFAULT_CATALOG, batch_size=batch_size)
    return executor.execute(plan)


# ----------------------------------------------------------------------
# Differential correctness
# ----------------------------------------------------------------------

@pytest.mark.parametrize("query", runnable_queries())
def test_tpch_columnar_matches_row_engine(query, db):
    expected = _row_engine(TPCH_SQL[query], db)
    assert _columnar_engine(TPCH_SQL[query], db) == expected


def test_fig1_query_matches_row_engine(db):
    expected = _row_engine(FIG1_QUERY, db)
    assert expected  # the Fig. 1 query produces rows on the mini database
    assert _columnar_engine(FIG1_QUERY, db) == expected


@pytest.mark.parametrize("batch_size", [1, 7, 100, 4096])
def test_batch_size_never_changes_results(batch_size, db):
    # Batch boundaries are an implementation detail: results must be
    # byte-identical whether a table spans one batch or hundreds.
    for query in (1, 3, 13):
        expected = _row_engine(TPCH_SQL[query], db)
        assert _columnar_engine(TPCH_SQL[query], db, batch_size) == expected


def test_auto_mode_run_query_matches_row_engine(db):
    # The package-level run_query routes through the dispatcher; in auto
    # mode it must still return exactly what the row engine returns.
    for query in runnable_queries():
        expected = _row_engine(TPCH_SQL[query], db)
        assert run_query(TPCH_SQL[query], db) == expected


def test_run_tpch_query_engine_selection(db):
    expected = _row_engine(TPCH_SQL[6], db)
    assert run_tpch_query(6, db) == expected
    assert run_tpch_query(6, db, engine="row") == expected
    assert run_tpch_query(6, db, engine="columnar") == expected


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def test_dispatcher_picks_columnar_for_supported_plans(db):
    engine, reason = engine_for(TPCH_SQL[1], db)
    assert engine == "columnar"
    assert "supported" in reason


def test_dispatcher_outcome_reports_engine(db):
    outcome = execute_sql(TPCH_SQL[6], db)
    assert outcome.engine == "columnar"
    assert outcome.requested == "auto"
    assert outcome.elapsed_s >= 0.0
    forced = execute_sql(TPCH_SQL[6], db, engine="row")
    assert forced.engine == "row"
    assert forced.rows == outcome.rows


def test_dispatcher_falls_back_on_unsupported_plan(db):
    # A non-equi join has no hash-join path in the columnar engine.
    sql = """
        select count(*) as n
        from tpch_nation a join tpch_nation b on a.n_nationkey < b.n_nationkey
    """
    engine, reason = engine_for(sql, db)
    assert engine == "row"
    assert "fallback" in reason
    outcome = execute_sql(sql, db)
    assert outcome.engine == "row"
    assert "fallback" in outcome.reason
    assert outcome.rows == _row_engine(sql, db)


def test_forced_columnar_raises_on_unsupported_plan(db):
    sql = """
        select count(*) as n
        from tpch_nation a join tpch_nation b on a.n_nationkey < b.n_nationkey
    """
    with pytest.raises(UnsupportedFeature):
        execute_sql(sql, db, engine="columnar")


def test_unknown_engine_rejected(db):
    with pytest.raises(ValueError):
        execute_sql("select 1 as x from tpch_nation", db, engine="gpu")


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

def test_columnar_run_emits_metrics_and_spans(db):
    metrics = MetricsRegistry()
    tracer = RecordingTracer()
    outcome = execute_sql(
        TPCH_SQL[1], db, metrics=metrics, tracer=tracer
    )
    assert outcome.engine == "columnar"
    counters = metrics.to_dict()["counters"]
    assert counters["sql_queries"] == 1
    assert counters["sql_engine_columnar"] == 1
    assert counters["sql_columnar_scan_rows"] == len(db["lineitem"])
    assert counters["sql_columnar_aggregate_batches"] >= 1
    categories = {record.cat for record in tracer.records}
    assert "sql" in categories
    names = {record.name for record in tracer.records}
    assert "columnar.scan" in names
    assert "columnar.aggregate" in names


def test_row_engine_dispatch_also_counts(db):
    metrics = MetricsRegistry()
    execute_sql(TPCH_SQL[1], db, engine="row", metrics=metrics)
    counters = metrics.to_dict()["counters"]
    assert counters["sql_engine_row"] == 1


# ----------------------------------------------------------------------
# Kernel / batch primitives
# ----------------------------------------------------------------------

def test_column_batch_round_trip():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    batch = ColumnBatch.from_rows(rows, ["a", "b"])
    assert batch.length == 2
    assert batch.to_rows() == rows


def test_compile_kernel_null_semantics():
    # NULL comparison yields NULL (excluded by filters), like the row engine.
    expr = BinaryOp("<", ColumnRef("a"), Literal(5))
    kernel = compile_kernel(expr, ["a"])
    batch = ColumnBatch(["a"], {"a": [1, None, 9]}, 3)
    assert kernel(batch) == [True, None, False]


def test_compile_kernel_constant_on_empty_batch():
    # Constant kernels must not evaluate the expression when there are no
    # rows (the row engine never evaluates expressions for absent rows).
    expr = BinaryOp("/", Literal(1), Literal(0))
    kernel = compile_kernel(expr, [])
    empty = ColumnBatch([], {}, 0)
    assert kernel(empty) == []
