"""Service gateway tests: admission, quotas, EDF/fair-share dispatch,
determinism, and the Service facade."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AdmissionPolicy,
    QueuePolicy,
    RuntimeConfig,
    Service,
    ServiceConfig,
    TenantSpec,
)
from repro.core.dag import JobDAG
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.service import JobGateway, PolicyValidationError, RejectReason
from repro.sim.cluster import Cluster
from repro.workloads.traces import tenant_arrival_trace

from conftest import as_job, make_stage


def one_stage_job(job_id: str, tasks: int = 4, submit_time: float = 0.0,
                  work: float = 1.0):
    dag = JobDAG(job_id, [make_stage("s", tasks=tasks, scan_mb=1, work=work)], [])
    return as_job(dag, submit_time=submit_time)


def small_service(capacity_machines: int = 4, executors: int = 8,
                  **config_kwargs) -> Service:
    runtime = RuntimeConfig(
        n_machines=capacity_machines, executors_per_machine=executors
    )
    return Service(ServiceConfig(runtime=runtime, **config_kwargs))


# ----------------------------------------------------------------------
# Basic lifecycle
# ----------------------------------------------------------------------

def test_service_runs_arrivals_to_completion():
    service = small_service()
    handles = [
        service.submit(one_stage_job(f"j{i}", submit_time=0.5 * i), tenant="acme")
        for i in range(4)
    ]
    result = service.run()
    assert all(h.status == "completed" for h in handles)
    assert result.submitted == result.admitted == 4
    assert result.rejected == 0
    assert "acme" in result.tenants
    report = result.tenant("acme")
    assert report.completed == 4
    assert all(h.queue_time >= 0.0 for h in handles)
    assert all(h.makespan > 0.0 for h in handles)


def test_service_run_is_single_shot():
    service = small_service()
    service.submit(one_stage_job("once"))
    service.run()
    with pytest.raises(RuntimeError, match="fresh Service"):
        service.run()


def test_unknown_tenant_rejected_when_auto_register_off():
    service = small_service(auto_register=False,
                            tenants=[TenantSpec(name="known")])
    stranger = service.submit(one_stage_job("a"), tenant="stranger")
    local = service.submit(one_stage_job("b"), tenant="known")
    service.run()
    assert stranger.rejected
    assert stranger.reject_reason == RejectReason.UNKNOWN_TENANT
    assert local.status == "completed"


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

def test_oversize_gang_rejected():
    service = small_service(capacity_machines=1, executors=4)
    too_big = service.submit(one_stage_job("big", tasks=9), tenant="t")
    fits = service.submit(one_stage_job("ok", tasks=3), tenant="t")
    service.run()
    assert too_big.rejected and too_big.reject_reason == RejectReason.OVERSIZE
    assert fits.status == "completed"


def test_tenant_slot_quota_rejects_oversize_for_that_tenant():
    service = small_service(tenants=[TenantSpec(name="t", max_executor_slots=2)])
    handle = service.submit(one_stage_job("big", tasks=4), tenant="t")
    service.run()
    assert handle.rejected and handle.reject_reason == RejectReason.OVERSIZE


def test_queue_full_rejection():
    # One job runs, one may wait; the third arrival overflows the
    # per-tenant pending queue.
    service = small_service(
        tenants=[TenantSpec(name="t", max_concurrent_jobs=1)],
        admission=AdmissionPolicy(max_pending_per_tenant=1),
    )
    handles = [
        service.submit(one_stage_job(f"j{i}", submit_time=0.01 * i), tenant="t")
        for i in range(3)
    ]
    service.run()
    assert handles[0].status == "completed"
    assert handles[1].status == "completed"
    assert handles[2].rejected
    assert handles[2].reject_reason == RejectReason.QUEUE_FULL


def test_pool_pressure_rejects_with_not_enough_slots():
    # Capacity 4; each job demands 4 slots, so the backlog drives
    # pressure over 1.0 immediately.
    service = small_service(
        capacity_machines=1, executors=4,
        admission=AdmissionPolicy(max_pool_pressure=1.0),
    )
    handles = [
        service.submit(one_stage_job(f"j{i}", tasks=4, submit_time=0.01 * i),
                       tenant="t")
        for i in range(4)
    ]
    result = service.run()
    rejected = [h for h in handles if h.rejected]
    assert rejected, "backlog pressure should have shed arrivals"
    assert all(h.reject_reason == RejectReason.NOT_ENOUGH_SLOTS for h in rejected)
    assert result.rejected == len(rejected)


def test_pool_pressure_queue_mode_sheds_nothing():
    service = small_service(
        capacity_machines=1, executors=4,
        admission=AdmissionPolicy(max_pool_pressure=1.0, on_pressure="queue"),
    )
    handles = [
        service.submit(one_stage_job(f"j{i}", tasks=4, submit_time=0.01 * i),
                       tenant="t")
        for i in range(4)
    ]
    service.run()
    assert all(h.status == "completed" for h in handles)


# ----------------------------------------------------------------------
# Quotas and dispatch order
# ----------------------------------------------------------------------

def test_concurrency_quota_is_never_exceeded():
    service = small_service(tenants=[TenantSpec(name="t", max_concurrent_jobs=2)])
    for i in range(6):
        service.submit(one_stage_job(f"j{i}", submit_time=0.01 * i), tenant="t")
    result = service.run()
    assert result.tenant("t").peak_concurrent_jobs <= 2
    assert service.gateway.quota_violations() == []


def test_edf_dispatches_earliest_deadline_first():
    service = small_service(tenants=[TenantSpec(name="t", max_concurrent_jobs=1)])
    first = service.submit(one_stage_job("first"), tenant="t", deadline=100.0)
    late = service.submit(one_stage_job("late", submit_time=0.01),
                          tenant="t", deadline=50.0)
    urgent = service.submit(one_stage_job("urgent", submit_time=0.02),
                            tenant="t", deadline=10.0)
    service.run()
    # ``first`` dispatches on arrival (nothing running); the queued pair
    # then drains earliest-deadline-first.
    assert first._entry.dispatch < urgent._entry.dispatch < late._entry.dispatch


def test_fifo_order_when_deadline_first_disabled():
    service = small_service(
        tenants=[TenantSpec(name="t", max_concurrent_jobs=1)],
        queue=QueuePolicy(deadline_first=False),
    )
    first = service.submit(one_stage_job("first"), tenant="t", deadline=100.0)
    late = service.submit(one_stage_job("late", submit_time=0.01),
                          tenant="t", deadline=50.0)
    urgent = service.submit(one_stage_job("urgent", submit_time=0.02),
                            tenant="t", deadline=10.0)
    service.run()
    assert first._entry.dispatch < late._entry.dispatch < urgent._entry.dispatch


def test_strict_priority_preempts_queue_order():
    # Capacity fits one 4-task gang at a time; the low tenant's second
    # job queued first, but the high-priority tenant goes next.
    service = small_service(
        capacity_machines=1, executors=4,
        tenants=[TenantSpec(name="lo", priority=0),
                 TenantSpec(name="hi", priority=5)],
    )
    filler = service.submit(one_stage_job("filler", tasks=4), tenant="lo")
    lo = service.submit(one_stage_job("lo2", tasks=4, submit_time=0.01),
                        tenant="lo")
    hi = service.submit(one_stage_job("hi1", tasks=4, submit_time=0.02),
                        tenant="hi")
    service.run()
    assert filler._entry.dispatch < hi._entry.dispatch < lo._entry.dispatch


def test_weighted_fair_share_favours_heavy_tenant():
    # Weight 4 vs 1 on a one-gang-at-a-time cluster: tenant ``a`` should
    # win 4 of the first 5 dispatch slots.
    service = small_service(
        capacity_machines=1, executors=4,
        tenants=[TenantSpec(name="a", weight=4.0),
                 TenantSpec(name="b", weight=1.0)],
    )
    for i in range(4):
        service.submit(one_stage_job(f"a{i}", tasks=4, submit_time=0.01 * i),
                       tenant="a")
        service.submit(one_stage_job(f"b{i}", tasks=4, submit_time=0.01 * i),
                       tenant="b")
    result = service.run()
    order = sorted(
        (e for e in result.entries if not math.isnan(e.dispatch)),
        key=lambda e: (e.dispatch, e.seq),
    )
    first_five = [e.tenant for e in order[:5]]
    assert first_five.count("a") == 4


def test_deadline_overruns_counted():
    service = small_service(capacity_machines=1, executors=8)
    hopeless = service.submit(one_stage_job("slow", tasks=4, work=10.0),
                              tenant="t", deadline=1.0)
    result = service.run()
    assert hopeless.deadline_overrun > 0.0
    assert result.deadline_overruns == 1
    assert result.tenant("t").deadline_overruns == 1


# ----------------------------------------------------------------------
# Direct gateway use, determinism, audit
# ----------------------------------------------------------------------

def test_gateway_requires_free_completion_hook():
    cluster = Cluster.build(2, 4)
    runtime = SwiftRuntime(cluster, swift_policy())
    JobGateway(runtime)
    with pytest.raises(ValueError, match="on_job_done"):
        JobGateway(runtime)


def test_queue_csv_is_deterministic_across_replays():
    def replay() -> str:
        service = small_service(
            capacity_machines=10, executors=8,
            admission=AdmissionPolicy(max_pool_pressure=4.0,
                                      max_pending_per_tenant=8),
            default_tenant=TenantSpec(name="default", max_concurrent_jobs=4),
        )
        service.submit_trace(tenant_arrival_trace(
            n_tenants=20, n_jobs=40, max_stage_tasks=40, seed=11
        ))
        return service.run().csv

    first, second = replay(), replay()
    assert first == second
    header, *rows = first.splitlines()
    assert header.startswith("seq,tenant,job_id,status")
    assert len(rows) == 40


def test_gateway_campaign_with_audit_conserves_slots():
    service = Service(ServiceConfig(
        runtime=RuntimeConfig(n_machines=8, executors_per_machine=4,
                              audit=True),
        admission=AdmissionPolicy(max_pool_pressure=6.0),
    ))
    service.submit_trace(tenant_arrival_trace(
        n_tenants=10, n_jobs=30, max_stage_tasks=24, seed=3
    ))
    result = service.run()
    assert result.audit is not None
    assert result.audit["violations"] == []
    assert service.gateway.quota_violations() == []
    assert service.gateway.claimed_slots == 0


def test_summary_and_csv_files_round_trip(tmp_path):
    import json

    service = small_service()
    service.submit(one_stage_job("j0"), tenant="t", deadline=60.0)
    result = service.run()
    csv_path = result.write_queue_csv(str(tmp_path / "q.csv"))
    summary_path = result.write_summary(str(tmp_path / "s.json"))
    assert open(csv_path).read() == result.csv
    payload = json.loads(open(summary_path).read())
    assert payload["totals"]["submitted"] == 1
    assert "t" in payload["tenants"]


# ----------------------------------------------------------------------
# Config round-trips and validation
# ----------------------------------------------------------------------

def test_service_config_dict_round_trip():
    config = ServiceConfig(
        runtime=RuntimeConfig(n_machines=12, executors_per_machine=4),
        tenants=[TenantSpec(name="bi", weight=2.0, max_concurrent_jobs=8,
                            priority=1)],
        admission=AdmissionPolicy(max_pending_per_tenant=16,
                                  max_pool_pressure=4.0,
                                  on_pressure="queue"),
        queue=QueuePolicy(fair_share=False, deadline_first=False),
        auto_register=False,
    )
    rebuilt = ServiceConfig.from_dict(config.to_dict())
    assert rebuilt.to_dict() == config.to_dict()


def test_policy_validation_rejects_bad_values():
    with pytest.raises(PolicyValidationError):
        TenantSpec(name="").validate()
    with pytest.raises(PolicyValidationError):
        TenantSpec(name="t", weight=0.0).validate()
    with pytest.raises(PolicyValidationError):
        AdmissionPolicy(on_pressure="explode").validate()
    with pytest.raises(PolicyValidationError):
        ServiceConfig(tenants=[TenantSpec(name="t", max_concurrent_jobs=-1)])\
            .validate()


def test_duplicate_tenants_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        ServiceConfig(tenants=[TenantSpec(name="t"), TenantSpec(name="t")])\
            .validate()


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(PolicyValidationError):
        TenantSpec.from_dict({"name": "t", "color": "blue"})


# ----------------------------------------------------------------------
# Property: admission never exceeds quotas
# ----------------------------------------------------------------------

@st.composite
def gateway_workloads(draw):
    max_concurrent = draw(st.integers(min_value=1, max_value=3))
    max_slots = draw(st.sampled_from([0, 4, 6, 8]))
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for i in range(n_jobs):
        tasks = draw(st.integers(min_value=1, max_value=6))
        gap = draw(st.sampled_from([0.0, 0.1, 0.7]))
        jobs.append((tasks, i * gap))
    return max_concurrent, max_slots, jobs


@given(gateway_workloads())
@settings(max_examples=25, deadline=None)
def test_admission_never_exceeds_quotas(workload):
    max_concurrent, max_slots, jobs = workload
    spec = TenantSpec(name="t", max_concurrent_jobs=max_concurrent,
                      max_executor_slots=max_slots)
    service = small_service(capacity_machines=2, executors=4, tenants=[spec])
    for i, (tasks, at) in enumerate(jobs):
        service.submit(one_stage_job(f"j{i}", tasks=tasks, submit_time=at),
                       tenant="t")
    result = service.run()
    report = result.tenant("t")
    assert report.peak_concurrent_jobs <= max_concurrent
    if max_slots:
        assert report.peak_executor_slots <= max_slots
    assert service.gateway.quota_violations() == []
    assert service.gateway.claimed_slots == 0
    # Every arrival reached a terminal state.
    assert all(e.status in ("completed", "failed", "rejected")
               for e in result.entries)
