"""End-to-end integration tests crossing all subsystems."""

from __future__ import annotations


from repro import Cluster, Job, SwiftRuntime, swift_policy
from repro.baselines import bubble_policy, jetscope_policy, spark_policy
from repro.core import EventKind, partition_job
from repro.sql import FIG1_QUERY, compile_sql
from repro.workloads import generate_trace, tpch, terasort, TraceConfig


def test_sql_to_simulation_pipeline():
    """Fig. 1 text -> DAG -> graphlets -> simulated execution, end to end."""
    dag = compile_sql(FIG1_QUERY, scale_factor=200, job_id="e2e_q9")
    graph = partition_job(dag)
    assert len(graph) >= 4
    runtime = SwiftRuntime(Cluster.build(50, 32), swift_policy())
    result = runtime.execute(Job(dag=dag))
    assert result.completed
    # Every stage produced at least one finalized task.
    stages_seen = {t.stage for t in result.metrics.tasks}
    assert stages_seen == set(dag.stages)
    # The event log tells the same story.
    grants = runtime.events.of_kind(EventKind.UNIT_GRANTED)
    assert len(grants) == len(graph)


def test_all_four_systems_run_the_same_q3():
    times = {}
    for policy in (swift_policy(), spark_policy(), jetscope_policy(), bubble_policy()):
        runtime = SwiftRuntime(Cluster.build(100, 32), policy)
        result = runtime.execute(tpch.query_job(3, scale=0.5))
        assert result.completed
        times[policy.name] = result.metrics.run_time
    assert times["swift"] == min(times.values())
    assert times["spark"] == max(times.values())


def test_mixed_workload_all_complete():
    jobs = generate_trace(TraceConfig(n_jobs=40, mean_interarrival=0.5))
    jobs.append(terasort.terasort_job(100, 100, submit_time=2.0))
    jobs.append(tpch.query_job(13, submit_time=5.0))
    runtime = SwiftRuntime(Cluster.build(100, 32), swift_policy())
    runtime.submit_all(jobs)
    results = runtime.run()
    assert len(results) == 42
    assert all(r.completed for r in results)
    assert runtime.cluster.network.open_connections == 0
    assert runtime.cluster.free_executor_count() == runtime.cluster.total_executors()


def test_determinism_across_full_replay():
    outcomes = []
    for _ in range(2):
        runtime = SwiftRuntime(Cluster.build(40, 32), swift_policy())
        runtime.submit_all(generate_trace(TraceConfig(n_jobs=30)))
        results = runtime.run()
        outcomes.append(tuple(round(r.metrics.finish_time, 9) for r in results))
    assert outcomes[0] == outcomes[1]


def test_terasort_graphlet_schedule_order():
    """The reduce graphlet is granted only after the map stage completes."""
    runtime = SwiftRuntime(Cluster.build(20, 16), swift_policy())
    result = runtime.execute(terasort.terasort_job(64, 64))
    assert result.completed
    grants = runtime.events.of_kind(EventKind.UNIT_GRANTED)
    map_done = runtime.events.first(EventKind.STAGE_COMPLETED)
    assert len(grants) == 2
    assert grants[1].time >= map_done.time
