"""Runtime tests: scheduling policies, gang semantics, IdleRatio effects."""

from __future__ import annotations

import pytest

from repro.baselines import bubble_policy, jetscope_policy, spark_policy
from repro.core.policies import SubmissionOrder, swift_policy
from repro.core.runtime import SchedulingImpossibleError, SwiftRuntime
from repro.sim.cluster import Cluster

from conftest import as_job, chain_dag


def execute(dag, policy, machines=4, executors=8):
    runtime = SwiftRuntime(Cluster.build(machines, executors), policy)
    return runtime.execute(as_job(dag)), runtime


def test_whole_job_gang_has_higher_idle_ratio():
    """JetScope's whole-job gang dispatches deep stages long before their
    input data exists — exactly the waste Fig. 3 measures."""
    dag = chain_dag("idle", blocking_stages=(1, 2), n_stages=3, tasks=4)
    jet, _ = execute(dag, jetscope_policy())
    swift, _ = execute(chain_dag("idle2", blocking_stages=(1, 2), n_stages=3, tasks=4),
                       swift_policy())
    assert jet.metrics.idle_ratio() > swift.metrics.idle_ratio() + 0.05


def test_conservative_submission_delays_dispatch():
    dag = chain_dag("c", blocking_stages=(1,))
    conservative, _ = execute(dag, swift_policy())
    s2_plan_conservative = min(
        t.plan_arrive for t in conservative.metrics.tasks if t.stage == "S2"
    )
    eager, _ = execute(chain_dag("e", blocking_stages=(1,)),
                       swift_policy(submission=SubmissionOrder.EAGER))
    s2_plan_eager = min(t.plan_arrive for t in eager.metrics.tasks if t.stage == "S2")
    assert s2_plan_eager < s2_plan_conservative


def test_eager_and_conservative_same_completion_order_constraints():
    dag = chain_dag("e2", blocking_stages=(1,))
    result, _ = execute(dag, swift_policy(submission=SubmissionOrder.EAGER))
    s1_finish = max(t.finish for t in result.metrics.tasks if t.stage == "S1")
    s2_finish = max(t.finish for t in result.metrics.tasks if t.stage == "S2")
    assert s2_finish > s1_finish


def test_impossible_gang_raises():
    dag = chain_dag("big", tasks=100)
    with pytest.raises(SchedulingImpossibleError):
        execute(dag, swift_policy(), machines=2, executors=4)


def test_spark_waves_execute_oversized_stage():
    """Spark's non-gang units run in waves when a stage exceeds capacity."""
    dag = chain_dag("waves", n_stages=1, tasks=20)
    result, _ = execute(dag, spark_policy(), machines=2, executors=4)
    assert result.completed
    assert len(result.metrics.tasks) == 20
    # Waves: plan arrivals span the duration of at least one task.
    arrivals = sorted(t.plan_arrive for t in result.metrics.tasks)
    assert arrivals[-1] - arrivals[0] > 1.0


def test_spark_coldstart_launch_overhead():
    dag = chain_dag("cold", n_stages=1)
    spark, _ = execute(dag, spark_policy())
    swift, _ = execute(chain_dag("warm", n_stages=1), swift_policy())
    spark_launch = max(t.launch_time for t in spark.metrics.tasks)
    swift_launch = max(t.launch_time for t in swift.metrics.tasks)
    assert spark_launch > 1.0
    assert swift_launch < 0.2


def test_bubble_policy_runs_jobs():
    result, _ = execute(chain_dag("bub", blocking_stages=(1,)), bubble_policy())
    assert result.completed


def test_admin_dispatch_serialization_visible():
    dag = chain_dag("serial", n_stages=1, tasks=32)
    _, runtime = execute(dag, swift_policy(), machines=4, executors=8)
    assert runtime.admin.stats.plans_dispatched == 32
    assert runtime.admin.stats.events_processed > 32


def test_gang_holds_all_unit_executors_simultaneously():
    dag = chain_dag("gang", n_stages=2, tasks=4)  # one graphlet of 8 tasks
    cluster = Cluster.build(1, 8)
    runtime = SwiftRuntime(cluster, swift_policy())
    result = runtime.execute(as_job(dag))
    arrivals = [t.plan_arrive for t in result.metrics.tasks]
    # All 8 plans dispatched in one gang within the admin stagger.
    assert max(arrivals) - min(arrivals) < 0.1
