"""Property-based differential test: columnar engine == row engine.

Hypothesis generates random tables (mixed int/float/string columns with
NULLs) crossed with random supported query fragments; every sample must
produce the same multiset of rows from both engines.  Results are
compared after canonical row sorting because not every generated
fragment carries a total ORDER BY.

The generators deliberately avoid the documented engine divergences:
no division or modulo (the row engine raises on a zero divisor mid-scan
where numpy masks the lane) and no NaN values (NaN group keys force the
columnar engine down its Python fallback anyway, which the conformance
corpus covers directly).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Catalog, TableSchema, execute_sql
from repro.sql.catalog import _cols

CATALOG = Catalog()
CATALOG.register(TableSchema(
    "t",
    _cols("i:int", "f:float", "s:str", "g:str"),
    base_rows=25, bytes_per_row=40,
))

_FLOATS = (-2.5, -1.0, 0.0, 0.5, 1.25, 3.0, 7.5, 100.0)
_STRINGS = ("", "a", "ab", "abc", "b%", "c_d", "e*f", "x[y")
_GROUPS = ("g1", "g2", "g3")

_row = st.fixed_dictionaries({
    "i": st.one_of(st.none(), st.integers(-5, 20)),
    "f": st.one_of(st.none(), st.sampled_from(_FLOATS)),
    "s": st.one_of(st.none(), st.sampled_from(_STRINGS)),
    "g": st.sampled_from(_GROUPS),
})
_table = st.lists(_row, min_size=0, max_size=25)

_predicates = st.sampled_from([
    "i > {c}",
    "i <= {c}",
    "f >= {c}",
    "i + 1 < f",
    "i = {c} or f > {c}",
    "i is null",
    "f is not null",
    "s is null",
    "s = 'ab'",
    "s like 'a%'",
    "s like '%_%'",
    "s like 'e*f'",
    "s in ('a', 'b%', 'zzz')",
    "g in ('g1', 'g3')",
    "not (i > {c})",
    "case when i > {c} then f > 0 else g = 'g2' end",
])

#: (select list, ORDER BY clauses valid over that output schema).
_SELECTS = [
    ("i, f, s, g", ("", " order by g, i", " order by f desc, i, s")),
    ("i + 1 as i2, f * 2 as f2, g", ("", " order by g, i2")),
    ("i - f as delta, s", ("", " order by delta, s")),
    ("-i as neg, f", ("", " order by neg desc, f")),
    ("case when i > {c} then 'hi' when i is null then 'null' "
     "else 'lo' end as bucket, g", ("", " order by bucket, g")),
    ("g || '-' || i as label, f", ("", " order by label")),
    ("coalesce(i, {c}) as filled, g", ("", " order by filled, g")),
    ("distinct g, s", ("", " order by g, s")),
]
_select_lists = st.sampled_from(_SELECTS)

_agg_lists = st.sampled_from([
    "count(*) as n, sum(f) as total",
    "count(i) as n, avg(f) as mean",
    "min(i) as lo, max(i) as hi",
    "min(s) as first_s, max(f) as peak",
    "sum(i) as si, count(s) as cs",
])

_limits = st.sampled_from(["", " limit 5"])


def _canon(rows: list[dict]) -> list[str]:
    return sorted(json.dumps(r, sort_keys=True, default=str) for r in rows)


def _run_both(sql: str, rows: list[dict]) -> None:
    database = {"t": rows}
    row = execute_sql(sql, database, CATALOG, engine="row").rows
    columnar = execute_sql(sql, database, CATALOG, engine="columnar").rows
    assert _canon(columnar) == _canon(row), sql


@settings(max_examples=60, deadline=None)
@given(rows=_table, select=_select_lists, pred=_predicates,
       c=st.integers(-3, 12), order_pick=st.integers(0, 7),
       limit=_limits)
def test_scan_fragments_agree(rows, select, pred, c, order_pick, limit):
    select_list, orders = select
    order = orders[order_pick % len(orders)]
    if limit and not order:
        # Both engines take a deterministic scan-order prefix, but the
        # canonical (sorted) comparison cannot express "any 5 of the
        # matches" — so only pair LIMIT with ORDER BY.
        limit = ""
    sql = (f"select {select_list.format(c=c)} from t "
           f"where {pred.format(c=c)}{order}{limit}")
    _run_both(sql, rows)


@settings(max_examples=60, deadline=None)
@given(rows=_table, aggs=_agg_lists, pred=_predicates, c=st.integers(-3, 12),
       grouped=st.booleans())
def test_aggregate_fragments_agree(rows, aggs, pred, c, grouped):
    group = " group by g" if grouped else ""
    head = f"g, {aggs}" if grouped else aggs
    sql = f"select {head} from t where {pred.format(c=c)}{group}"
    _run_both(sql, rows)


@settings(max_examples=40, deadline=None)
@given(left=_table, right=_table, c=st.integers(-3, 12),
       kind=st.sampled_from(["join", "left join"]))
def test_join_fragments_agree(left, right, c, kind):
    # Self-join keyed on a nullable int column: NULL keys never match.
    sql = (f"select a.i, a.g, b.f from t a {kind} t b on a.i = b.i "
           f"where a.f > {c} or a.f is null")
    _run_both(sql, left + right)
