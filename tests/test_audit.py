"""Resource-accounting audit layer (repro.audit).

Three layers of coverage:

* ledger unit tests — shadow bookkeeping, strict vs production mode, obs
  emission;
* seeded-bug regression tests — a deliberately unbalanced release / leaked
  registration / drifted counter must be caught by the ledger (the class of
  bug the clamp in ``NetworkModel.release_connections`` used to mask);
* end-to-end runs — strict audit stays silent across Terasort, TPC-H, and
  chaos campaigns, and the cluster drains (``open_connections == 0``).
"""

from __future__ import annotations

import pytest

from repro.api import RuntimeConfig, Simulation
from repro.audit import AuditError, AuditViolation, ResourceLedger
from repro.chaos import ChaosEngine
from repro.core.cache_worker import CacheWorker
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.obs.records import Category
from repro.obs.tracer import RecordingTracer
from repro.sim.cluster import Cluster
from repro.sim.config import CacheWorkerConfig, DiskConfig, NetworkConfig
from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel

MB = 1024**2


def _network(ledger: ResourceLedger | None = None) -> NetworkModel:
    network = NetworkModel(NetworkConfig(), n_machines=10)
    network.ledger = ledger
    return network


def _worker(
    capacity: int = 100 * MB, ledger: ResourceLedger | None = None
) -> CacheWorker:
    worker = CacheWorker(
        0, CacheWorkerConfig(memory_capacity=capacity), DiskModel(DiskConfig())
    )
    worker.ledger = ledger
    return worker


# ----------------------------------------------------------------------
# Ledger unit tests
# ----------------------------------------------------------------------

def test_balanced_connection_traffic_is_silent():
    ledger = ResourceLedger(strict=True)
    network = _network(ledger)
    network.register_connections(64)
    network.register_connections(36)
    network.release_connections(100)
    ledger.reconcile_network(network, "test")
    assert ledger.ok
    assert ledger.connections_outstanding == 0
    assert ledger.connections_registered_total == 100
    assert ledger.connections_released_total == 100


def test_double_release_raises_in_strict_mode():
    """The production clamp keeps the counter at zero, but the ledger must
    flag the second release instead of letting the clamp hide it."""
    ledger = ResourceLedger(strict=True)
    network = _network(ledger)
    network.register_connections(10)
    network.release_connections(10)
    with pytest.raises(AuditError) as excinfo:
        network.release_connections(10)
    assert excinfo.value.violation.resource == "connections"
    assert network.open_connections == 0  # clamp still applied on raise path


def test_double_release_recorded_in_production_mode():
    ledger = ResourceLedger(strict=False)
    network = _network(ledger)
    network.register_connections(10)
    network.release_connections(10)
    network.release_connections(10)  # no raise
    assert not ledger.ok
    assert len(ledger.violations) == 1
    assert ledger.violations[0].resource == "connections"
    assert network.open_connections == 0


def test_leaked_registration_caught_at_reconcile():
    ledger = ResourceLedger(strict=False)
    network = _network(ledger)
    network.register_connections(10)
    # Simulate a buggy path that forgot the ledger hook AND the release:
    # the authoritative counter diverges from the shadow.
    network.open_connections -= 4
    ledger.reconcile_network(network, "checkpoint")
    assert not ledger.ok
    assert network.open_connections == 6
    # After the resync, a clean second reconcile stays silent.
    before = len(ledger.violations)
    ledger.reconcile_network(network, "checkpoint2")
    assert len(ledger.violations) == before


def test_cache_counter_drift_caught():
    ledger = ResourceLedger(strict=False)
    worker = _worker(ledger=ledger)
    worker.write("job", "e0", 10 * MB, 1, now=0.0)
    worker.bytes_in_memory += 123.0  # seeded drift
    ledger.reconcile_cache_worker(worker, "checkpoint")
    assert any(v.resource == "cache_memory" for v in ledger.violations)


def test_cache_release_balances():
    ledger = ResourceLedger(strict=True)
    worker = _worker(ledger=ledger)
    worker.write("jobA", "e0", 10 * MB, 1, now=0.0)
    worker.write("jobA", "e1", 15 * MB, 2, now=1.0)
    worker.consume("jobA", "e0")
    worker.consume("jobA", "e1")
    worker.consume("jobA", "e1")
    ledger.reconcile_cache_worker(worker, "end")
    assert ledger.ok
    assert worker.bytes_in_memory == 0.0
    assert len(worker) == 0


def test_violations_emit_obs_instants_and_counter():
    tracer = RecordingTracer()
    ledger = ResourceLedger(strict=False, tracer=tracer, now_fn=lambda: 42.0)
    network = _network(ledger)
    network.release_connections(5)
    instants = [r for r in tracer.records if r.cat == Category.AUDIT]
    assert len(instants) == 1
    assert instants[0].name == "audit.connections"
    assert instants[0].ts == 42.0
    assert tracer.metrics.counter("audit_violations").value == 1


def test_violation_str_and_dict_round_trip():
    violation = AuditViolation(
        resource="connections", message="boom", checkpoint="cp",
        expected=3, actual=5,
    )
    assert "connections" in str(violation) and "cp" in str(violation)
    payload = violation.to_dict()
    assert payload["expected"] == 3 and payload["actual"] == 5
    ledger = ResourceLedger(strict=False)
    assert ledger.summary()["violations"] == []


# ----------------------------------------------------------------------
# Float-drift and spill read-back fixes (satellites 2 and 3)
# ----------------------------------------------------------------------

def test_memory_counter_equals_entry_sum_after_many_partial_releases():
    """Repeated fractional writes/releases used to drift the incremental
    counter; it must now always equal the entry-map sum exactly."""
    worker = _worker()
    sizes = [0.1 * MB * (i + 1) / 3.0 for i in range(30)]
    for i, size in enumerate(sizes):
        worker.write("job", f"e{i}", size, 1, now=float(i))
    for i in range(0, 30, 2):
        worker.consume("job", f"e{i}")
    expected = sum(e.bytes_in_memory for e in worker.iter_entries())
    assert worker.bytes_in_memory == expected
    worker.release_job("job")
    assert worker.bytes_in_memory == 0.0


def test_spilled_read_back_total_never_exceeds_spilled_bytes():
    """Satellite 3: with consumers finishing between reads, the old
    ``bytes_on_disk / pending_consumers`` formula re-charged the remaining
    readers; the snapshotted share must keep the total at the spilled size."""
    worker = _worker(capacity=50 * MB)
    worker.write("job", "spilled", 40 * MB, 4, now=0.0)
    worker.write("job", "hot", 40 * MB, 1, now=1.0)  # forces the spill
    entry = worker.entry("job", "spilled")
    assert entry is not None and entry.bytes_on_disk == 40 * MB
    assert entry.spill_read_share == pytest.approx(10 * MB)
    for r in range(4):
        delay = worker.read("job", "spilled", now=2.0 + r)
        assert delay > 0.0
        # Shrink the consumer count between reads, as consume() does.
        entry.pending_consumers = max(1, entry.pending_consumers - 1)
    assert entry.bytes_read_back == pytest.approx(40 * MB)
    # A straggler re-read after full promotion is free.
    assert worker.read("job", "spilled", now=10.0) == 0.0


def test_oversized_write_snapshots_read_share():
    worker = _worker(capacity=10 * MB)
    worker.write("job", "huge", 40 * MB, 2, now=0.0)
    entry = worker.entry("job", "huge")
    assert entry is not None
    assert entry.bytes_in_memory == 0.0
    assert entry.bytes_on_disk == 40 * MB
    assert entry.spill_read_share == pytest.approx(20 * MB)
    assert worker.read("job", "huge", now=1.0) > 0.0
    assert worker.read("job", "huge", now=2.0) > 0.0
    assert worker.read("job", "huge", now=3.0) == 0.0  # fully promoted


# ----------------------------------------------------------------------
# End-to-end: strict audit across real runs
# ----------------------------------------------------------------------

def _drained(runtime: SwiftRuntime) -> None:
    assert runtime.cluster.network.open_connections == 0
    for machine in runtime.cluster.machines:
        worker = machine.cache_worker
        assert worker is not None
        assert len(worker) == 0
        assert worker.bytes_in_memory == 0.0


def test_terasort_under_strict_audit():
    from repro.workloads import terasort

    cluster = Cluster.build(8, 8)
    runtime = SwiftRuntime(cluster, swift_policy(), audit=True)
    result = runtime.execute(terasort.terasort_job(24, 24))
    assert result.completed
    assert runtime.ledger is not None and runtime.ledger.ok
    assert runtime.ledger.checkpoints_run > 0
    _drained(runtime)


def test_tpch_under_strict_audit():
    from repro.workloads import tpch

    cluster = Cluster.build(25, 32)
    runtime = SwiftRuntime(cluster, swift_policy(), audit=True)
    result = runtime.execute(tpch.query_job(13, scale=0.1))
    assert result.completed
    assert runtime.ledger is not None and runtime.ledger.ok
    _drained(runtime)


def test_chaos_campaign_with_audit_passes():
    engine = ChaosEngine(workload="terasort", profile="standard", audit=True)
    result = engine.run_seed(0, shrink=False)
    assert result.passed, [str(v) for v in result.violations]


def test_chaos_audit_invariant_catches_seeded_leak(monkeypatch):
    """Regression: a deliberately unbalanced release inside the runtime is
    surfaced by the resource-conservation invariant, not swallowed."""
    engine = ChaosEngine(workload="terasort", profile="light", audit=True)
    original = SwiftRuntime._on_stage_completed

    def buggy(self, sr):
        # Forget half the connections of every stage: a leak the clamp in
        # release_connections would otherwise hide forever.
        if sr.registered_connections:
            sr.registered_connections //= 2
        return original(self, sr)

    monkeypatch.setattr(SwiftRuntime, "_on_stage_completed", buggy)
    engine._baselines.clear()
    result = engine.run_campaign(engine.generate(0))
    assert any(
        v.invariant == "resource-conservation" for v in result.violations
    ), [str(v) for v in result.violations]


def test_runtime_config_round_trips_audit_flags():
    config = RuntimeConfig(n_machines=4, audit=True, audit_strict=False)
    rebuilt = RuntimeConfig.from_dict(config.to_dict())
    assert rebuilt.audit is True
    assert rebuilt.audit_strict is False
    assert RuntimeConfig().to_dict()["audit"] is False


def test_simulation_facade_exposes_audit_summary():
    from repro.workloads import terasort

    config = RuntimeConfig(n_machines=8, executors_per_machine=8, audit=True)
    outcome = Simulation(config).run(terasort.terasort_job(16, 16))
    assert outcome.completed
    assert outcome.audit is not None
    assert outcome.audit["violations"] == []
    assert outcome.audit["checkpoints_run"] > 0
    baseline = Simulation(
        RuntimeConfig(n_machines=8, executors_per_machine=8)
    ).run(terasort.terasort_job(16, 16))
    assert baseline.audit is None
    # Auditing is observational: results are byte-identical.
    assert outcome.makespan == baseline.makespan
