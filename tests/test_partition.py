"""Tests for job partitioning: Algorithms 1-2 and the baseline partitioners."""

from __future__ import annotations

import pytest

from repro.core.dag import Edge, JobDAG
from repro.core.partition import (
    BubblePartitioner,
    StagePartitioner,
    SwiftPartitioner,
    WholeJobPartitioner,
    partition_job,
)
from repro.workloads import tpch

from conftest import chain_dag, diamond_dag, make_stage


def graphlet_sets(graph):
    return [frozenset(g.stage_names) for g in graph.graphlets]


def test_pipeline_chain_is_one_graphlet():
    graph = partition_job(chain_dag())
    assert len(graph) == 1
    assert graphlet_sets(graph) == [frozenset({"S1", "S2", "S3"})]


def test_barrier_splits_graphlets():
    graph = partition_job(chain_dag(blocking_stages=(1,)))
    assert graphlet_sets(graph) == [frozenset({"S1"}), frozenset({"S2", "S3"})]


def test_all_barriers_yield_per_stage_graphlets():
    graph = partition_job(chain_dag(blocking_stages=(1, 2)))
    assert len(graph) == 3


def test_partition_covers_every_stage_exactly_once():
    dag = diamond_dag(blocking_mid=True)
    graph = partition_job(dag)
    names = [n for g in graph.graphlets for n in g.stage_names]
    assert sorted(names) == sorted(dag.stages)


def test_partition_scans_both_directions():
    # A join whose two scan inputs are pipeline edges must absorb both
    # scans even though the scan comes *before* the trigger stage.
    stages = [make_stage("m1", scan_mb=1), make_stage("m2", scan_mb=1), make_stage("j")]
    dag = JobDAG("j", stages, [Edge("m1", "j"), Edge("m2", "j")])
    graph = partition_job(dag)
    assert len(graph) == 1


def test_q9_partitions_into_four_graphlets():
    """The paper's Fig. 4 example: Q9 splits into exactly 4 graphlets."""
    graph = partition_job(tpch.query_dag(9))
    assert len(graph) == 4
    sets = graphlet_sets(graph)
    assert frozenset({"M1", "M2", "M3", "J4"}) in sets
    assert frozenset({"M5", "J6"}) in sets
    assert frozenset({"M7", "M8", "R9", "J10"}) in sets
    assert frozenset({"R11", "R12"}) in sets


def test_q9_trigger_stages():
    graph = partition_job(tpch.query_dag(9))
    triggers = {g.trigger_stage for g in graph.graphlets}
    # Each graphlet's scan starts from the first remaining stage in
    # topological order (Algorithm 1 line 2).
    assert "M1" in triggers


def test_whole_job_partitioner():
    dag = chain_dag(blocking_stages=(1, 2))
    graph = WholeJobPartitioner().partition(dag)
    assert len(graph) == 1
    assert graph.has_internal_barriers()


def test_stage_partitioner():
    dag = chain_dag()
    graph = StagePartitioner().partition(dag)
    assert len(graph) == 3
    assert not graph.has_internal_barriers()


def test_swift_partition_never_has_internal_barriers():
    for dag in (chain_dag(blocking_stages=(2,)), diamond_dag(blocking_mid=True),
                tpch.query_dag(9), tpch.query_dag(13)):
        graph = partition_job(dag)
        assert not graph.has_internal_barriers()


def test_bubble_partitioner_respects_memory_budget():
    # A tiny budget forces the bubble partitioner to cut pipeline edges.
    dag = chain_dag()
    tight = BubblePartitioner(memory_budget_bytes=1.0).partition(dag)
    loose = BubblePartitioner(memory_budget_bytes=1e15).partition(dag)
    assert len(tight) == 3
    assert len(loose) == 1


def test_bubble_partitioner_rejects_bad_budget():
    with pytest.raises(ValueError):
        BubblePartitioner(memory_budget_bytes=0)


def test_deep_chain_no_recursion_limit():
    # Algorithm 2 is recursive in the paper; our iterative form must
    # handle DAGs deeper than Python's recursion limit.
    dag = chain_dag(n_stages=2000, tasks=1)
    graph = partition_job(dag)
    assert len(graph) == 1


def test_partitioner_names():
    assert SwiftPartitioner().name == "swift"
    assert WholeJobPartitioner().name == "whole_job"
    assert StagePartitioner().name == "per_stage"
    assert BubblePartitioner().name == "bubble"


def cyclic_graphlet_dag() -> JobDAG:
    """A DAG where raw Algorithms 1-2 produce mutually-dependent graphlets.

    u -> v (pipeline), u -> c (pipeline), v -> s (barrier, v blocking),
    s -> d (barrier, s blocking), c -> d (pipeline): the raw scan groups
    {u, v, c, d} (pipeline-connected) and {s}; then {u,v,c,d} needs s for d
    while {s} needs v — a dependency cycle.
    """
    stages = [
        make_stage("u"),
        make_stage("v", blocking=True),
        make_stage("c"),
        make_stage("s", blocking=True),
        make_stage("d"),
    ]
    edges = [
        Edge("u", "v"), Edge("u", "c"), Edge("v", "s"),
        Edge("s", "d"), Edge("c", "d"),
    ]
    return JobDAG("cyclic_units", stages, edges)


def test_raw_partition_can_be_cyclic():
    graph = SwiftPartitioner(enforce_acyclic=False).partition(cyclic_graphlet_dag())
    with pytest.raises(ValueError):
        graph.submission_order()


def test_acyclic_enforcement_breaks_cycles():
    graph = SwiftPartitioner().partition(cyclic_graphlet_dag())
    order = graph.submission_order()  # must not raise
    position = {gid: i for i, gid in enumerate(order)}
    for gid, deps in graph.dependencies.items():
        for dep in deps:
            assert position[dep] < position[gid]
    # Every stage still covered exactly once.
    names = sorted(n for g in graph.graphlets for n in g.stage_names)
    assert names == sorted(cyclic_graphlet_dag().stages)


def test_cyclic_dag_executes_end_to_end():
    from repro.core.policies import swift_policy
    from repro.core.runtime import SwiftRuntime
    from repro.core.dag import Job
    from repro.sim.cluster import Cluster

    runtime = SwiftRuntime(Cluster.build(4, 16), swift_policy())
    result = runtime.execute(Job(dag=cyclic_graphlet_dag()))
    assert result.completed
