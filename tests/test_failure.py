"""Tests for failure classification, recovery planning, detection."""

from __future__ import annotations

import pytest

from repro.core.dag import JobDAG
from repro.core.failure import (
    MachineHealthMonitor,
    RecoveryCase,
    classify_failure,
    detection_delay,
    executed_successor_closure,
    plan_recovery,
)
from repro.core.partition import partition_job
from repro.sim.config import AdminConfig
from repro.sim.failures import FailureKind

from conftest import chain_dag


def two_graphlet_dag(idempotent: bool = True) -> JobDAG:
    """S1 -(barrier)-> S2 -> S3: graphlets {S1} and {S2, S3}."""
    return chain_dag("tg", blocking_stages=(1,), idempotent=idempotent)


def test_classify_intra_graphlet():
    dag = chain_dag()
    graph = partition_job(dag)
    assert classify_failure(dag, graph, "S2") == RecoveryCase.INTRA_GRAPHLET


def test_classify_input_failure():
    dag = two_graphlet_dag()
    graph = partition_job(dag)
    assert classify_failure(dag, graph, "S2") == RecoveryCase.INPUT_FAILURE


def test_classify_output_failure():
    dag = two_graphlet_dag()
    graph = partition_job(dag)
    assert classify_failure(dag, graph, "S1") == RecoveryCase.OUTPUT_FAILURE


def test_classify_input_and_output():
    dag = chain_dag("io", blocking_stages=(1, 2), n_stages=3)
    graph = partition_job(dag)
    assert classify_failure(dag, graph, "S2") == RecoveryCase.INPUT_AND_OUTPUT


def test_classify_useless():
    dag = chain_dag()
    graph = partition_job(dag)
    case = classify_failure(dag, graph, "S2", FailureKind.APPLICATION_ERROR)
    assert case == RecoveryCase.USELESS


def test_noop_when_idempotent_and_consumed():
    dag = chain_dag()
    graph = partition_job(dag)
    decision = plan_recovery(
        dag, graph, "S1", task_finished=True, output_fully_consumed=True
    )
    assert decision.noop


def test_idempotent_rerun_just_the_task():
    dag = chain_dag()
    graph = partition_job(dag)
    decision = plan_recovery(
        dag, graph, "S2", task_finished=True, output_fully_consumed=False
    )
    assert not decision.noop
    assert decision.rerun_stages == ("S2",)
    # Same-graphlet predecessors re-send their cached data.
    assert decision.resend_from == ("S1",)


def test_non_idempotent_drags_executed_successors():
    dag = chain_dag(idempotent=False)
    graph = partition_job(dag)
    decision = plan_recovery(
        dag, graph, "S1",
        has_executed={"S1": True, "S2": True, "S3": False},
    )
    assert set(decision.rerun_stages) == {"S1", "S2"}


def test_non_idempotent_closure_stops_at_graphlet_boundary():
    dag = chain_dag("ni", blocking_stages=(2,), idempotent=False)
    graph = partition_job(dag)  # {S1, S2} and {S3}
    closure = executed_successor_closure(dag, graph, "S1")
    assert closure == ["S2"]


def test_useless_failure_not_retried():
    dag = chain_dag()
    graph = partition_job(dag)
    decision = plan_recovery(dag, graph, "S2", kind=FailureKind.APPLICATION_ERROR)
    assert decision.case == RecoveryCase.USELESS
    assert decision.rerun_stages == ()


def test_input_failure_needs_no_producer_resend():
    """Fig. 7(a): the re-launched task fetches from the producers' Cache
    Workers; no channel updates, no re-sends."""
    dag = two_graphlet_dag()
    graph = partition_job(dag)
    decision = plan_recovery(dag, graph, "S2")
    assert decision.case == RecoveryCase.INPUT_FAILURE
    assert decision.resend_from == ()
    assert decision.rerun_stages == ("S2",)


def test_detection_delay_by_kind():
    admin = AdminConfig()
    fast = detection_delay(FailureKind.TASK_CRASH, admin, 100)
    assert fast == admin.self_report_latency
    hb = detection_delay(FailureKind.MACHINE_CRASH, admin, 100)
    assert hb == pytest.approx(2.5)  # half of the 5s small-cluster interval
    hb_large = detection_delay(FailureKind.MACHINE_CRASH, admin, 50_000)
    assert hb_large == pytest.approx(7.5)


def test_detection_delay_rejects_bad_phase():
    with pytest.raises(ValueError):
        detection_delay(FailureKind.MACHINE_CRASH, AdminConfig(), 10, heartbeat_phase=2.0)


def test_health_monitor_standalone():
    monitor = MachineHealthMonitor(admin=AdminConfig())
    threshold = monitor.admin.unhealthy_task_failures
    for i in range(threshold - 1):
        assert monitor.record_failure(1, now=float(i)) is False
    assert monitor.record_failure(1, now=float(threshold)) is True
    # Already read-only: no second notification.
    assert monitor.record_failure(1, now=float(threshold + 1)) is False
