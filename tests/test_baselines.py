"""Tests for baseline policy construction."""

from __future__ import annotations

import pytest

from repro.baselines import bubble_policy, jetscope_policy, restart_policy, spark_policy
from repro.core.partition import (
    BubblePartitioner,
    StagePartitioner,
    WholeJobPartitioner,
)
from repro.core.policies import (
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
    swift_policy,
)
from repro.core.shuffle import ShuffleScheme


def test_swift_policy_defaults():
    p = swift_policy()
    assert p.name == "swift"
    assert p.shuffle == ShuffleScheme.ADAPTIVE
    assert p.launch == LaunchModel.PRELAUNCHED
    assert p.recovery == FailureRecovery.FINE_GRAINED
    assert p.submission == SubmissionOrder.CONSERVATIVE
    assert p.gang and p.pipelined_execution


def test_spark_policy_models_the_paper_claims():
    p = spark_policy()
    assert isinstance(p.partitioner, StagePartitioner)
    assert p.shuffle == ShuffleScheme.DISK        # disk-based shuffle
    assert p.launch == LaunchModel.COLDSTART      # per-job executor launch
    assert not p.gang                             # wave execution
    assert not p.pipelined_execution


def test_jetscope_policy_models_whole_job_gang():
    p = jetscope_policy()
    assert isinstance(p.partitioner, WholeJobPartitioner)
    assert p.launch == LaunchModel.PRELAUNCHED
    assert p.recovery == FailureRecovery.JOB_RESTART
    assert p.gang


def test_bubble_policy_models_bubbles():
    p = bubble_policy()
    assert isinstance(p.partitioner, BubblePartitioner)
    assert p.submission == SubmissionOrder.EAGER
    assert p.cross_unit_shuffle == ShuffleScheme.DISK
    assert p.effective_cross_unit_shuffle() == ShuffleScheme.DISK


def test_restart_policy_differs_only_in_recovery():
    p = restart_policy()
    s = swift_policy()
    assert p.recovery == FailureRecovery.JOB_RESTART
    assert p.shuffle == s.shuffle
    assert p.launch == s.launch
    assert p.gang == s.gang


def test_cross_unit_shuffle_defaults_to_main():
    assert swift_policy().effective_cross_unit_shuffle() == ShuffleScheme.ADAPTIVE


def test_override_kwargs():
    p = spark_policy(name="spark2")
    assert p.name == "spark2"
    for factory in (spark_policy, jetscope_policy, bubble_policy, restart_policy,
                    swift_policy):
        with pytest.raises(AttributeError):
            factory(nonsense=True)
