"""SQL conformance corpus, parameterized over both execution engines.

Every case runs through :func:`repro.sql.dispatch.execute_sql` with
``engine`` forced to ``row`` and ``columnar`` (plus ``auto``) and asserts
identical results, pinning down the semantic corners where vectorized
rewrites classically diverge from row-at-a-time interpreters: NULL
comparison and arithmetic, LIKE with ``_``/``%`` wildcards and glob
metacharacters in the data, CASE, IN lists, aggregates over empty input,
and duplicate group keys.
"""

from __future__ import annotations

import json

import pytest

from repro.sql import (
    Catalog,
    TableSchema,
    UnsupportedFeature,
    execute_sql,
    like_to_glob,
    sql_like,
)
from repro.sql.catalog import _cols

ENGINES = ("row", "columnar", "auto")


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(TableSchema(
        "items",
        _cols("id:int", "price:float", "qty:int", "tag:str", "grp:str"),
        base_rows=10, bytes_per_row=50,
    ))
    catalog.register(TableSchema(
        "owners",
        _cols("oid:int", "owner:str"),
        base_rows=5, bytes_per_row=30,
    ))
    return catalog


def _numpy_catalog() -> Catalog:
    """Tables for the numpy-specific corpus (NaN, all-null, empty)."""
    catalog = _catalog()
    catalog.register(TableSchema(
        "metrics",
        _cols("m_id:int", "m_val:float", "m_grp:str"),
        base_rows=6, bytes_per_row=30,
    ))
    catalog.register(TableSchema(
        "blanks",
        _cols("b_id:int", "b_note:str", "b_val:float"),
        base_rows=4, bytes_per_row=30,
    ))
    return catalog


def _numpy_database() -> dict:
    nan = float("nan")
    database = _database()
    database["metrics"] = [
        {"m_id": 1, "m_val": 2.5, "m_grp": "x"},
        {"m_id": 2, "m_val": nan, "m_grp": "x"},
        {"m_id": 3, "m_val": None, "m_grp": "y"},
        {"m_id": 4, "m_val": -1.0, "m_grp": "y"},
        {"m_id": 5, "m_val": nan, "m_grp": "y"},
        {"m_id": 6, "m_val": 9.0, "m_grp": "x"},
    ]
    database["blanks"] = [
        {"b_id": i, "b_note": None, "b_val": None} for i in range(1, 5)
    ]
    return database


def _database() -> dict:
    return {
        "items": [
            {"id": 1, "price": 10.0, "qty": 2, "tag": "alpha", "grp": "a"},
            {"id": 2, "price": None, "qty": 5, "tag": "al_ha", "grp": "a"},
            {"id": 3, "price": 7.5, "qty": None, "tag": "10%", "grp": "b"},
            {"id": 4, "price": 2.5, "qty": 1, "tag": None, "grp": "b"},
            {"id": 5, "price": 100.0, "qty": 9, "tag": "10[%", "grp": "a"},
            {"id": 6, "price": 7.5, "qty": 3, "tag": "beta*", "grp": "b"},
        ],
        "owners": [
            {"oid": 1, "owner": "ada"},
            {"oid": 3, "owner": "bob"},
            {"oid": 99, "owner": "eve"},
        ],
    }


def _canon(rows):
    """Order-insensitive canonical form for queries without ORDER BY."""
    return sorted(json.dumps(r, sort_keys=True, default=str) for r in rows)


#: (case id, SQL text, order_sensitive)
CORPUS = [
    ("null_comparison",
     "select id from items where price > 5 order by id", True),
    ("null_equality_excluded",
     "select id from items where price = price order by id", True),
    ("null_arithmetic",
     "select id, price * qty as total from items order by id", True),
    ("null_in_predicate",
     "select id from items where qty in (1, 2, 3) order by id", True),
    ("in_with_strings",
     "select id from items where grp in ('a', 'missing') order by id", True),
    ("like_underscore",
     "select id from items where tag like 'al_ha' order by id", True),
    ("like_percent",
     "select id from items where tag like '10%' order by id", True),
    ("like_glob_metachars",
     "select id from items where tag like 'beta*' order by id", True),
    ("case_when",
     "select id, case when qty > 2 then 'big' when qty is null then 'unknown' "
     "else 'small' end as size from items order by id", True),
    ("empty_input_aggregates",
     "select count(*) as n, sum(price) as total, min(qty) as lo, "
     "max(qty) as hi, avg(price) as mean from items where id > 100", True),
    ("duplicate_group_keys",
     "select grp, count(*) as n, sum(price) as total from items "
     "group by grp order by grp", True),
    ("grouped_avg_skips_nulls",
     "select grp, avg(price) as mean, avg(qty) as mean_qty from items "
     "group by grp order by grp", True),
    ("having_filter",
     "select grp, count(*) as n from items group by grp "
     "having count(*) > 2 order by grp", True),
    ("inner_join",
     "select i.id, o.owner from items i join owners o on i.id = o.oid "
     "order by i.id", True),
    ("left_join_unmatched",
     "select i.id, o.owner from items i left join owners o on i.id = o.oid "
     "order by i.id", True),
    ("distinct_rows",
     "select distinct grp, price from items", False),
    ("string_concat",
     "select id, grp || '-' || id as label from items order by id", True),
    ("limit_after_sort",
     "select id, price from items order by price desc, id limit 3", True),
    ("filter_and_or",
     "select id from items where (qty > 1 and price < 50) or grp = 'b' "
     "order by id", True),
    ("unary_negation",
     "select id, -price as neg from items where -price < -5 order by id", True),
]


@pytest.fixture(scope="module")
def setup():
    return _database(), _catalog()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case_id,sql,ordered", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_case_runs(engine, case_id, sql, ordered, setup):
    database, catalog = setup
    outcome = execute_sql(sql, database, catalog, engine=engine)
    assert isinstance(outcome.rows, list)


@pytest.mark.parametrize("case_id,sql,ordered", CORPUS, ids=[c[0] for c in CORPUS])
def test_engines_agree(case_id, sql, ordered, setup):
    database, catalog = setup
    row = execute_sql(sql, database, catalog, engine="row").rows
    columnar = execute_sql(sql, database, catalog, engine="columnar").rows
    auto = execute_sql(sql, database, catalog, engine="auto").rows
    if ordered:
        assert columnar == row
        assert auto == row
    else:
        assert _canon(columnar) == _canon(row)
        assert _canon(auto) == _canon(row)


def test_left_join_fills_missing_right_columns(setup):
    database, catalog = setup
    sql = ("select i.id, o.owner from items i left join owners o "
           "on i.id = o.oid order by i.id")
    rows = execute_sql(sql, database, catalog, engine="row").rows
    assert {"id", "owner"} <= set(rows[0].keys())
    unmatched = [r for r in rows if r["owner"] is None]
    assert [r["id"] for r in unmatched] == [2, 4, 5, 6]


def test_left_join_empty_right_side(setup):
    database, catalog = setup
    # The right input planner-filters to nothing: NULL fill must come from
    # the static catalog schema, not from observed rows.
    sql = ("select i.id, o.owner from items i left join "
           "(select oid, owner from owners where 1 = 0) o on i.id = o.oid "
           "order by i.id")
    for engine in ENGINES:
        rows = execute_sql(sql, database, catalog, engine=engine).rows
        assert len(rows) == len(database["items"])
        assert all(r["owner"] is None for r in rows)


def test_empty_aggregate_values(setup):
    database, catalog = setup
    sql = ("select count(*) as n, sum(price) as total, avg(price) as mean "
           "from items where id > 100")
    for engine in ENGINES:
        (row,) = execute_sql(sql, database, catalog, engine=engine).rows
        assert row == {"n": 0, "total": None, "mean": None}


def test_like_to_glob_escapes_metacharacters():
    assert like_to_glob("10%") == "10*"
    assert like_to_glob("a_c") == "a?c"
    # Glob specials in the LIKE pattern must match literally.
    assert like_to_glob("10[%") == "10[[]*"
    assert like_to_glob("a*b?") == "a[*]b[?]"


def test_sql_like_literal_metacharacters():
    assert sql_like("10[x", "10[%")
    assert not sql_like("10x", "10[%")
    assert sql_like("a*b", "a*b")
    assert not sql_like("axb", "a*b")
    assert sql_like("anything", "%")
    assert sql_like("a", "_")
    assert not sql_like("ab", "_")


# ----------------------------------------------------------------------
# Numpy-specific semantics: NaN vs NULL, dictionary strings with glob
# metacharacters, empty batches, all-null columns.  Every case is
# differential: the row engine's answer is the spec.
# ----------------------------------------------------------------------

#: NaN is a *value* (counted, propagated through sums) while NULL is the
#: *absence* of one (skipped by aggregates, excluded by comparisons) —
#: the classic place a numpy rewrite conflates the two.
NAN_CORPUS = [
    ("nan_comparison_false",
     "select m_id from metrics where m_val > 1.0 order by m_id"),
    ("nan_not_self_equal",
     "select m_id from metrics where m_val = m_val order by m_id"),
    ("nan_is_not_null",
     "select m_id from metrics where m_val is null order by m_id"),
    ("nan_counted_not_skipped",
     "select count(*) as all_rows, count(m_val) as with_val from metrics"),
    ("nan_poisons_sum_and_avg",
     "select sum(m_val) as total, avg(m_val) as mean from metrics"),
    ("nan_grouped_aggregates",
     "select m_grp, count(m_val) as n, sum(m_val) as total from metrics "
     "group by m_grp order by m_grp"),
    ("nan_min_max_first_seen",
     "select m_grp, min(m_val) as lo, max(m_val) as hi from metrics "
     "group by m_grp order by m_grp"),
    ("nan_case_branch",
     "select m_id, case when m_val > 0 then 'pos' when m_val is null "
     "then 'none' else 'other' end as bucket from metrics order by m_id"),
]

#: Equality and LIKE against dictionary-encoded strings whose *data*
#: contains glob metacharacters ("10%", "10[%", "beta*") — a regex or
#: fnmatch translation applied to the dictionary must not let them match
#: as wildcards.
METACHAR_CORPUS = [
    ("dict_equality_percent",
     "select id from items where tag = '10%' order by id"),
    ("dict_equality_bracket",
     "select id from items where tag = '10[%' order by id"),
    ("dict_like_bracket_literal",
     "select id from items where tag like '10[%' order by id"),
    ("dict_like_star_is_literal",
     "select id from items where tag like '%a*' order by id"),
    ("dict_in_metachars",
     "select id from items where tag in ('10%', 'beta*', 'nope') order by id"),
]


@pytest.fixture(scope="module")
def numpy_setup():
    return _numpy_database(), _numpy_catalog()


def _json_rows(rows):
    """Order-preserving row images; NaN-tolerant (NaN != NaN under ==)."""
    return [json.dumps(r, sort_keys=True, default=str) for r in rows]


@pytest.mark.parametrize("case_id,sql", NAN_CORPUS + METACHAR_CORPUS,
                         ids=[c[0] for c in NAN_CORPUS + METACHAR_CORPUS])
def test_numpy_semantics_match_row_engine(case_id, sql, numpy_setup):
    database, catalog = numpy_setup
    row = execute_sql(sql, database, catalog, engine="row").rows
    columnar = execute_sql(sql, database, catalog, engine="columnar").rows
    assert _json_rows(columnar) == _json_rows(row)


def test_nan_is_distinct_from_null(numpy_setup):
    database, catalog = numpy_setup
    sql = "select count(*) as all_rows, count(m_val) as with_val from metrics"
    for engine in ENGINES:
        (row,) = execute_sql(sql, database, catalog, engine=engine).rows
        # 6 rows, 1 NULL: NaN rows still count as present values.
        assert row == {"all_rows": 6, "with_val": 5}


#: Queries that must behave identically over a zero-row table.
EMPTY_CORPUS = [
    ("empty_filter_project",
     "select id, price * 2 as dbl from items where qty > 1 order by id"),
    ("empty_global_aggregate",
     "select count(*) as n, sum(price) as total, avg(qty) as mean from items"),
    ("empty_group_by",
     "select grp, count(*) as n from items group by grp order by grp"),
    ("empty_join_left_input",
     "select i.id, o.owner from items i join owners o on i.id = o.oid "
     "order by i.id"),
    ("empty_sort_limit",
     "select id, price from items order by price desc, id limit 3"),
]


@pytest.mark.parametrize("case_id,sql", EMPTY_CORPUS,
                         ids=[c[0] for c in EMPTY_CORPUS])
@pytest.mark.parametrize("layout", ("rows", "columnar"))
def test_empty_table_both_layouts(case_id, sql, layout, numpy_setup):
    _, catalog = numpy_setup
    items = ([] if layout == "rows"
             else catalog.resolve_table("items").empty_table())
    database = {"items": items, "owners": _database()["owners"]}
    expected = execute_sql(sql, database, catalog, engine="row").rows
    for engine in ("columnar", "auto"):
        got = execute_sql(sql, database, catalog, engine=engine).rows
        assert got == expected


#: All-null columns (typed ``object`` by inference — no valid value to
#: pick a dtype from) must survive predicates, grouping, and aggregation.
ALL_NULL_CORPUS = [
    ("all_null_is_null_filter",
     "select b_id from blanks where b_note is null order by b_id"),
    ("all_null_comparison_empty",
     "select b_id from blanks where b_val > 0 order by b_id"),
    ("all_null_aggregates",
     "select count(b_val) as n, sum(b_val) as total, min(b_note) as lo "
     "from blanks"),
    ("all_null_group_key",
     "select b_note, count(*) as n from blanks group by b_note"),
    ("all_null_concat",
     "select b_id, b_note || '!' as noisy from blanks order by b_id"),
]


@pytest.mark.parametrize("case_id,sql", ALL_NULL_CORPUS,
                         ids=[c[0] for c in ALL_NULL_CORPUS])
def test_all_null_column_matches_row_engine(case_id, sql, numpy_setup):
    database, catalog = numpy_setup
    row = execute_sql(sql, database, catalog, engine="row").rows
    columnar = execute_sql(sql, database, catalog, engine="columnar").rows
    assert _json_rows(columnar) == _json_rows(row)


def test_forced_columnar_unsupported_is_loud(setup):
    database, catalog = setup
    sql = "select a.id from items a join items b on a.id < b.id"
    with pytest.raises(UnsupportedFeature):
        execute_sql(sql, database, catalog, engine="columnar")
    # Auto silently falls back and still answers.
    outcome = execute_sql(sql, database, catalog, engine="auto")
    assert outcome.engine == "row"
    assert outcome.rows == execute_sql(sql, database, catalog, engine="row").rows
