"""SQL conformance corpus, parameterized over both execution engines.

Every case runs through :func:`repro.sql.dispatch.execute_sql` with
``engine`` forced to ``row`` and ``columnar`` (plus ``auto``) and asserts
identical results, pinning down the semantic corners where vectorized
rewrites classically diverge from row-at-a-time interpreters: NULL
comparison and arithmetic, LIKE with ``_``/``%`` wildcards and glob
metacharacters in the data, CASE, IN lists, aggregates over empty input,
and duplicate group keys.
"""

from __future__ import annotations

import json

import pytest

from repro.sql import (
    Catalog,
    TableSchema,
    UnsupportedFeature,
    execute_sql,
    like_to_glob,
    sql_like,
)
from repro.sql.catalog import _cols

ENGINES = ("row", "columnar", "auto")


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(TableSchema(
        "items",
        _cols("id:int", "price:float", "qty:int", "tag:str", "grp:str"),
        base_rows=10, bytes_per_row=50,
    ))
    catalog.register(TableSchema(
        "owners",
        _cols("oid:int", "owner:str"),
        base_rows=5, bytes_per_row=30,
    ))
    return catalog


def _database() -> dict:
    return {
        "items": [
            {"id": 1, "price": 10.0, "qty": 2, "tag": "alpha", "grp": "a"},
            {"id": 2, "price": None, "qty": 5, "tag": "al_ha", "grp": "a"},
            {"id": 3, "price": 7.5, "qty": None, "tag": "10%", "grp": "b"},
            {"id": 4, "price": 2.5, "qty": 1, "tag": None, "grp": "b"},
            {"id": 5, "price": 100.0, "qty": 9, "tag": "10[%", "grp": "a"},
            {"id": 6, "price": 7.5, "qty": 3, "tag": "beta*", "grp": "b"},
        ],
        "owners": [
            {"oid": 1, "owner": "ada"},
            {"oid": 3, "owner": "bob"},
            {"oid": 99, "owner": "eve"},
        ],
    }


def _canon(rows):
    """Order-insensitive canonical form for queries without ORDER BY."""
    return sorted(json.dumps(r, sort_keys=True, default=str) for r in rows)


#: (case id, SQL text, order_sensitive)
CORPUS = [
    ("null_comparison",
     "select id from items where price > 5 order by id", True),
    ("null_equality_excluded",
     "select id from items where price = price order by id", True),
    ("null_arithmetic",
     "select id, price * qty as total from items order by id", True),
    ("null_in_predicate",
     "select id from items where qty in (1, 2, 3) order by id", True),
    ("in_with_strings",
     "select id from items where grp in ('a', 'missing') order by id", True),
    ("like_underscore",
     "select id from items where tag like 'al_ha' order by id", True),
    ("like_percent",
     "select id from items where tag like '10%' order by id", True),
    ("like_glob_metachars",
     "select id from items where tag like 'beta*' order by id", True),
    ("case_when",
     "select id, case when qty > 2 then 'big' when qty is null then 'unknown' "
     "else 'small' end as size from items order by id", True),
    ("empty_input_aggregates",
     "select count(*) as n, sum(price) as total, min(qty) as lo, "
     "max(qty) as hi, avg(price) as mean from items where id > 100", True),
    ("duplicate_group_keys",
     "select grp, count(*) as n, sum(price) as total from items "
     "group by grp order by grp", True),
    ("grouped_avg_skips_nulls",
     "select grp, avg(price) as mean, avg(qty) as mean_qty from items "
     "group by grp order by grp", True),
    ("having_filter",
     "select grp, count(*) as n from items group by grp "
     "having count(*) > 2 order by grp", True),
    ("inner_join",
     "select i.id, o.owner from items i join owners o on i.id = o.oid "
     "order by i.id", True),
    ("left_join_unmatched",
     "select i.id, o.owner from items i left join owners o on i.id = o.oid "
     "order by i.id", True),
    ("distinct_rows",
     "select distinct grp, price from items", False),
    ("string_concat",
     "select id, grp || '-' || id as label from items order by id", True),
    ("limit_after_sort",
     "select id, price from items order by price desc, id limit 3", True),
    ("filter_and_or",
     "select id from items where (qty > 1 and price < 50) or grp = 'b' "
     "order by id", True),
    ("unary_negation",
     "select id, -price as neg from items where -price < -5 order by id", True),
]


@pytest.fixture(scope="module")
def setup():
    return _database(), _catalog()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case_id,sql,ordered", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_case_runs(engine, case_id, sql, ordered, setup):
    database, catalog = setup
    outcome = execute_sql(sql, database, catalog, engine=engine)
    assert isinstance(outcome.rows, list)


@pytest.mark.parametrize("case_id,sql,ordered", CORPUS, ids=[c[0] for c in CORPUS])
def test_engines_agree(case_id, sql, ordered, setup):
    database, catalog = setup
    row = execute_sql(sql, database, catalog, engine="row").rows
    columnar = execute_sql(sql, database, catalog, engine="columnar").rows
    auto = execute_sql(sql, database, catalog, engine="auto").rows
    if ordered:
        assert columnar == row
        assert auto == row
    else:
        assert _canon(columnar) == _canon(row)
        assert _canon(auto) == _canon(row)


def test_left_join_fills_missing_right_columns(setup):
    database, catalog = setup
    sql = ("select i.id, o.owner from items i left join owners o "
           "on i.id = o.oid order by i.id")
    rows = execute_sql(sql, database, catalog, engine="row").rows
    assert {"id", "owner"} <= set(rows[0].keys())
    unmatched = [r for r in rows if r["owner"] is None]
    assert [r["id"] for r in unmatched] == [2, 4, 5, 6]


def test_left_join_empty_right_side(setup):
    database, catalog = setup
    # The right input planner-filters to nothing: NULL fill must come from
    # the static catalog schema, not from observed rows.
    sql = ("select i.id, o.owner from items i left join "
           "(select oid, owner from owners where 1 = 0) o on i.id = o.oid "
           "order by i.id")
    for engine in ENGINES:
        rows = execute_sql(sql, database, catalog, engine=engine).rows
        assert len(rows) == len(database["items"])
        assert all(r["owner"] is None for r in rows)


def test_empty_aggregate_values(setup):
    database, catalog = setup
    sql = ("select count(*) as n, sum(price) as total, avg(price) as mean "
           "from items where id > 100")
    for engine in ENGINES:
        (row,) = execute_sql(sql, database, catalog, engine=engine).rows
        assert row == {"n": 0, "total": None, "mean": None}


def test_like_to_glob_escapes_metacharacters():
    assert like_to_glob("10%") == "10*"
    assert like_to_glob("a_c") == "a?c"
    # Glob specials in the LIKE pattern must match literally.
    assert like_to_glob("10[%") == "10[[]*"
    assert like_to_glob("a*b?") == "a[*]b[?]"


def test_sql_like_literal_metacharacters():
    assert sql_like("10[x", "10[%")
    assert not sql_like("10x", "10[%")
    assert sql_like("a*b", "a*b")
    assert not sql_like("axb", "a*b")
    assert sql_like("anything", "%")
    assert sql_like("a", "_")
    assert not sql_like("ab", "_")


def test_forced_columnar_unsupported_is_loud(setup):
    database, catalog = setup
    sql = "select a.id from items a join items b on a.id < b.id"
    with pytest.raises(UnsupportedFeature):
        execute_sql(sql, database, catalog, engine="columnar")
    # Auto silently falls back and still answers.
    outcome = execute_sql(sql, database, catalog, engine="auto")
    assert outcome.engine == "row"
    assert outcome.rows == execute_sql(sql, database, catalog, engine="row").rows
