"""Tests for the TPC-H Swift-dialect query texts: parse, plan, execute."""

from __future__ import annotations

import pytest

from repro.core.partition import partition_job
from repro.sql import compile_sql, generate_database, parse, run_query
from repro.workloads.tpch_sql import TPCH_SQL, query_sql, runnable_queries


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=5)


def test_registry():
    assert 9 in runnable_queries()
    assert query_sql(9) == TPCH_SQL[9]
    with pytest.raises(KeyError):
        query_sql(2)


@pytest.mark.parametrize("query", runnable_queries())
def test_all_texts_parse(query):
    statement = parse(TPCH_SQL[query])
    assert statement.select_items


@pytest.mark.parametrize("query", runnable_queries())
def test_all_texts_compile_to_dags(query):
    dag = compile_sql(TPCH_SQL[query], scale_factor=100, job_id=f"q{query}")
    dag.validate()
    graph = partition_job(dag)
    assert len(graph) >= 1


@pytest.mark.parametrize("query", runnable_queries())
def test_all_texts_execute_on_mini_db(query, db):
    rows = run_query(TPCH_SQL[query], db)
    assert isinstance(rows, list)
    # Aggregation queries always produce at least one row on this data.
    if query not in (3,):
        assert rows


def test_q1_aggregate_consistency(db):
    rows = run_query(TPCH_SQL[1], db)
    total = sum(r["count_order"] for r in rows)
    eligible = [l for l in db["lineitem"] if l["l_shipdate"] <= "1998-09-02"]
    assert total == len(eligible)
    for r in rows:
        assert r["avg_qty"] == pytest.approx(r["sum_qty"] / r["count_order"])


def test_q5_matches_manual(db):
    rows = run_query(TPCH_SQL[5], db)
    revenues = [r["revenue"] for r in rows]
    assert revenues == sorted(revenues, reverse=True)
    for r in rows:
        assert r["revenue"] > 0


def test_q13_distribution_sums_to_customers(db):
    rows = run_query(TPCH_SQL[13], db)
    assert sum(r["custdist"] for r in rows) == len(db["customer"])


def test_q14_promo_fraction_bounded(db):
    rows = run_query(TPCH_SQL[14], db)
    value = rows[0]["promo_revenue"]
    if value is not None:
        assert 0.0 <= value <= 100.0


def test_q12_counts_partition(db):
    rows = run_query(TPCH_SQL[12], db)
    for r in rows:
        assert r["high_line_count"] >= 0 and r["low_line_count"] >= 0
