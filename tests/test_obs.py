"""Tests of the observability layer: records, metrics, tracer, exporters."""

from __future__ import annotations

import json

import pytest

from repro.core.metrics import JobMetrics, TaskTiming
from repro.obs import (
    Category,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RecordingTracer,
    RecordKind,
    SCHEMA_VERSION,
    TraceRecord,
    Tracer,
    collect_job,
    read_jsonl,
    records_to_jsonl,
    to_chrome_trace,
    write_jsonl,
)


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------

def test_record_round_trip():
    record = TraceRecord(
        RecordKind.SPAN, Category.TASK, "M1[3]", 1.5, 0.75,
        "job_a", "M1", {"attempt": 1},
    )
    rebuilt = TraceRecord.from_dict(record.to_dict())
    assert rebuilt == record
    assert rebuilt.end == pytest.approx(2.25)


def test_record_to_dict_omits_empty_fields():
    instant = TraceRecord(RecordKind.INSTANT, Category.CACHE, "cache.spill", 3.0)
    payload = instant.to_dict()
    assert set(payload) == {"kind", "cat", "name", "ts"}
    assert TraceRecord.from_dict(payload).dur is None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_counter_rejects_negative_increment():
    counter = Counter("c")
    counter.inc(2)
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 2


def test_gauge_set_and_running_max():
    gauge = Gauge("g")
    gauge.max(5.0)
    gauge.max(3.0)
    assert gauge.value == 5.0
    gauge.set(1.0)
    assert gauge.value == 1.0


def test_histogram_buckets_mean_and_fraction():
    hist = Histogram("h", bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]
    assert hist.mean == pytest.approx(55.5 / 3)
    assert hist.fraction_le(1.0) == pytest.approx(1 / 3)
    assert hist.fraction_le(10.0) == pytest.approx(2 / 3)


def test_histogram_requires_sorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(2.0, 1.0))


def test_registry_create_on_first_use_and_to_dict():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    registry.gauge("b").set(7)
    registry.histogram("c").observe(1.0)
    assert len(registry) == 3
    payload = json.loads(registry.to_json())
    assert payload["counters"]["a"] == 2
    assert payload["gauges"]["b"] == 7
    assert payload["histograms"]["c"]["count"] == 1


def _job_metrics() -> JobMetrics:
    metrics = JobMetrics(job_id="j", submit_time=0.0, start_time=1.0,
                         finish_time=11.0)
    metrics.failures = 1
    metrics.shuffle_schemes["M1->M2"] = "direct"
    metrics.tasks.append(TaskTiming(
        job_id="j", stage="M1", index=0, attempt=1,
        plan_arrive=1.0, data_arrive=2.0, finish=6.0,
        launch_time=0.5, shuffle_read_time=1.0,
        processing_time=2.0, shuffle_write_time=0.5,
    ))
    return metrics


def test_collect_job_folds_metrics_into_registry():
    registry = MetricsRegistry()
    collect_job(registry, _job_metrics())
    flat = registry.to_dict()
    assert flat["counters"]["jobs_completed"] == 1
    assert flat["counters"]["failures_observed"] == 1
    assert flat["counters"]["tasks_finished"] == 1
    assert flat["counters"]["task_reruns"] == 1
    assert flat["counters"]["shuffle_scheme_direct"] == 1
    assert flat["counters"]["phase_processing_s"] == pytest.approx(2.0)
    assert flat["histograms"]["job_latency_s"]["count"] == 1


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

def test_null_tracer_is_disabled_and_silent():
    tracer = Tracer()
    assert not tracer.enabled
    tracer.span(Category.TASK, "t", 0.0, 1.0)
    tracer.instant(Category.JOB, "i", 0.0)
    tracer.count("x")
    tracer.gauge_max("y", 1.0)


def test_recording_tracer_collects_and_queries():
    tracer = RecordingTracer()
    tracer.span(Category.TASK, "M1[0]", 1.0, 2.0, "j", "M1")
    tracer.span(Category.STAGE, "M1", 1.0, 2.5, "j")
    tracer.instant(Category.CACHE, "cache.spill", 3.0, "j")
    tracer.count("spills")
    tracer.gauge_max("mem", 10.0)
    assert len(tracer) == 3
    assert [r.name for r in tracer.of_category(Category.TASK)] == ["M1[0]"]
    assert tracer.task_intervals() == [(1.0, 3.0)]
    assert tracer.metrics.counter("spills").value == 1
    assert tracer.metrics.gauge("mem").value == 10.0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _sample_records() -> list[TraceRecord]:
    return [
        TraceRecord(RecordKind.SPAN, Category.TASK, "M1[0]", 0.5, 1.5,
                    "job_a", "M1", {"attempt": 0}),
        TraceRecord(RecordKind.INSTANT, Category.FAILURE, "failure.detected",
                    2.0, None, "job_a", "", {"kind": "task_crash"}),
    ]


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    records = _sample_records()
    write_jsonl(records, path)
    assert read_jsonl(path) == records
    header = json.loads(open(path).readline())
    assert header["kind"] == "meta"
    assert header["args"]["schema"] == SCHEMA_VERSION


def test_read_jsonl_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    text = records_to_jsonl([]).replace(
        f'"schema": {SCHEMA_VERSION}', '"schema": 999'
    )
    path.write_text(text)
    with pytest.raises(ValueError, match="schema"):
        read_jsonl(str(path))


def test_chrome_export_shape():
    doc = to_chrome_trace(_sample_records())
    events = doc["traceEvents"]
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == pytest.approx(0.5e6)
    assert span["dur"] == pytest.approx(1.5e6)
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["name"] == "failure.detected"
    names = [e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "process_name"]
    assert names == ["job_a"]
    # Deterministic: same records, same document.
    assert to_chrome_trace(_sample_records()) == doc
