"""Tests for Cache Worker memory management and LRU spill."""

from __future__ import annotations

import pytest

from repro.core.cache_worker import CacheWorker, CacheWorkerFullError
from repro.sim.config import CacheWorkerConfig, DiskConfig
from repro.sim.disk import DiskModel

MB = 1024 ** 2


def make_worker(capacity_mb: float = 100.0) -> CacheWorker:
    config = CacheWorkerConfig(memory_capacity=int(capacity_mb * MB))
    return CacheWorker(0, config, DiskModel(DiskConfig()))


def test_write_within_capacity_no_spill():
    worker = make_worker()
    delay = worker.write("job", "e1", 10 * MB, pending_consumers=2, now=0.0)
    assert delay == 0.0
    assert worker.memory_used == 10 * MB
    assert len(worker) == 1


def test_write_rejects_negative():
    worker = make_worker()
    with pytest.raises(ValueError):
        worker.write("job", "e", -1, 1, 0.0)
    with pytest.raises(ValueError):
        worker.write("job", "e", 1, -1, 0.0)


def test_lru_spills_oldest_entry_first():
    worker = make_worker(100)
    worker.write("job", "old", 60 * MB, 1, now=0.0)
    worker.write("job", "new", 30 * MB, 1, now=1.0)
    delay = worker.write("job", "big", 50 * MB, 1, now=2.0)
    assert delay > 0.0
    old = worker.entry("job", "old")
    assert old is not None and old.bytes_in_memory == 0.0
    assert old.bytes_on_disk == 60 * MB
    new = worker.entry("job", "new")
    assert new is not None and new.bytes_in_memory == 30 * MB
    assert worker.spill_events == 1
    assert worker.bytes_spilled_total == 60 * MB


def test_read_refreshes_lru_position():
    worker = make_worker(100)
    worker.write("job", "a", 50 * MB, 1, now=0.0)
    worker.write("job", "b", 40 * MB, 1, now=1.0)
    worker.read("job", "a", now=2.0)  # "a" becomes most recently used
    worker.write("job", "c", 50 * MB, 1, now=3.0)
    assert worker.entry("job", "b").bytes_in_memory == 0.0
    assert worker.entry("job", "a").bytes_in_memory == 50 * MB


def test_read_of_spilled_data_costs_time():
    worker = make_worker(50)
    worker.write("job", "a", 40 * MB, 2, now=0.0)
    worker.write("job", "b", 40 * MB, 1, now=1.0)  # spills "a"
    delay = worker.read("job", "a", now=2.0)
    assert delay > 0.0
    assert worker.read("job", "b", now=2.0) == 0.0
    assert worker.read("job", "missing", now=2.0) == 0.0


def test_oversized_write_streams_through_disk():
    worker = make_worker(10)
    delay = worker.write("job", "huge", 100 * MB, 1, now=0.0)
    assert delay > 0.0


def test_capacity_error_when_nothing_spillable():
    worker = make_worker(100)
    worker.write("job", "a", 90 * MB, 1, now=0.0)
    # Force the existing entry to look unspillable by zeroing its memory
    # without releasing the accounting (simulates concurrent writes racing).
    entry = worker.entry("job", "a")
    entry.bytes_in_memory = 0.0
    worker.bytes_in_memory = 90 * MB
    with pytest.raises(CacheWorkerFullError):
        worker.write("job", "b", 50 * MB, 1, now=1.0)


def test_consume_releases_at_zero():
    worker = make_worker()
    worker.write("job", "e", 10 * MB, pending_consumers=2, now=0.0)
    assert worker.consume("job", "e") is False
    assert worker.entry("job", "e") is not None
    assert worker.consume("job", "e") is True
    assert worker.entry("job", "e") is None
    assert worker.memory_used == 0.0
    # Consuming a missing entry is a no-op.
    assert worker.consume("job", "e") is False


def test_release_job_drops_all_entries():
    worker = make_worker()
    worker.write("job1", "a", 10 * MB, 1, now=0.0)
    worker.write("job1", "b", 10 * MB, 1, now=0.0)
    worker.write("job2", "c", 10 * MB, 1, now=0.0)
    worker.release_job("job1")
    assert len(worker) == 1
    assert worker.memory_used == 10 * MB


def test_incremental_writes_accumulate():
    worker = make_worker()
    worker.write("job", "e", 10 * MB, 3, now=0.0)
    worker.write("job", "e", 15 * MB, 3, now=1.0)
    entry = worker.entry("job", "e")
    assert entry.bytes_in_memory == 25 * MB
    assert entry.pending_consumers == 3


def test_memory_free_accounting():
    worker = make_worker(100)
    assert worker.memory_free == 100 * MB
    worker.write("job", "e", 30 * MB, 1, now=0.0)
    assert worker.memory_free == 70 * MB
