"""Tests for the discrete-event simulation kernel.

Every behavioural test is parametrized over both kernels — the array-backed
:class:`Simulator` and the object-heap :class:`LegacySimulator` oracle — so
the two can never drift apart silently.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    LegacySimulator,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
)

KERNELS = [Simulator, LegacySimulator]


@pytest.fixture(params=KERNELS, ids=["array", "legacy"])
def make_sim(request):
    return request.param


def test_events_run_in_time_order(make_sim):
    sim = make_sim()
    seen: list[str] = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_now_advances_to_event_time(make_sim):
    sim = make_sim()
    times: list[float] = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]
    assert sim.now == 4.25


def test_same_time_orders_by_priority(make_sim):
    sim = make_sim()
    seen: list[str] = []
    sim.schedule(1.0, seen.append, "low", priority=PRIORITY_LOW)
    sim.schedule(1.0, seen.append, "high", priority=PRIORITY_HIGH)
    sim.schedule(1.0, seen.append, "normal", priority=PRIORITY_NORMAL)
    sim.run()
    assert seen == ["high", "normal", "low"]


def test_same_time_same_priority_is_fifo(make_sim):
    sim = make_sim()
    seen: list[int] = []
    for i in range(5):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_run(make_sim):
    sim = make_sim()
    seen: list[str] = []
    event = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    event.cancel()
    sim.run()
    assert seen == ["kept"]


def test_schedule_during_run(make_sim):
    sim = make_sim()
    seen: list[str] = []

    def first() -> None:
        seen.append("first")
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_schedule_in_past_raises(make_sim):
    sim = make_sim()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock(make_sim):
    sim = make_sim()
    seen: list[str] = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_with_empty_queue_advances_clock(make_sim):
    sim = make_sim()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_peek_time_skips_cancelled(make_sim):
    sim = make_sim()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_pending_events_counts_live_only(make_sim):
    sim = make_sim()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events() == 2
    e1.cancel()
    assert sim.pending_events() == 1


def test_step_returns_false_when_empty(make_sim):
    sim = make_sim()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_guard(make_sim):
    sim = make_sim()

    def loop() -> None:
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_rng_is_deterministic_per_seed(make_sim):
    a = make_sim(seed=42).rng.random()
    b = make_sim(seed=42).rng.random()
    c = make_sim(seed=43).rng.random()
    assert a == b
    assert a != c


def test_events_processed_counter(make_sim):
    sim = make_sim()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_zero_delay_event_runs_at_now(make_sim):
    sim = make_sim()
    sim.schedule(3.0, lambda: sim.schedule(0.0, lambda: None))
    sim.run()
    assert sim.now == 3.0


def test_run_not_reentrant(make_sim):
    sim = make_sim()
    captured: list[Exception] = []

    def reenter() -> None:
        try:
            sim.run()
        except SimulationError as exc:
            captured.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(captured) == 1


def test_callback_args_passed_through(make_sim):
    sim = make_sim()
    seen: list[tuple] = []
    sim.schedule(1.0, lambda *a: seen.append(a), 1, "x", None)
    sim.run()
    assert seen == [(1, "x", None)]


# ----------------------------------------------------------------------
# Batched scheduling
# ----------------------------------------------------------------------

def test_schedule_batch_runs_in_order(make_sim):
    sim = make_sim()
    seen: list[str] = []
    n = sim.schedule_batch([
        (2.0, seen.append, ("b",)),
        (1.0, seen.append, ("a",)),
        (2.0, seen.append, ("c",)),
    ])
    assert n == 3
    assert sim.pending_events() == 3
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 2.0


def test_schedule_batch_interleaves_with_singles(make_sim):
    sim = make_sim()
    seen: list[str] = []
    sim.schedule(1.5, seen.append, "single")
    sim.schedule_batch([(float(i), seen.append, (f"b{i}",)) for i in range(1, 4)])
    sim.run()
    assert seen == ["b1", "single", "b2", "b3"]


def test_schedule_batch_large_batch_heapifies(make_sim):
    sim = make_sim()
    seen: list[int] = []
    sim.schedule_batch(
        [(float((7 * i) % 50), seen.append, (i,)) for i in range(200)]
    )
    sim.run()
    assert seen == sorted(range(200), key=lambda i: (float((7 * i) % 50), i))


def test_schedule_batch_rejects_negative_delay(make_sim):
    sim = make_sim()
    with pytest.raises(ValueError):
        sim.schedule_batch([(-0.5, lambda: None, ())])


def test_peak_pending_high_water_mark(make_sim):
    sim = make_sim()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.peak_pending == 5
    assert sim.pending_events() == 0


# ----------------------------------------------------------------------
# clear_pending: abandoned handles must detach (regression)
# ----------------------------------------------------------------------

def test_clear_pending_returns_live_count_and_empties(make_sim):
    sim = make_sim()
    sim.schedule(1.0, lambda: None)
    doomed = sim.schedule(2.0, lambda: None)
    doomed.cancel()
    assert sim.clear_pending() == 1
    assert sim.pending_events() == 0
    assert sim.peek_time() is None


def test_cancel_after_clear_pending_is_noop(make_sim):
    """Regression: cancelling a handle abandoned by ``clear_pending`` used to
    drive ``_live`` negative and could trigger bogus compaction."""
    sim = make_sim()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    sim.clear_pending()
    for event in events:
        event.cancel()  # must not corrupt the live counter
    assert sim.pending_events() == 0
    # The simulator must stay fully usable afterwards.
    seen: list[str] = []
    sim.schedule(1.0, seen.append, "ok")
    assert sim.pending_events() == 1
    sim.run()
    assert seen == ["ok"]
    assert sim.pending_events() == 0


def test_cancel_of_executed_event_is_noop(make_sim):
    sim = make_sim()
    seen: list[str] = []
    event = sim.schedule(1.0, seen.append, "ran")
    sim.schedule(2.0, seen.append, "later")
    sim.run(until=1.5)
    event.cancel()  # already executed: stale handle
    assert sim.pending_events() == 1
    sim.run()
    assert seen == ["ran", "later"]


def test_stale_handle_does_not_cancel_recycled_slot():
    """Array kernel: a slot freed by execution may be recycled for a new
    event; the old handle's seq no longer matches and must not kill it."""
    sim = Simulator()
    seen: list[str] = []
    old = sim.schedule(1.0, seen.append, "first")
    sim.run()
    # The new event recycles the slot the first one used.
    sim.schedule(1.0, seen.append, "second")
    old.cancel()
    sim.run()
    assert seen == ["first", "second"]


def test_compaction_preserves_order_and_counts(make_sim):
    sim = make_sim()
    seen: list[int] = []
    events = [sim.schedule(float(i % 13) + 1.0, seen.append, i) for i in range(400)]
    for i, event in enumerate(events):
        if i % 4 != 0:
            event.cancel()  # 75% dead => compaction triggers
    kept = [i for i in range(400) if i % 4 == 0]
    assert sim.pending_events() == len(kept)
    sim.run()
    assert seen == sorted(kept, key=lambda i: (float(i % 13) + 1.0, i))
