"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
)


def test_events_run_in_time_order():
    sim = Simulator()
    seen: list[str] = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    times: list[float] = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]
    assert sim.now == 4.25


def test_same_time_orders_by_priority():
    sim = Simulator()
    seen: list[str] = []
    sim.schedule(1.0, seen.append, "low", priority=PRIORITY_LOW)
    sim.schedule(1.0, seen.append, "high", priority=PRIORITY_HIGH)
    sim.schedule(1.0, seen.append, "normal", priority=PRIORITY_NORMAL)
    sim.run()
    assert seen == ["high", "normal", "low"]


def test_same_time_same_priority_is_fifo():
    sim = Simulator()
    seen: list[int] = []
    for i in range(5):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_run():
    sim = Simulator()
    seen: list[str] = []
    event = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    event.cancel()
    sim.run()
    assert seen == ["kept"]


def test_schedule_during_run():
    sim = Simulator()
    seen: list[str] = []

    def first() -> None:
        seen.append("first")
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    seen: list[str] = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_pending_events_counts_live_only():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events() == 2
    e1.cancel()
    assert sim.pending_events() == 1


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_guard():
    sim = Simulator()

    def loop() -> None:
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b
    assert a != c


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_zero_delay_event_runs_at_now():
    sim = Simulator()
    sim.schedule(3.0, lambda: sim.schedule(0.0, lambda: None))
    sim.run()
    assert sim.now == 3.0


def test_run_not_reentrant():
    sim = Simulator()
    captured: list[Exception] = []

    def reenter() -> None:
        try:
            sim.run()
        except SimulationError as exc:
            captured.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(captured) == 1


def test_callback_args_passed_through():
    sim = Simulator()
    seen: list[tuple] = []
    sim.schedule(1.0, lambda *a: seen.append(a), 1, "x", None)
    sim.run()
    assert seen == [(1, "x", None)]
