"""Tests for the experiment harnesses (small-scale versions).

Each test runs a reduced-size version of a paper experiment and asserts the
*shape* (orderings, directions) the paper reports — the full-size versions
live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.baselines import spark_policy
from repro.core.policies import swift_policy
from repro.experiments import (
    ExperimentResult,
    build_cluster,
    fig13_q13_details,
    fig14_fault_injection,
    makespan,
    mean_latency,
    run_jobs,
    run_single,
    scalability_workload,
)
from repro.workloads import terasort, tpch


def test_experiment_result_table_formatting():
    result = ExperimentResult(name="demo", notes="hello")
    result.add(a=1, b=2.5)
    result.add(a=10, b=0.25)
    text = result.format_table()
    assert "demo" in text and "hello" in text
    assert "10" in text and "2.50" in text
    assert result.column("a") == [1, 10]


def test_empty_result_formats():
    assert "(no rows)" in ExperimentResult(name="empty").format_table()


def test_build_cluster_defaults():
    cluster = build_cluster()
    assert cluster.n_machines == 100
    assert cluster.total_executors() == 3200


def test_run_single_and_makespan_helpers():
    job = terasort.terasort_job(10, 10)
    result = run_single(swift_policy(), job, n_machines=4, executors_per_machine=8)
    assert result.completed
    results, _ = run_jobs(swift_policy(), [job], n_machines=4, executors_per_machine=8)
    assert makespan(results) == results[0].metrics.finish_time
    assert mean_latency(results) == results[0].metrics.latency
    with pytest.raises(ValueError):
        makespan([])


def test_swift_beats_spark_on_small_tpch():
    swift_t = run_single(
        swift_policy(), tpch.query_job(6, scale=0.2),
    ).metrics.run_time
    spark_t = run_single(
        spark_policy(), tpch.query_job(6, scale=0.2),
    ).metrics.run_time
    assert spark_t > swift_t


def test_terasort_speedup_grows_with_size():
    """Table I's shape: the Swift/Spark gap widens with job size."""
    speedups = []
    for m, n in ((100, 100), (400, 400)):
        swift_t = run_single(swift_policy(), terasort.terasort_job(m, n)).metrics.run_time
        spark_t = run_single(spark_policy(), terasort.terasort_job(m, n)).metrics.run_time
        speedups.append(spark_t / swift_t)
    assert speedups[1] > speedups[0] > 1.0


def test_fig13_details_match():
    result = fig13_q13_details()
    for row in result.rows:
        assert row["built_tasks"] == row["paper_tasks"]


def test_fig14_shape():
    """Swift's fine-grained recovery stays under ~15% slowdown while job
    restart scales with the injection time."""
    result = fig14_fault_injection()
    for row in result.rows:
        assert row["swift_slowdown_pct"] < 15.0
        assert row["restart_slowdown_pct"] > row["inject_at"] - 10.0


def test_scalability_workload_shape():
    jobs = scalability_workload(n_jobs=20, tasks_per_stage=16)
    assert len(jobs) == 20
    assert all(j.submit_time == 0.0 for j in jobs)
    total_tasks = sum(j.dag.total_tasks() for j in jobs)
    assert total_tasks > 20 * 16 * 0.5


def test_result_to_json_roundtrip():
    import json

    result = ExperimentResult(name="j", notes="n")
    result.add(a=1, b=2.5, c="x")
    payload = json.loads(result.to_json())
    assert payload == {"name": "j", "notes": "n", "rows": [{"a": 1, "b": 2.5, "c": "x"}]}
