"""Lint/type gates for the typed facade, run as part of the test entrypoint.

Both gates are skipped when the tool is not installed (the test container
ships without them); with the ``dev`` extra installed they enforce a clean
``ruff check`` on the whole tree and ``mypy --strict`` on the stable
``repro.api`` / ``repro.obs`` surfaces.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _run(argv: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, cwd=ROOT, capture_output=True, text=True, timeout=600
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = _run(["ruff", "check", "src", "tests"])
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_stable_facade():
    proc = _run([
        sys.executable, "-m", "mypy", "--strict",
        "src/repro/api", "src/repro/obs",
    ])
    assert proc.returncode == 0, f"mypy findings:\n{proc.stdout}{proc.stderr}"
