"""Tests for the markdown report generator."""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import _markdown_table, _sections


def test_markdown_table_rendering():
    result = ExperimentResult(name="t")
    result.add(metric="a", value=1.234, label="x")
    result.add(metric="b", value=2.0, label="y")
    table = _markdown_table(result)
    lines = table.splitlines()
    assert lines[0] == "| metric | value | label |"
    assert lines[1] == "|---|---|---|"
    assert "| a | 1.23 | x |" in table


def test_markdown_table_empty():
    assert _markdown_table(ExperimentResult(name="e")) == "_(no rows)_"


def test_sections_cover_every_figure_and_table():
    keys = {section.key for section in _sections(quick=True)}
    for expected in ("fig3", "fig8", "fig9a", "fig9b", "table1", "fig10",
                     "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"):
        assert expected in keys
    assert sum(1 for k in keys if k.startswith("ablation")) >= 6


def test_sections_have_paper_claims():
    for section in _sections(quick=True):
        assert section.paper_claim
        assert section.title
        assert callable(section.runner)
