"""Tests for the DAG job model."""

from __future__ import annotations

import pytest

from repro.core.dag import DAGValidationError, Edge, EdgeMode, Job, JobDAG, Stage

from conftest import chain_dag, diamond_dag, make_stage


def test_stage_validation():
    with pytest.raises(DAGValidationError):
        Stage(name="", task_count=1)
    with pytest.raises(DAGValidationError):
        Stage(name="s", task_count=0)
    with pytest.raises(DAGValidationError):
        Stage(name="s", task_count=1, scan_bytes_per_task=-1)
    with pytest.raises(DAGValidationError):
        Stage(name="s", task_count=1, output_bytes_per_task=-1)
    with pytest.raises(DAGValidationError):
        Stage(name="s", task_count=1, work_seconds_per_task=-1)


def test_edge_validation():
    with pytest.raises(DAGValidationError):
        Edge("a", "a")
    with pytest.raises(DAGValidationError):
        Edge("a", "b", bytes_override=-1)


def test_duplicate_stage_name_rejected():
    with pytest.raises(DAGValidationError):
        JobDAG("j", [make_stage("a"), make_stage("a")], [])


def test_edge_to_unknown_stage_rejected():
    with pytest.raises(DAGValidationError):
        JobDAG("j", [make_stage("a")], [Edge("a", "ghost")])
    with pytest.raises(DAGValidationError):
        JobDAG("j", [make_stage("a")], [Edge("ghost", "a")])


def test_cycle_detected():
    stages = [make_stage("a"), make_stage("b"), make_stage("c")]
    edges = [Edge("a", "b"), Edge("b", "c"), Edge("c", "a")]
    with pytest.raises(DAGValidationError):
        JobDAG("cyclic", stages, edges)


def test_topo_order_respects_edges():
    dag = diamond_dag()
    order = dag.topo_order()
    assert order.index("A") < order.index("B")
    assert order.index("A") < order.index("C")
    assert order.index("B") < order.index("D")
    assert order.index("C") < order.index("D")


def test_roots_and_sinks():
    dag = diamond_dag()
    assert dag.roots() == ["A"]
    assert dag.sinks() == ["D"]


def test_predecessors_successors():
    dag = diamond_dag()
    assert set(dag.predecessors("D")) == {"B", "C"}
    assert set(dag.successors("A")) == {"B", "C"}
    assert dag.predecessors("A") == []


def test_edge_mode_derived_from_producer():
    dag = chain_dag(blocking_stages=(1,))
    e12, e23 = dag.out_edges("S1")[0], dag.out_edges("S2")[0]
    assert dag.edge_mode(e12) == EdgeMode.BARRIER
    assert dag.edge_mode(e23) == EdgeMode.PIPELINE


def test_edge_mode_explicit_override_wins():
    stages = [make_stage("a", blocking=True), make_stage("b")]
    dag = JobDAG("j", stages, [Edge("a", "b", mode=EdgeMode.PIPELINE)])
    assert dag.edge_mode(dag.edges[0]) == EdgeMode.PIPELINE


def test_edge_bytes_split_across_fanout():
    dag = diamond_dag()
    producer = dag.stage("A")
    for edge in dag.out_edges("A"):
        assert dag.edge_bytes(edge) == pytest.approx(producer.total_output_bytes / 2)


def test_edge_bytes_override():
    stages = [make_stage("a"), make_stage("b")]
    dag = JobDAG("j", stages, [Edge("a", "b", bytes_override=123.0)])
    assert dag.edge_bytes(dag.edges[0]) == 123.0


def test_edge_size_is_m_times_n():
    stages = [make_stage("a", tasks=7), make_stage("b", tasks=5)]
    dag = JobDAG("j", stages, [Edge("a", "b")])
    assert dag.edge_size(dag.edges[0]) == 35


def test_total_tasks():
    dag = chain_dag(tasks=4, n_stages=3)
    assert dag.total_tasks() == 12


def test_critical_path_is_longest_chain():
    dag = diamond_dag()
    path = dag.critical_path_stages()
    assert path[0] == "A"
    assert path[-1] == "D"
    assert len(path) == 3


def test_iteration_yields_topo_order():
    dag = chain_dag()
    assert [s.name for s in dag] == dag.topo_order()
    assert len(dag) == 3


def test_stage_is_blocking_property():
    blocking = make_stage("x", blocking=True)
    assert blocking.is_blocking
    assert not make_stage("y").is_blocking


def test_empty_dag_rejected_by_validate():
    dag = JobDAG("empty", [], [])
    with pytest.raises(DAGValidationError):
        dag.validate()


def test_job_wrapper():
    dag = chain_dag()
    job = Job(dag=dag, submit_time=5.0, tags={"k": 1})
    assert job.job_id == dag.job_id
    assert job.submit_time == 5.0
    assert job.tags["k"] == 1


def test_multi_root_dag():
    stages = [make_stage("a", scan_mb=1), make_stage("b", scan_mb=1), make_stage("j")]
    dag = JobDAG("j", stages, [Edge("a", "j"), Edge("b", "j")])
    assert set(dag.roots()) == {"a", "b"}
    assert dag.sinks() == ["j"]
