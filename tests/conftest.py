"""Shared fixtures: small clusters and canonical DAG shapes."""

from __future__ import annotations

import pytest

from repro.core.dag import Edge, Job, JobDAG, Stage
from repro.core.operators import OperatorKind as K, ops
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig

MB = 1e6


@pytest.fixture
def config() -> SimConfig:
    return SimConfig()


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster.build(n_machines=4, executors_per_machine=8)


@pytest.fixture
def medium_cluster() -> Cluster:
    return Cluster.build(n_machines=20, executors_per_machine=16)


def make_stage(
    name: str,
    tasks: int = 4,
    blocking: bool = False,
    scan_mb: float = 0.0,
    out_mb: float = 10.0,
    work: float | None = 1.0,
    idempotent: bool = True,
) -> Stage:
    """A stage with sensible defaults for structural tests."""
    kinds = [K.TABLE_SCAN if scan_mb else K.SHUFFLE_READ]
    if blocking:
        kinds.append(K.MERGE_SORT)
    kinds.append(K.SHUFFLE_WRITE)
    return Stage(
        name=name,
        task_count=tasks,
        operators=ops(*kinds),
        scan_bytes_per_task=scan_mb * MB,
        output_bytes_per_task=out_mb * MB,
        work_seconds_per_task=work,
        idempotent=idempotent,
    )


def chain_dag(
    job_id: str = "chain",
    blocking_stages: tuple[int, ...] = (),
    n_stages: int = 3,
    tasks: int = 4,
    idempotent: bool = True,
) -> JobDAG:
    """S1 -> S2 -> ... -> Sn; stages listed in ``blocking_stages`` (1-based)
    contain a global sort, making their outgoing edges barriers."""
    stages = [
        make_stage(
            f"S{i}",
            tasks=tasks,
            blocking=i in blocking_stages,
            scan_mb=20.0 if i == 1 else 0.0,
            idempotent=idempotent,
        )
        for i in range(1, n_stages + 1)
    ]
    edges = [Edge(f"S{i}", f"S{i + 1}") for i in range(1, n_stages)]
    return JobDAG(job_id, stages, edges)


def diamond_dag(job_id: str = "diamond", blocking_mid: bool = False) -> JobDAG:
    """A -> {B, C} -> D."""
    stages = [
        make_stage("A", scan_mb=20.0),
        make_stage("B", blocking=blocking_mid),
        make_stage("C", blocking=blocking_mid),
        make_stage("D"),
    ]
    edges = [Edge("A", "B"), Edge("A", "C"), Edge("B", "D"), Edge("C", "D")]
    return JobDAG(job_id, stages, edges)


@pytest.fixture
def pipeline_chain() -> JobDAG:
    return chain_dag("pipeline_chain")


@pytest.fixture
def barrier_chain() -> JobDAG:
    return chain_dag("barrier_chain", blocking_stages=(1, 2))


def as_job(dag: JobDAG, submit_time: float = 0.0) -> Job:
    return Job(dag=dag, submit_time=submit_time)
