"""Runtime integration tests: shuffle schemes and Cache Worker interplay."""

from __future__ import annotations


from repro.core.cache_worker import CacheWorker
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.core.shuffle import ShuffleScheme
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig

from conftest import as_job, chain_dag, make_stage
from repro.core.dag import Edge, JobDAG


def wide_barrier_dag(m: int, n: int, mb_per_task: float = 10.0) -> JobDAG:
    stages = [
        make_stage("src", tasks=m, blocking=True, scan_mb=mb_per_task,
                   out_mb=mb_per_task),
        make_stage("dst", tasks=n, out_mb=0.0),
    ]
    return JobDAG(f"wide_{m}x{n}", stages, [Edge("src", "dst")])


def run(dag, policy=None, machines=8, executors=32, config=None):
    cluster = Cluster.build(machines, executors, config=config)
    runtime = SwiftRuntime(cluster, policy or swift_policy(), config=config)
    return runtime.execute(as_job(dag)), runtime


def test_adaptive_selects_by_edge_size():
    small, _ = run(wide_barrier_dag(20, 20))          # 400 edges
    assert small.metrics.shuffle_schemes["src->dst"] == "direct"
    medium, _ = run(wide_barrier_dag(150, 150))       # 22,500 edges
    assert medium.metrics.shuffle_schemes["src->dst"] == "remote"
    large, _ = run(wide_barrier_dag(320, 320), machines=16, executors=32)
    assert large.metrics.shuffle_schemes["src->dst"] == "local"


def test_fixed_scheme_policy_overrides_adaptive():
    result, _ = run(
        wide_barrier_dag(20, 20), policy=swift_policy(shuffle=ShuffleScheme.LOCAL)
    )
    assert result.metrics.shuffle_schemes["src->dst"] == "local"


def test_cache_worker_entries_released_after_consumption():
    _, runtime = run(
        wide_barrier_dag(150, 150),
        policy=swift_policy(shuffle=ShuffleScheme.REMOTE),
    )
    for machine in runtime.cluster.machines:
        worker: CacheWorker = machine.cache_worker
        assert len(worker) == 0
        assert worker.memory_used == 0.0


def test_cache_pressure_spills_and_still_completes():
    config = SimConfig()
    config.cache_worker.memory_capacity = 4 * 1024 ** 2  # 4 MiB per machine
    result, runtime = run(
        wide_barrier_dag(100, 100, mb_per_task=30.0),
        policy=swift_policy(shuffle=ShuffleScheme.LOCAL),
        config=config,
    )
    assert result.completed
    spilled = sum(m.cache_worker.bytes_spilled_total for m in runtime.cluster.machines)
    assert spilled > 0


def test_connections_fully_released_after_run():
    _, runtime = run(wide_barrier_dag(100, 100))
    assert runtime.cluster.network.open_connections == 0


def test_disk_scheme_is_slowest_for_wide_shuffles():
    times = {}
    for scheme in (ShuffleScheme.LOCAL, ShuffleScheme.DISK):
        result, _ = run(
            wide_barrier_dag(200, 200, mb_per_task=40.0),
            policy=swift_policy(shuffle=scheme),
            machines=16,
        )
        times[scheme] = result.metrics.run_time
    assert times[ShuffleScheme.DISK] > times[ShuffleScheme.LOCAL]


def test_pipeline_edges_have_no_barrier_wait():
    dag = chain_dag("noidle", n_stages=3)
    result, _ = run(dag)
    # Pipelined consumers begin within a launch-overhead of their plan.
    for t in result.metrics.tasks:
        assert t.data_arrive - t.plan_arrive < 2.0
