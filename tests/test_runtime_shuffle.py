"""Runtime integration tests: shuffle schemes and Cache Worker interplay."""

from __future__ import annotations

import pytest

from repro.core.cache_worker import CacheWorker
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.core.shuffle import ShuffleScheme
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig
from repro.sim.failures import FailureKind, FailurePlan, FailureSpec

from conftest import as_job, chain_dag, make_stage
from repro.core.dag import Edge, JobDAG


def wide_barrier_dag(m: int, n: int, mb_per_task: float = 10.0) -> JobDAG:
    stages = [
        make_stage("src", tasks=m, blocking=True, scan_mb=mb_per_task,
                   out_mb=mb_per_task),
        make_stage("dst", tasks=n, out_mb=0.0),
    ]
    return JobDAG(f"wide_{m}x{n}", stages, [Edge("src", "dst")])


def run(dag, policy=None, machines=8, executors=32, config=None):
    cluster = Cluster.build(machines, executors, config=config)
    runtime = SwiftRuntime(cluster, policy or swift_policy(), config=config)
    return runtime.execute(as_job(dag)), runtime


def test_adaptive_selects_by_edge_size():
    small, _ = run(wide_barrier_dag(20, 20))          # 400 edges
    assert small.metrics.shuffle_schemes["src->dst"] == "direct"
    medium, _ = run(wide_barrier_dag(150, 150))       # 22,500 edges
    assert medium.metrics.shuffle_schemes["src->dst"] == "remote"
    large, _ = run(wide_barrier_dag(320, 320), machines=16, executors=32)
    assert large.metrics.shuffle_schemes["src->dst"] == "local"


def test_fixed_scheme_policy_overrides_adaptive():
    result, _ = run(
        wide_barrier_dag(20, 20), policy=swift_policy(shuffle=ShuffleScheme.LOCAL)
    )
    assert result.metrics.shuffle_schemes["src->dst"] == "local"


def test_cache_worker_entries_released_after_consumption():
    _, runtime = run(
        wide_barrier_dag(150, 150),
        policy=swift_policy(shuffle=ShuffleScheme.REMOTE),
    )
    for machine in runtime.cluster.machines:
        worker: CacheWorker = machine.cache_worker
        assert len(worker) == 0
        assert worker.memory_used == 0.0


def test_cache_pressure_spills_and_still_completes():
    config = SimConfig()
    config.cache_worker.memory_capacity = 4 * 1024 ** 2  # 4 MiB per machine
    result, runtime = run(
        wide_barrier_dag(100, 100, mb_per_task=30.0),
        policy=swift_policy(shuffle=ShuffleScheme.LOCAL),
        config=config,
    )
    assert result.completed
    spilled = sum(m.cache_worker.bytes_spilled_total for m in runtime.cluster.machines)
    assert spilled > 0


def test_connections_fully_released_after_run():
    _, runtime = run(wide_barrier_dag(100, 100))
    assert runtime.cluster.network.open_connections == 0


def test_disk_scheme_is_slowest_for_wide_shuffles():
    times = {}
    for scheme in (ShuffleScheme.LOCAL, ShuffleScheme.DISK):
        result, _ = run(
            wide_barrier_dag(200, 200, mb_per_task=40.0),
            policy=swift_policy(shuffle=scheme),
            machines=16,
        )
        times[scheme] = result.metrics.run_time
    assert times[ShuffleScheme.DISK] > times[ShuffleScheme.LOCAL]


def test_pipeline_edges_have_no_barrier_wait():
    dag = chain_dag("noidle", n_stages=3)
    result, _ = run(dag)
    # Pipelined consumers begin within a launch-overhead of their plan.
    for t in result.metrics.tasks:
        assert t.data_arrive - t.plan_arrive < 2.0


# ----------------------------------------------------------------------
# Cache Worker replication and failover
# ----------------------------------------------------------------------

def run_with_cache_loss(replication_factor, machine_id=0, at_fraction=0.5):
    """A REMOTE-scheme wide shuffle with one Cache Worker killed mid-read."""
    config = SimConfig()
    config.shuffle.replication_factor = replication_factor

    def build():
        return wide_barrier_dag(120, 120, mb_per_task=10.0)  # 14,400 edges

    baseline_rt = SwiftRuntime(Cluster.build(8, 32), swift_policy(),
                               config=config)
    baseline = baseline_rt.execute(as_job(build()))
    assert baseline.completed
    plan = FailurePlan().add(FailureSpec(
        kind=FailureKind.CACHE_WORKER_LOSS,
        machine_id=machine_id, at_fraction=at_fraction,
    ))
    runtime = SwiftRuntime(
        Cluster.build(8, 32), swift_policy(), config=config,
        failure_plan=plan, reference_duration=baseline.metrics.finish_time,
    )
    result = runtime.execute(as_job(build()))
    return baseline, result, runtime


def test_cache_worker_loss_fails_over_to_replica():
    baseline, result, runtime = run_with_cache_loss(replication_factor=2)
    assert result.completed
    assert runtime.shuffle_recovery_log, "the loss never touched live entries"
    assert {r["action"] for r in runtime.shuffle_recovery_log} == {"failover"}
    assert all(r["survivors"] >= 1 for r in runtime.shuffle_recovery_log)
    # Failover serves the share from a replica: no producer re-runs, and no
    # recovery time added over the failure-free baseline.
    assert result.metrics.task_reruns == 0
    assert result.metrics.finish_time == pytest.approx(
        baseline.metrics.finish_time, rel=0.01
    )


def test_cache_worker_loss_without_replicas_reruns_producers():
    baseline, result, runtime = run_with_cache_loss(replication_factor=1)
    assert result.completed
    assert any(r["action"] == "rerun" for r in runtime.shuffle_recovery_log)
    assert result.metrics.task_reruns > 0
    # v1 pays the producer-rerun recovery penalty.
    assert result.metrics.finish_time > baseline.metrics.finish_time


def test_failover_emits_recovery_observability():
    from repro.obs import RecordingTracer

    config = SimConfig()
    config.shuffle.replication_factor = 2
    baseline_rt = SwiftRuntime(Cluster.build(8, 32), swift_policy(),
                               config=config)
    baseline = baseline_rt.execute(as_job(wide_barrier_dag(120, 120)))
    plan = FailurePlan().add(FailureSpec(
        kind=FailureKind.CACHE_WORKER_LOSS, machine_id=0, at_fraction=0.5,
    ))
    runtime = SwiftRuntime(
        Cluster.build(8, 32), swift_policy(), config=config,
        failure_plan=plan, reference_duration=baseline.metrics.finish_time,
        tracer=RecordingTracer(),
    )
    result = runtime.execute(as_job(wide_barrier_dag(120, 120)))
    assert result.completed
    names = {r.name for r in runtime.tracer.records}
    assert "shuffle.failover" in names
    assert "cache.drop_all" in names


# ----------------------------------------------------------------------
# Mode switching is result-preserving (differential test)
# ----------------------------------------------------------------------

def borderline_diamond() -> JobDAG:
    """a -> {b, c} -> d with every edge at 12,100 shuffle size: statically
    REMOTE, within the demotion margin of the 10k Direct threshold."""
    stages = [
        make_stage("a", tasks=110, blocking=True, scan_mb=10.0, out_mb=10.0),
        make_stage("b", tasks=110, blocking=True, out_mb=10.0),
        make_stage("c", tasks=110, blocking=True, out_mb=10.0),
        make_stage("d", tasks=110, out_mb=0.0),
    ]
    edges = [Edge("a", "b"), Edge("a", "c"), Edge("b", "d"), Edge("c", "d")]
    return JobDAG("diff", stages, edges)


def coverage(result):
    cov: dict[str, set[int]] = {}
    for t in result.metrics.tasks:
        cov.setdefault(t.stage, set()).add(t.index)
    return cov


def differential_run(mode_switching: bool):
    config = SimConfig()
    config.shuffle.mode_switching = mode_switching
    # Hair-trigger pressure threshold so demotions actually fire mid-job.
    config.shuffle.pressure_demote_utilization = 1e-6
    runtime = SwiftRuntime(Cluster.build(8, 32), swift_policy(), config=config)
    result = runtime.execute(as_job(borderline_diamond()))
    return result, runtime


def test_mode_switching_never_changes_results():
    switched, rt_on = differential_run(mode_switching=True)
    static, rt_off = differential_run(mode_switching=False)
    assert switched.completed and static.completed
    # Adaptivity actually engaged in the switching run ...
    assert rt_on.mode_controller.switches > 0
    assert rt_off.mode_controller.switches == 0
    assert "direct" in switched.metrics.shuffle_schemes.values()
    # ... yet both runs finalize exactly the same (stage, index) outputs.
    assert coverage(switched) == coverage(static)
