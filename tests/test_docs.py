"""Documentation consistency: README code blocks actually run."""

from __future__ import annotations

import pathlib
import re


README = pathlib.Path(__file__).resolve().parent.parent / "README.md"
DESIGN = README.parent / "DESIGN.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_key_sections():
    text = README.read_text()
    for heading in ("## Install", "## Quickstart", "## Architecture",
                    "## Reproducing the paper's evaluation", "## Limitations"):
        assert heading in text


def test_readme_python_blocks_execute():
    blocks = python_blocks()
    assert len(blocks) >= 2
    for block in blocks:
        exec(compile(block, "<README>", "exec"), {})  # noqa: S102


def test_readme_mentions_every_figure_bench():
    text = README.read_text()
    for name in ("test_fig03_idleratio", "test_fig09a_tpch", "test_table1_terasort",
                 "test_fig12_shuffle_ablation", "test_fig14_fault_injection",
                 "test_fig16_scalability"):
        assert name in text


def test_design_doc_covers_experiments_and_substitutions():
    text = DESIGN.read_text()
    for marker in ("Fig. 3", "Fig. 9(a)", "Table I", "Fig. 12", "Fig. 14",
                   "Fig. 16", "substitution", "Graphlet"):
        assert marker.lower() in text.lower(), marker


def test_examples_listed_in_readme_exist():
    text = README.read_text()
    examples_dir = README.parent / "examples"
    for match in re.findall(r"examples/(\w+)\.py", text):
        assert (examples_dir / f"{match}.py").exists(), match
