"""Determinism guarantees of this reproduction.

Two invariants the performance work must never break:

* The parallel cell harness returns byte-identical experiment rows for
  any worker count (``--jobs N`` is a wall-clock knob, not a semantic
  one).
* The runtime's finish-ledger fast path produces JobMetrics identical to
  the legacy one-event-per-task kernel, for every policy and with or
  without injected failures.
* Tracing observes without steering: a run with a RecordingTracer
  attached produces byte-identical results to an untraced run, and the
  tracer's task spans reproduce the runtime's busy intervals exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import bubble_policy, jetscope_policy, restart_policy
from repro.core.policies import swift_policy
from repro.obs import RecordingTracer
from repro.experiments import figures
from repro.experiments.harness import run_jobs
from repro.experiments.parallel import clear_memory_cache, set_default_jobs
from repro.sim.failures import sample_trace_failures
from repro.workloads import traces


@pytest.fixture(autouse=True)
def _clean_harness_state():
    clear_memory_cache()
    set_default_jobs(None)
    yield
    clear_memory_cache()
    set_default_jobs(None)


def test_serial_and_parallel_harness_rows_identical():
    """`--jobs 4` must reproduce the serial rows exactly."""
    serial = figures.fig9a_tpch(queries=(1, 6), scale=0.2)
    clear_memory_cache()
    set_default_jobs(4)
    parallel = figures.fig9a_tpch(queries=(1, 6), scale=0.2)
    assert parallel.rows == serial.rows
    assert parallel.to_json() == serial.to_json()


def test_parallel_cells_recompute_identically_without_cache():
    """Same experiment, fresh worker processes: identical payloads (no
    hidden per-process RNG state leaks into the cells).  Compared via
    to_json because off-paper sizes report paper_speedup as NaN."""
    set_default_jobs(2)
    sizes = ((30, 30), (60, 60))
    first = figures.table1_terasort(sizes=sizes)
    clear_memory_cache()
    second = figures.table1_terasort(sizes=sizes)
    assert first.to_json() == second.to_json()


def _failure_plan(jobs):
    return sample_trace_failures(
        [j.job_id for j in jobs], 0.5, random.Random(99)
    )


@pytest.mark.parametrize("make_policy", [swift_policy, jetscope_policy, bubble_policy])
@pytest.mark.parametrize("with_failures", [False, True])
def test_fast_path_matches_legacy_kernel(make_policy, with_failures):
    """The finish-ledger fast path is an optimization, not a model change:
    JobMetrics (timestamps, phase times, attempts) must match the legacy
    per-task-event kernel exactly."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=8, mean_interarrival=0.2)
    )
    plan = _failure_plan(jobs) if with_failures else None
    fast_results, fast_rt = run_jobs(
        make_policy(), jobs, failure_plan=plan, fast_path=True
    )
    legacy_results, legacy_rt = run_jobs(
        make_policy(), jobs, failure_plan=plan, fast_path=False
    )
    assert len(fast_results) == len(legacy_results) == len(jobs)
    for fast, legacy in zip(fast_results, legacy_results):
        assert fast.job_id == legacy.job_id
        assert fast.completed == legacy.completed
        assert fast.metrics == legacy.metrics
    assert fast_rt.busy_intervals == legacy_rt.busy_intervals
    assert fast_rt.admin.stats.__dict__ == legacy_rt.admin.stats.__dict__


@pytest.mark.parametrize("make_policy", [swift_policy, restart_policy])
@pytest.mark.parametrize("with_failures", [False, True])
@pytest.mark.parametrize("fast_path", [True, False])
def test_tracing_does_not_perturb_simulation(make_policy, with_failures, fast_path):
    """Attaching a RecordingTracer is pure observation: results, busy
    intervals, and admin stats stay byte-identical, and the task-attempt
    spans reproduce the runtime's private busy_intervals list (the record
    stream the figure scripts now consume)."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=6, mean_interarrival=0.2)
    )
    plan = _failure_plan(jobs) if with_failures else None
    plain_results, plain_rt = run_jobs(
        make_policy(), jobs, failure_plan=plan, fast_path=fast_path
    )
    tracer = RecordingTracer()
    traced_results, traced_rt = run_jobs(
        make_policy(), jobs, failure_plan=plan, fast_path=fast_path,
        tracer=tracer,
    )
    assert len(plain_results) == len(traced_results)
    for plain, traced in zip(plain_results, traced_results):
        assert plain.job_id == traced.job_id
        assert plain.completed == traced.completed
        assert plain.metrics == traced.metrics
    assert plain_rt.busy_intervals == traced_rt.busy_intervals
    assert plain_rt.admin.stats.__dict__ == traced_rt.admin.stats.__dict__
    assert tracer.task_intervals() == traced_rt.busy_intervals


# ----------------------------------------------------------------------
# Differential kernel property: array kernel vs legacy oracle
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.sim.engine import LegacySimulator, Simulator  # noqa: E402

_DELAYS = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)

#: One kernel operation: mirrors the full public surface the runtime uses.
_KERNEL_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS, st.sampled_from([0, 10, 20])),
        st.tuples(st.just("batch"), st.lists(_DELAYS, max_size=12)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
        st.tuples(st.just("run_until"), _DELAYS),
        st.just(("run",)),
        st.just(("step",)),
        st.just(("clear",)),
    ),
    max_size=40,
)


def _recorder(log: list, tag: int, sim) -> object:
    def callback() -> None:
        log.append((tag, sim.now))
    return callback


@settings(max_examples=60, deadline=None)
@given(ops=_KERNEL_OPS)
def test_kernels_agree_on_random_interleavings(ops):
    """The array-backed kernel and the legacy object-heap oracle must be
    observationally identical under any schedule/cancel/clear/run
    interleaving: same execution order, same clock, same pending counts."""
    sims = (Simulator(), LegacySimulator())
    logs: tuple[list, list] = ([], [])
    handles: tuple[list, list] = ([], [])
    tag = 0
    for op in ops:
        kind = op[0]
        if kind == "schedule":
            _, delay, prio = op
            for sim, log, hs in zip(sims, logs, handles):
                hs.append(
                    sim.schedule(delay, _recorder(log, tag, sim), priority=prio)
                )
            tag += 1
        elif kind == "batch":
            _, delays = op
            for sim, log in zip(sims, logs):
                sim.schedule_batch(
                    [
                        (delay, _recorder(log, tag + i, sim), ())
                        for i, delay in enumerate(delays)
                    ]
                )
            tag += len(delays)
        elif kind == "cancel":
            _, index = op
            if handles[0]:
                for hs in handles:
                    hs[index % len(hs)].cancel()
        elif kind == "run_until":
            _, delta = op
            for sim in sims:
                sim.run(until=sim.now + delta)
        elif kind == "run":
            for sim in sims:
                sim.run()
        elif kind == "step":
            stepped = [sim.step() for sim in sims]
            assert stepped[0] == stepped[1]
        else:  # clear
            cleared = [sim.clear_pending() for sim in sims]
            assert cleared[0] == cleared[1]
        assert sims[0].now == sims[1].now
        assert sims[0].pending_events() == sims[1].pending_events()
        assert logs[0] == logs[1]
    for sim in sims:
        sim.run()
    assert sims[0].now == sims[1].now
    assert logs[0] == logs[1]
    assert sims[0].events_processed == sims[1].events_processed
    assert sims[0].peek_time() == sims[1].peek_time()
    assert sims[0].peak_pending == sims[1].peak_pending
