"""Tests for the row-level query executor."""

from __future__ import annotations

import pytest

from repro.sql import FIG1_QUERY, generate_database, run_query
from repro.sql.executor import ExecutionError, eval_expr
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def db():
    return generate_database(seed=11)


def expr(text):
    return parse(f"select {text} from t").select_items[0].expr


def test_eval_arithmetic():
    row = {"a": 10, "b": 3}
    assert eval_expr(expr("a + b * 2"), row) == 16
    assert eval_expr(expr("(a - b) / 7"), row) == 1
    assert eval_expr(expr("a % b"), row) == 1
    assert eval_expr(expr("-a"), row) == -10


def test_eval_comparisons_and_logic():
    row = {"x": 5, "y": "abc"}
    assert eval_expr(expr("x >= 5 and x < 6"), row) is True
    assert eval_expr(expr("x <> 5 or y = 'abc'"), row) is True
    assert eval_expr(expr("not x = 5"), row) is False


def test_eval_like():
    row = {"name": "forest green metal"}
    assert eval_expr(expr("name like '%green%'"), row) is True
    assert eval_expr(expr("name like 'green%'"), row) is False


def test_eval_substr_and_concat():
    row = {"d": "1997-03-15"}
    assert eval_expr(expr("substr(d, 1, 4)"), row) == "1997"
    assert eval_expr(expr("substr(d, 6)"), row) == "03-15"
    assert eval_expr(expr("'y' || d"), row) == "y1997-03-15"


def test_eval_null_propagation():
    row = {"a": None, "b": 1}
    assert eval_expr(expr("a + b"), row) is None
    assert eval_expr(expr("coalesce(a, b)"), row) == 1


def test_eval_qualified_names():
    row = {"t.a": 7, "a": 7}
    assert eval_expr(expr("t.a"), row) == 7


def test_missing_column_raises():
    with pytest.raises(ExecutionError):
        eval_expr(expr("ghost"), {"a": 1})


def test_scan_and_filter(db):
    rows = run_query("select s_name from supplier where s_suppkey < 3", db)
    assert len(rows) == 3
    assert all("Supplier#" in r["s_name"] for r in rows)


def test_projection_expression(db):
    rows = run_query(
        "select l_extendedprice * (1 - l_discount) as revenue from lineitem", db
    )
    assert all(r["revenue"] >= 0 for r in rows)


def test_join_matches_foreign_keys(db):
    rows = run_query(
        "select o.o_orderkey, c.c_name from orders o "
        "join customer c on o.o_custkey = c.c_custkey",
        db,
    )
    assert len(rows) == len(db["orders"])


def test_left_join_keeps_unmatched(db):
    inner = run_query(
        "select c.c_custkey from customer c "
        "join orders o on o.o_custkey = c.c_custkey",
        db,
    )
    left = run_query(
        "select c.c_custkey from customer c "
        "left join orders o on o.o_custkey = c.c_custkey",
        db,
    )
    assert len(left) >= len(inner)
    assert len({r["c_custkey"] for r in left}) == len(db["customer"])


def test_group_by_aggregates(db):
    rows = run_query(
        "select l_returnflag, count(*) as n, sum(l_quantity) as q, "
        "avg(l_quantity) as a, min(l_quantity) as lo, max(l_quantity) as hi "
        "from lineitem group by l_returnflag",
        db,
    )
    total = sum(r["n"] for r in rows)
    assert total == len(db["lineitem"])
    for r in rows:
        assert r["lo"] <= r["a"] <= r["hi"]
        assert r["q"] == pytest.approx(r["a"] * r["n"])


def test_global_aggregate_without_groups(db):
    rows = run_query("select count(*) as n from lineitem", db)
    assert rows == [{"n": len(db["lineitem"])}]


def test_having_filters_groups(db):
    rows = run_query(
        "select l_returnflag, count(*) as n from lineitem "
        "group by l_returnflag having count(*) > 100000",
        db,
    )
    assert rows == []


def test_order_by_and_limit(db):
    rows = run_query(
        "select o_orderkey, o_totalprice from orders "
        "order by o_totalprice desc limit 5",
        db,
    )
    assert len(rows) == 5
    prices = [r["o_totalprice"] for r in rows]
    assert prices == sorted(prices, reverse=True)


def test_distinct(db):
    rows = run_query("select distinct l_returnflag from lineitem", db)
    flags = {r["l_returnflag"] for r in rows}
    assert len(rows) == len(flags) <= 3


def test_count_distinct(db):
    rows = run_query("select count(distinct l_returnflag) as n from lineitem", db)
    assert 1 <= rows[0]["n"] <= 3


def test_fig1_query_returns_profit_by_nation_year(db):
    rows = run_query(FIG1_QUERY, db)
    assert rows, "Fig. 1 query returned no rows"
    for row in rows:
        assert set(row) == {"nation", "o_year", "sum_profit"}
        assert len(row["o_year"]) == 4
    # Order by nation asc, o_year desc.
    keys = [(r["nation"], r["o_year"]) for r in rows]
    assert keys == sorted(keys, key=lambda k: (k[0],))
    nations = {r["nation"] for r in rows}
    assert len(nations) > 1


def test_fig1_matches_manual_computation(db):
    """Cross-check the executor against a hand-rolled computation."""
    expected: dict[tuple[str, str], float] = {}
    nation_by_key = {n["n_nationkey"]: n["n_name"] for n in db["nation"]}
    supplier_nation = {s["s_suppkey"]: nation_by_key[s["s_nationkey"]] for s in db["supplier"]}
    ps_cost = {(p["ps_partkey"], p["ps_suppkey"]): p["ps_supplycost"] for p in db["partsupp"]}
    order_year = {o["o_orderkey"]: o["o_orderdate"][:4] for o in db["orders"]}
    green = {p["p_partkey"] for p in db["part"] if "green" in p["p_name"]}
    for l in db["lineitem"]:
        if l["l_partkey"] not in green:
            continue
        key = (supplier_nation[l["l_suppkey"]], order_year[l["l_orderkey"]])
        amount = (
            l["l_extendedprice"] * (1 - l["l_discount"])
            - ps_cost[(l["l_partkey"], l["l_suppkey"])] * l["l_quantity"]
        )
        expected[key] = expected.get(key, 0.0) + amount
    rows = run_query(FIG1_QUERY, db)
    got = {(r["nation"], r["o_year"]): r["sum_profit"] for r in rows}
    assert set(got) == set(expected)
    for key, value in expected.items():
        assert got[key] == pytest.approx(value)


def test_datagen_deterministic():
    a = generate_database(seed=3)
    b = generate_database(seed=3)
    assert a["lineitem"] == b["lineitem"]
    c = generate_database(seed=4)
    assert a["lineitem"] != c["lineitem"]


def test_datagen_foreign_keys_valid(db):
    suppliers = {s["s_suppkey"] for s in db["supplier"]}
    parts = {p["p_partkey"] for p in db["part"]}
    orders = {o["o_orderkey"] for o in db["orders"]}
    ps_pairs = {(p["ps_partkey"], p["ps_suppkey"]) for p in db["partsupp"]}
    for l in db["lineitem"]:
        assert l["l_suppkey"] in suppliers
        assert l["l_partkey"] in parts
        assert l["l_orderkey"] in orders
        assert (l["l_partkey"], l["l_suppkey"]) in ps_pairs


def test_eval_case_when():
    row = {"x": 5}
    assert eval_expr(
        expr("case when x > 3 then 'big' when x > 0 then 'small' else 'neg' end"),
        row,
    ) == "big"
    assert eval_expr(expr("case when x < 0 then 1 end"), row) is None


def test_eval_in_list():
    row = {"mode": "AIR"}
    assert eval_expr(expr("mode in ('AIR', 'MAIL')"), row) is True
    assert eval_expr(expr("mode not in ('AIR', 'MAIL')"), row) is False
    assert eval_expr(expr("mode in ('SHIP')"), row) is False


def test_q12_style_case_aggregation(db):
    """TPC-H Q12 shape: conditional counts via sum(case when ...)."""
    rows = run_query(
        "select l_shipmode, "
        "sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 "
        "else 0 end) as high_line_count, "
        "count(*) as total "
        "from orders o join lineitem l on o.o_orderkey = l.l_orderkey "
        "where l_shipmode in ('AIR', 'MAIL') "
        "group by l_shipmode order by l_shipmode",
        db,
    )
    assert [r["l_shipmode"] for r in rows] == ["AIR", "MAIL"]
    for r in rows:
        assert 0 <= r["high_line_count"] <= r["total"]
