"""Tests for the catalog and its statistics."""

from __future__ import annotations

import pytest

from repro.sql.catalog import Catalog, CatalogError, Column, TPCH_TABLES, TableSchema


def test_tpch_tables_present():
    for name in ("lineitem", "orders", "customer", "part", "partsupp",
                 "supplier", "nation", "region"):
        assert name in TPCH_TABLES


def test_row_counts_match_spec_ratios():
    # TPC-H invariants at any scale: lineitem ~4x orders, orders = 10x customers.
    assert TPCH_TABLES["lineitem"].base_rows == 4 * TPCH_TABLES["orders"].base_rows
    assert TPCH_TABLES["orders"].base_rows == 10 * TPCH_TABLES["customer"].base_rows
    assert TPCH_TABLES["partsupp"].base_rows == 4 * TPCH_TABLES["part"].base_rows


def test_fixed_tables_do_not_scale():
    assert TPCH_TABLES["nation"].rows_at(1000) == 25
    assert TPCH_TABLES["region"].rows_at(1000) == 5
    assert TPCH_TABLES["lineitem"].rows_at(2) == 12_000_000


def test_bytes_at_scales():
    schema = TPCH_TABLES["orders"]
    assert schema.bytes_at(10) == pytest.approx(10 * schema.bytes_at(1), rel=1e-6)


def test_resolve_with_and_without_prefix():
    catalog = Catalog()
    assert catalog.resolve_table("lineitem").name == "lineitem"
    assert catalog.resolve_table("tpch_lineitem").name == "lineitem"
    assert catalog.resolve_table("TPCH_LINEITEM").name == "lineitem"
    with pytest.raises(CatalogError):
        catalog.resolve_table("no_such_table")


def test_find_column():
    catalog = Catalog()
    assert catalog.find_column("l_orderkey") == ["lineitem"]
    assert set(catalog.find_column("o_orderkey")) == {"orders"}
    assert catalog.find_column("nonexistent_column") == []


def test_register_custom_table():
    catalog = Catalog()
    schema = TableSchema(
        "metrics", (Column("ts", "int"), Column("value", "float")),
        base_rows=100, bytes_per_row=16,
    )
    catalog.register(schema)
    assert catalog.resolve_table("metrics") is schema
    assert schema.column_names() == ["ts", "value"]
    assert schema.has_column("ts") and not schema.has_column("missing")
