"""Tests for the runtime event log."""

from __future__ import annotations

from repro.core.events import EventKind, EventLog, RuntimeEvent
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.baselines import restart_policy
from repro.sim.cluster import Cluster
from repro.sim.failures import FailureKind, FailurePlan, FailureSpec

from conftest import as_job, chain_dag


def test_event_log_record_and_query():
    log = EventLog()
    log.record(1.0, EventKind.JOB_SUBMITTED, "a")
    log.record(2.0, EventKind.JOB_COMPLETED, "a")
    log.record(1.5, EventKind.JOB_SUBMITTED, "b")
    assert len(log) == 3
    assert len(log.of_kind(EventKind.JOB_SUBMITTED)) == 2
    assert len(log.for_job("a")) == 2
    assert log.first(EventKind.JOB_COMPLETED).job_id == "a"
    assert log.first(EventKind.JOB_FAILED) is None


def test_event_log_capacity_bound():
    log = EventLog(capacity=5)
    for i in range(12):
        log.record(float(i), EventKind.STAGE_COMPLETED, "j", f"s{i}")
    assert len(log) == 5
    assert log.dropped == 7
    assert log.events[0].detail == "s7"


def test_event_str_and_tail():
    event = RuntimeEvent(1.25, EventKind.UNIT_GRANTED, "job", "unit 1")
    assert "unit_granted" in str(event)
    log = EventLog()
    log.record(1.0, EventKind.JOB_SUBMITTED, "x")
    assert "job_submitted" in log.format_tail()


def test_runtime_records_job_lifecycle():
    runtime = SwiftRuntime(Cluster.build(4, 8), swift_policy())
    runtime.execute(as_job(chain_dag("lc", blocking_stages=(1,))))
    kinds = [e.kind for e in runtime.events]
    assert EventKind.JOB_SUBMITTED in kinds
    assert EventKind.UNIT_REQUESTED in kinds
    assert EventKind.UNIT_GRANTED in kinds
    assert EventKind.STAGE_COMPLETED in kinds
    assert EventKind.JOB_COMPLETED in kinds
    # Two graphlets: two grants, in order, before completion.
    grants = runtime.events.of_kind(EventKind.UNIT_GRANTED)
    assert len(grants) == 2
    done = runtime.events.first(EventKind.JOB_COMPLETED)
    assert all(g.time <= done.time for g in grants)


def test_runtime_records_failure_and_recovery():
    dag = chain_dag("flog", blocking_stages=(1,), tasks=4)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.3)
    runtime = SwiftRuntime(
        Cluster.build(4, 8), swift_policy(),
        failure_plan=FailurePlan([spec]), reference_duration=5.0,
    )
    runtime.execute(as_job(dag))
    assert runtime.events.first(EventKind.FAILURE_INJECTED) is not None
    assert runtime.events.first(EventKind.TASK_RECOVERED) is not None


def test_runtime_records_restart():
    baseline = SwiftRuntime(Cluster.build(4, 8), restart_policy()).execute(
        as_job(chain_dag("rlog0", tasks=2))
    ).metrics.run_time
    dag = chain_dag("rlog", tasks=2)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.3)
    runtime = SwiftRuntime(
        Cluster.build(4, 8), restart_policy(),
        failure_plan=FailurePlan([spec]), reference_duration=baseline,
    )
    runtime.execute(as_job(dag))
    assert runtime.events.first(EventKind.JOB_RESTARTED) is not None
