"""Trace-record schema stability: a golden JSONL fixture pins the layout.

The fixture is the JSONL export of a small deterministic traced run
(Terasort with one injected task crash, so failure/recovery records are
covered).  Any change to record fields, key order, category names, or the
schema version shows up as a fixture diff.  To regenerate after an
intentional schema bump::

    PYTHONPATH=src python tests/test_trace_schema.py

and document the migration in README's Observability section.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import RuntimeConfig, Simulation, SimulationResult
from repro.obs import SCHEMA_VERSION, Category, RecordKind, records_to_jsonl
from repro.sim.failures import FailureKind, FailureSpec
from repro.workloads import terasort

GOLDEN = Path(__file__).parent / "data" / "golden_trace.jsonl"

#: Keys in the exact order to_dict emits them; nothing else may appear.
_KEY_ORDER = ("kind", "cat", "name", "ts", "dur", "job", "scope", "args")

_KNOWN_CATEGORIES = {
    Category.JOB, Category.UNIT, Category.STAGE, Category.TASK,
    Category.SHUFFLE, Category.CACHE, Category.FAILURE, Category.RECOVERY,
    Category.ENGINE, Category.META,
}


def _golden_run() -> SimulationResult:
    config = RuntimeConfig(
        n_machines=4, executors_per_machine=8, reference_duration=20.0,
    )
    config.failure_plan.add(FailureSpec(
        kind=FailureKind.TASK_CRASH, stage="map", at_fraction=0.5,
    ))
    return Simulation(config).run(terasort.terasort_job(8, 8), trace=True)


def test_export_matches_golden_fixture():
    text = records_to_jsonl(_golden_run().trace)
    assert text == GOLDEN.read_text(encoding="utf-8"), (
        "trace export drifted from tests/data/golden_trace.jsonl; if the "
        "schema change is intentional, bump SCHEMA_VERSION and regenerate "
        "(see this module's docstring)"
    )


def test_golden_header_pins_schema_version():
    header = json.loads(GOLDEN.read_text().splitlines()[0])
    assert header["kind"] == "meta"
    assert header["args"]["schema"] == SCHEMA_VERSION == 1


def test_golden_records_are_schema_clean():
    lines = GOLDEN.read_text().splitlines()
    assert len(lines) > 20
    for line in lines[1:]:
        payload = json.loads(line)
        keys = list(payload)
        assert set(keys) <= set(_KEY_ORDER)
        assert keys == [k for k in _KEY_ORDER if k in payload], "key order drifted"
        assert payload["kind"] in {k.value for k in RecordKind}
        assert payload["cat"] in _KNOWN_CATEGORIES
        assert payload["ts"] >= 0
        if "dur" in payload:
            assert payload["dur"] >= 0


def test_golden_covers_the_documented_signal_set():
    cats = {json.loads(line)["cat"] for line in GOLDEN.read_text().splitlines()[1:]}
    assert {Category.JOB, Category.UNIT, Category.STAGE, Category.TASK,
            Category.SHUFFLE, Category.FAILURE, Category.RECOVERY} <= cats
    names = {json.loads(line)["name"]
             for line in GOLDEN.read_text().splitlines()[1:]}
    assert {"job.submitted", "unit.granted", "shuffle.scheme",
            "failure.injected", "failure.detected"} <= names


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(records_to_jsonl(_golden_run().trace), encoding="utf-8")
    print(f"wrote {GOLDEN}")
