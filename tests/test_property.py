"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Edge, EdgeMode, JobDAG, Stage
from repro.core.metrics import four_quartile_summary, quantile, utilization_series
from repro.core.operators import OperatorKind as K, ops
from repro.core.partition import BubblePartitioner, partition_job
from repro.core.shuffle import ShuffleScheme, connection_count, select_scheme
from repro.sim.cluster import Cluster
from repro.sim.config import CacheWorkerConfig, DiskConfig, ShuffleConfig
from repro.core.cache_worker import CacheWorker
from repro.sim.disk import DiskModel
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Random layered DAGs
# ----------------------------------------------------------------------

@st.composite
def layered_dags(draw):
    """Random layered DAGs: every stage in layer i feeds >=1 stage in some
    later layer, so the graph is acyclic by construction."""
    n_layers = draw(st.integers(min_value=1, max_value=5))
    layer_sizes = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n_layers)]
    stages: list[Stage] = []
    names_by_layer: list[list[str]] = []
    for layer, size in enumerate(layer_sizes):
        names = []
        for i in range(size):
            name = f"L{layer}N{i}"
            blocking = draw(st.booleans())
            operators = ops(K.SHUFFLE_READ, K.MERGE_SORT if blocking else K.FILTER)
            stages.append(
                Stage(
                    name=name,
                    task_count=draw(st.integers(min_value=1, max_value=6)),
                    operators=operators,
                    output_bytes_per_task=float(draw(st.integers(0, 10))) * 1e6,
                    work_seconds_per_task=1.0,
                )
            )
            names.append(name)
        names_by_layer.append(names)
    edges: list[Edge] = []
    seen: set[tuple[str, str]] = set()
    for layer in range(1, n_layers):
        for dst in names_by_layer[layer]:
            n_preds = draw(st.integers(min_value=1, max_value=len(names_by_layer[layer - 1])))
            for src in names_by_layer[layer - 1][:n_preds]:
                if (src, dst) not in seen:
                    seen.add((src, dst))
                    edges.append(Edge(src, dst))
    return JobDAG("prop", stages, edges)


@given(layered_dags())
@settings(max_examples=60, deadline=None)
def test_partition_covers_each_stage_exactly_once(dag):
    graph = partition_job(dag)
    names = sorted(n for g in graph.graphlets for n in g.stage_names)
    assert names == sorted(dag.stages)


@given(layered_dags())
@settings(max_examples=60, deadline=None)
def test_internal_barriers_only_via_pipeline_bridges(dag):
    """Algorithm 2 groups stages along pipeline edges, so a barrier edge can
    land inside a graphlet only when its endpoints are *also* connected by a
    pipeline path (a diamond with one blocking arm).  Verify exactly that."""
    graph = partition_job(dag)
    # Union-find over pipeline edges.
    parent = {name: name for name in dag.stages}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in dag.edges:
        if dag.edge_mode(edge) == EdgeMode.PIPELINE:
            parent[find(edge.src)] = find(edge.dst)
    for edge in dag.edges:
        same_unit = (
            graph.stage_to_graphlet[edge.src] == graph.stage_to_graphlet[edge.dst]
        )
        if same_unit and dag.edge_mode(edge) == EdgeMode.BARRIER:
            assert find(edge.src) == find(edge.dst)


@given(layered_dags())
@settings(max_examples=60, deadline=None)
def test_raw_partition_keeps_pipeline_components_together(dag):
    """Raw Algorithms 1-2 (no acyclicity enforcement): any two stages joined
    by a pipeline edge land in the same graphlet."""
    from repro.core.partition import SwiftPartitioner

    graph = SwiftPartitioner(enforce_acyclic=False).partition(dag)
    for edge in dag.edges:
        if dag.edge_mode(edge) == EdgeMode.PIPELINE:
            assert graph.stage_to_graphlet[edge.src] == graph.stage_to_graphlet[edge.dst]


@given(layered_dags())
@settings(max_examples=40, deadline=None)
def test_graphlet_submission_order_is_always_topological(dag):
    graph = partition_job(dag)
    order = graph.submission_order()
    position = {gid: i for i, gid in enumerate(order)}
    for gid, deps in graph.dependencies.items():
        for dep in deps:
            assert position[dep] < position[gid]


@given(layered_dags(), st.floats(min_value=1e3, max_value=1e12))
@settings(max_examples=30, deadline=None)
def test_bubble_partition_also_covers_all_stages(dag, budget):
    graph = BubblePartitioner(memory_budget_bytes=budget).partition(dag)
    names = sorted(n for g in graph.graphlets for n in g.stage_names)
    assert names == sorted(dag.stages)


# ----------------------------------------------------------------------
# Shuffle formulas
# ----------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_local_never_more_connections_than_direct_when_y_small(m, n, y):
    if y * (y - 1) // 2 <= m * n - m - n:  # the paper's regime: Y << M, N
        local = connection_count(ShuffleScheme.LOCAL, m, n, y)
        direct = connection_count(ShuffleScheme.DIRECT, m, n, y)
        assert local <= direct


@given(st.integers(min_value=0, max_value=10**7))
@settings(max_examples=100)
def test_adaptive_selection_total(edge_size):
    scheme = select_scheme(edge_size, ShuffleConfig())
    assert scheme in (ShuffleScheme.DIRECT, ShuffleScheme.REMOTE, ShuffleScheme.LOCAL)
    if edge_size <= 10_000:
        assert scheme == ShuffleScheme.DIRECT
    elif edge_size <= 90_000:
        assert scheme == ShuffleScheme.REMOTE
    else:
        assert scheme == ShuffleScheme.LOCAL


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200))
@settings(max_examples=100)
def test_quantile_bounded_and_monotone(values):
    q25 = quantile(values, 0.25)
    q75 = quantile(values, 0.75)
    assert min(values) <= q25 <= q75 <= max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=100)
def test_four_quartile_summary_invariants(values):
    summary = four_quartile_summary(values)
    assert summary["min"] <= summary["q1"] <= summary["median"]
    assert summary["median"] <= summary["q3"] <= summary["max"]
    assert summary["min"] <= summary["iq_mean"] <= summary["max"]


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda p: (min(p), max(p))
        ),
        max_size=50,
    )
)
@settings(max_examples=60)
def test_utilization_series_never_negative_and_ends_at_zero(intervals):
    horizon = max((e for _, e in intervals), default=0.0) + 1.0
    series = utilization_series(intervals, step=1.0, horizon=horizon)
    assert all(s.running_executors >= 0 for s in series)
    assert series[-1].running_executors == 0


# ----------------------------------------------------------------------
# Cache worker accounting
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),        # edge id
            st.floats(min_value=0, max_value=40 * 1024**2),  # bytes
            st.integers(min_value=1, max_value=3),        # consumers
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_cache_worker_memory_never_exceeds_capacity(operations):
    config = CacheWorkerConfig(memory_capacity=100 * 1024**2)
    worker = CacheWorker(0, config, DiskModel(DiskConfig()))
    for t, (edge, n_bytes, consumers) in enumerate(operations):
        worker.write("job", f"e{edge}", n_bytes, consumers, now=float(t))
        assert worker.bytes_in_memory <= config.memory_capacity + 1e-6
        assert worker.bytes_in_memory >= 0
    worker.release_job("job")
    assert worker.bytes_in_memory == 0.0
    assert len(worker) == 0


#: One random Cache Worker operation: (op, edge id, bytes, consumers).
_cache_ops = st.tuples(
    st.sampled_from(["write", "read", "consume", "drop_all", "release_job"]),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=0, max_value=60 * 1024**2),
    st.integers(min_value=1, max_value=4),
)


@given(
    st.lists(_cache_ops, min_size=1, max_size=40),
    st.sampled_from([32 * 1024**2, 100 * 1024**2]),
)
@settings(max_examples=80, deadline=None)
def test_cache_worker_invariants_under_interleavings(operations, capacity):
    """Arbitrary write/read/consume/drop_all/release_job interleavings keep
    the memory counter equal to the entry-map sum, never negative, never
    over capacity — with a strict audit ledger attached, so any shadow
    divergence raises immediately."""
    from repro.audit import ResourceLedger

    config = CacheWorkerConfig(memory_capacity=capacity)
    worker = CacheWorker(0, config, DiskModel(DiskConfig()))
    worker.ledger = ledger = ResourceLedger(strict=True)
    jobs = ("jobA", "jobB")
    for t, (op, edge, n_bytes, consumers) in enumerate(operations):
        job_id = jobs[edge % 2]
        key = f"e{edge}"
        if op == "write":
            worker.write(job_id, key, n_bytes, consumers, now=float(t))
        elif op == "read":
            assert worker.read(job_id, key, now=float(t)) >= 0.0
        elif op == "consume":
            worker.consume(job_id, key)
        elif op == "drop_all":
            worker.drop_all()
        else:
            worker.release_job(job_id)
        entry_sum = sum(e.bytes_in_memory for e in worker.iter_entries())
        assert worker.memory_used == entry_sum
        assert 0.0 <= worker.bytes_in_memory <= capacity + 1e-6
        ledger.reconcile_cache_worker(worker, checkpoint=f"op{t}")
    worker.drop_all()
    assert worker.bytes_in_memory == 0.0
    assert ledger.ok


#: One random replicated-shuffle operation: (op, edge id, bytes).
_replica_ops = st.tuples(
    st.sampled_from(["write", "spill_pressure", "consume"]),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=1.0, max_value=10 * 1024**2),
)


@given(
    st.lists(_replica_ops, min_size=1, max_size=25),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_replication_invariants_under_interleavings(operations, lose_replica):
    """Shuffle replication conserves replica bytes across arbitrary
    write/spill/failover/consume interleavings, and a failover read serves
    exactly the bytes the primary held — never a truncated or inflated
    share.  A strict ledger shadows every transition."""
    from repro.audit import ResourceLedger

    config = CacheWorkerConfig(memory_capacity=32 * 1024**2)
    ledger = ResourceLedger(strict=True)
    primary = CacheWorker(0, config, DiskModel(DiskConfig()))
    replica = CacheWorker(1, config, DiskModel(DiskConfig()))
    primary.ledger = replica.ledger = ledger
    live = set()
    for t, (op, edge, n_bytes) in enumerate(operations):
        key = f"e{edge}"
        if op == "write":
            # Replicated store: the same bytes land on every group member,
            # with the redundant copy flagged for replica accounting.
            primary.write("job", key, n_bytes, 1, now=float(t))
            replica.write("job", key, n_bytes, 1, now=float(t), replica=True)
            live.add(key)
        elif op == "spill_pressure":
            # An unrelated tenant squeezes one worker's memory; spill moves
            # bytes to disk but must not change any entry's total.
            primary.write("other", "squeeze", n_bytes, 1, now=float(t))
            primary.consume("other", "squeeze")
        elif key in live:
            primary.consume("job", key)
            replica.consume("job", key)
            live.discard(key)
        for worker in (primary, replica):
            ledger.reconcile_cache_worker(worker, checkpoint=f"op{t}")
    # Failover: kill the primary and serve every surviving share from the
    # replica — byte-identical to what the primary held.
    lost = {e.key: e.total_bytes for e in primary.drop_all(now=99.0)
            if e.key[0] == "job"}
    for key in live:
        survivor = replica.entry("job", key)
        assert survivor is not None
        assert survivor.total_bytes == pytest.approx(lost[("job", key)])
        assert replica.read("job", key, now=100.0) >= 0.0
    # Drain the replica the way the runtime would (consume or lose it) and
    # check conservation: written == released + dropped, nothing leaks.
    if lose_replica:
        replica.drop_all(now=101.0)
    else:
        replica.release_job("job", now=101.0)
    assert ledger.ok
    assert ledger.replica_bytes_outstanding == pytest.approx(0.0, abs=1e-3)
    assert ledger.replica_bytes_written_total == pytest.approx(
        ledger.replica_bytes_released_total + ledger.replica_bytes_dropped_total
    )


@given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_cache_worker_spill_read_back_never_exceeds_spilled(consumer_counts):
    """Every consumer of a spilled entry pays the share snapshotted at
    spill time, and the total charged never exceeds the spilled bytes
    (the old shrinking-denominator formula over-charged late readers)."""
    mb = 1024**2
    config = CacheWorkerConfig(memory_capacity=64 * mb)
    worker = CacheWorker(0, config, DiskModel(DiskConfig()))
    for i, consumers in enumerate(consumer_counts):
        worker.write("job", f"e{i}", 40 * mb, consumers, now=float(i))
    # The last write left earlier entries spilled; drain every consumer.
    for i, consumers in enumerate(consumer_counts):
        entry = worker.entry("job", f"e{i}")
        assert entry is not None
        for r in range(consumers):
            worker.read("job", f"e{i}", now=100.0 + r)
        assert entry.bytes_read_back <= entry.bytes_on_disk + 1e-6
        # Further reads are free: all spilled bytes are promoted.
        before = entry.bytes_read_back
        assert worker.read("job", f"e{i}", now=200.0) == 0.0 or (
            entry.bytes_read_back == before
        )


# ----------------------------------------------------------------------
# Event engine ordering
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=100))
@settings(max_examples=60)
def test_simulator_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    executed: list[float] = []
    for delay in delays:
        sim.schedule(delay, lambda: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


# ----------------------------------------------------------------------
# End-to-end smoke over random DAGs
# ----------------------------------------------------------------------

@given(layered_dags())
@settings(max_examples=20, deadline=None)
def test_runtime_completes_any_layered_dag(dag):
    from repro.core.policies import swift_policy
    from repro.core.runtime import SwiftRuntime
    from repro.core.dag import Job

    cluster = Cluster.build(4, 16)
    runtime = SwiftRuntime(cluster, swift_policy())
    result = runtime.execute(Job(dag=dag))
    assert result.completed
    assert len(result.metrics.tasks) >= dag.total_tasks()
    assert cluster.free_executor_count() == cluster.total_executors()
    assert math.isfinite(result.metrics.run_time)


@given(layered_dags())
@settings(max_examples=15, deadline=None)
def test_runtime_barrier_edges_never_start_before_producer(dag):
    """Causality: a consumer's data never arrives before every barrier
    producer stage has finished, on arbitrary DAGs."""
    from repro.core.dag import Job
    from repro.core.policies import swift_policy
    from repro.core.runtime import SwiftRuntime

    runtime = SwiftRuntime(Cluster.build(4, 16), swift_policy())
    result = runtime.execute(Job(dag=dag))
    assert result.completed
    finish_by_stage: dict[str, float] = {}
    for t in result.metrics.tasks:
        finish_by_stage[t.stage] = max(finish_by_stage.get(t.stage, 0.0), t.finish)
    graph = runtime.job_runs[dag.job_id].graphlets
    for edge in dag.edges:
        cross = graph.stage_to_graphlet[edge.src] != graph.stage_to_graphlet[edge.dst]
        if not cross and dag.edge_mode(edge) == EdgeMode.PIPELINE:
            continue
        producer_finish = finish_by_stage[edge.src]
        consumer_data = min(
            t.data_arrive for t in result.metrics.tasks if t.stage == edge.dst
        )
        assert consumer_data >= producer_finish - 1e-6


@given(
    st.lists(
        st.sampled_from(
            "select from where group by order limit join on and or not "
            "( ) , . * = < > <> 'str' 1 2.5 ident tbl sum case when then "
            "else end in between is null as".split()
        ),
        max_size=25,
    )
)
@settings(max_examples=200, deadline=None)
def test_parser_total_on_token_soup(words):
    """The parser either parses or raises ParseError — never crashes."""
    from repro.sql.parser import ParseError, parse

    source = "select " + " ".join(words)
    try:
        parse(source)
    except ParseError:
        pass
