"""Runtime edge cases and resource-leak regressions."""

from __future__ import annotations

import math


from repro.baselines import bubble_policy, spark_policy
from repro.core.dag import Edge, Job, JobDAG
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime, TaskState
from repro.sim.cluster import Cluster
from repro.sim.failures import FailureKind, FailurePlan, FailureSpec

from conftest import as_job, chain_dag, diamond_dag, make_stage


def test_no_connection_leak_after_failures():
    dag = chain_dag("leak", blocking_stages=(1,), tasks=4)
    plan = FailurePlan([
        FailureSpec(kind=FailureKind.TASK_CRASH, stage="S2", at_fraction=0.5),
    ])
    runtime = SwiftRuntime(
        Cluster.build(4, 8), swift_policy(), failure_plan=plan,
        reference_duration=4.0,
    )
    result = runtime.execute(as_job(dag))
    assert result.completed
    assert runtime.cluster.network.open_connections == 0


def test_no_executor_leak_after_restart():
    dag = chain_dag("leak2", tasks=4, n_stages=2)
    baseline = SwiftRuntime(Cluster.build(4, 8), swift_policy()).execute(
        as_job(chain_dag("leak0", tasks=4, n_stages=2))
    ).metrics.run_time
    from repro.baselines import restart_policy
    plan = FailurePlan([
        FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.4),
    ])
    runtime = SwiftRuntime(
        Cluster.build(4, 8), restart_policy(), failure_plan=plan,
        reference_duration=baseline,
    )
    result = runtime.execute(as_job(dag))
    assert result.completed
    cluster = runtime.cluster
    assert cluster.free_executor_count() == cluster.total_executors()


def test_single_task_job():
    dag = JobDAG("tiny", [make_stage("only", tasks=1, scan_mb=1, work=0.5)], [])
    result = SwiftRuntime(Cluster.build(1, 1), swift_policy()).execute(Job(dag=dag))
    assert result.completed
    assert len(result.metrics.tasks) == 1


def test_zero_work_stage():
    dag = JobDAG("zero", [make_stage("s", tasks=2, work=0.0)], [])
    result = SwiftRuntime(Cluster.build(2, 4), swift_policy()).execute(Job(dag=dag))
    assert result.completed
    assert result.metrics.run_time < 1.0


def test_wide_fanin_join():
    scans = [make_stage(f"m{i}", tasks=2, scan_mb=4) for i in range(8)]
    join = make_stage("j", tasks=4, blocking=True)
    dag = JobDAG("fanin", scans + [join], [Edge(s.name, "j") for s in scans])
    result = SwiftRuntime(Cluster.build(4, 8), swift_policy()).execute(Job(dag=dag))
    assert result.completed
    j_data = min(t.data_arrive for t in result.metrics.tasks if t.stage == "j")
    for s in scans:
        s_start = min(t.plan_arrive for t in result.metrics.tasks if t.stage == s.name)
        assert s_start <= j_data


def test_wide_fanout_broadcast():
    src = make_stage("src", tasks=2, scan_mb=4, blocking=True)
    sinks = [make_stage(f"r{i}", tasks=2) for i in range(6)]
    dag = JobDAG("fanout", [src] + sinks, [Edge("src", s.name) for s in sinks])
    result = SwiftRuntime(Cluster.build(4, 8), swift_policy()).execute(Job(dag=dag))
    assert result.completed
    assert len({t.stage for t in result.metrics.tasks}) == 7


def test_bubble_eager_submission_under_contention():
    """Eagerly-submitted downstream bubbles hold executors; jobs still all
    finish when the cluster is tight."""
    jobs = [as_job(chain_dag(f"b{i}", blocking_stages=(1,), tasks=4), submit_time=i * 0.1)
            for i in range(6)]
    runtime = SwiftRuntime(Cluster.build(4, 16), bubble_policy())
    runtime.submit_all(jobs)
    results = runtime.run()
    assert len(results) == 6 and all(r.completed for r in results)


def test_spark_multiple_jobs_waves():
    jobs = [as_job(chain_dag(f"s{i}", tasks=12, n_stages=2), submit_time=float(i))
            for i in range(3)]
    runtime = SwiftRuntime(Cluster.build(2, 8), spark_policy())
    runtime.submit_all(jobs)
    results = runtime.run()
    assert all(r.completed for r in results)


def test_machine_crash_with_idle_machine_pool():
    """After a machine dies, subsequent units land on surviving machines."""
    dag = chain_dag("mc2", blocking_stages=(1,), tasks=4)
    baseline = SwiftRuntime(Cluster.build(4, 8), swift_policy()).execute(
        as_job(chain_dag("mc0", blocking_stages=(1,), tasks=4))
    ).metrics.run_time
    plan = FailurePlan([
        FailureSpec(kind=FailureKind.MACHINE_CRASH, machine_id=0, at_fraction=0.2),
    ])
    runtime = SwiftRuntime(
        Cluster.build(4, 8), swift_policy(), failure_plan=plan,
        reference_duration=baseline,
    )
    result = runtime.execute(as_job(dag))
    assert result.completed
    dead = runtime.cluster.machines[0]
    for inst_list in (sr.instances for sr in runtime.job_runs["mc2"].stage_runs.values()):
        for inst in inst_list:
            assert inst.executor is None
    assert not dead.accepts_tasks


def test_instances_all_finished_at_end():
    runtime = SwiftRuntime(Cluster.build(4, 8), swift_policy())
    runtime.execute(as_job(diamond_dag(blocking_mid=True)))
    for sr in runtime.job_runs["diamond"].stage_runs.values():
        for inst in sr.instances:
            assert inst.state == TaskState.FINISHED
            assert math.isfinite(inst.finish_time)
