"""Unit tests for the parallel cell harness (repro.experiments.parallel)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    Cell,
    clear_memory_cache,
    default_jobs,
    execution_plan,
    run_cell,
    run_cells,
    set_default_jobs,
)

#: A trivial picklable cell: ``json.dumps(obj=...)`` returns a string and
#: exercises the full import-by-name worker path without any simulation.
def _echo_cell(value):
    return Cell("json", "dumps", {"obj": value})


@pytest.fixture(autouse=True)
def _clean_harness_state():
    clear_memory_cache()
    set_default_jobs(None)
    yield
    clear_memory_cache()
    set_default_jobs(None)


def test_cell_key_is_stable_and_spec_sensitive():
    a = _echo_cell([1, 2])
    assert a.key() == _echo_cell([1, 2]).key()
    assert a.key() != _echo_cell([1, 3]).key()
    assert a.key() != Cell("json", "loads", {"obj": [1, 2]}).key()


def test_run_cells_preserves_submission_order():
    cells = [_echo_cell(i) for i in (3, 1, 2)]
    assert run_cells(cells) == ["3", "1", "2"]


def test_run_cells_parallel_matches_serial():
    cells = [_echo_cell([i, i + 1]) for i in range(6)]
    serial = run_cells(cells, jobs=1)
    clear_memory_cache()
    assert run_cells(cells, jobs=3) == serial


def test_memory_cache_serves_repeat_calls():
    cell = _echo_cell("cached")
    assert run_cell(cell) == '"cached"'
    # A second call must not re-execute: poison the function name and rely
    # on the cache (a miss would raise AttributeError).
    poisoned = Cell("json", "dumps", {"obj": "cached"})
    assert poisoned.key() == cell.key()
    assert run_cell(poisoned) == '"cached"'


def test_disk_cache_round_trip(tmp_path):
    cell = _echo_cell({"x": 1})
    first = run_cells([cell], cache_dir=str(tmp_path))[0]
    entries = list(tmp_path.iterdir())
    assert len(entries) == 1
    assert json.load(open(entries[0])) == first
    # A fresh process would miss the memory cache; simulate by clearing it.
    clear_memory_cache()
    assert run_cells([cell], cache_dir=str(tmp_path))[0] == first


def test_normalization_makes_fresh_equal_cached(tmp_path):
    # terasort_cell returns floats; the payload must survive the disk
    # round-trip bit-for-bit so cached reruns reproduce fresh runs.
    cell = Cell("repro.experiments.cells", "terasort_cell", {"m": 10, "n": 10})
    fresh = run_cells([cell], cache_dir=str(tmp_path))[0]
    clear_memory_cache()
    cached = run_cells([cell], cache_dir=str(tmp_path))[0]
    assert cached == fresh
    assert isinstance(fresh["swift_s"], float)


def test_default_jobs_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() == 1
    set_default_jobs(2)
    assert default_jobs() == 2


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        set_default_jobs(0)
    with pytest.raises(ValueError):
        run_cells([_echo_cell(1)], jobs=0)


def test_cache_env_enables_disk_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run_cell(_echo_cell("via-env"))
    assert len(list(tmp_path.iterdir())) == 1


def test_execution_plan_fans_out_with_cpus(monkeypatch):
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 8)
    assert execution_plan(3, jobs=3) == ("process-pool", 3)
    # Capped by cell count and by CPU count.
    assert execution_plan(2, jobs=16) == ("process-pool", 2)
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
    assert execution_plan(100, jobs=16) == ("process-pool", 4)


def test_execution_plan_degrades_to_serial_on_one_cpu(monkeypatch):
    # A --jobs 3 run on a single-CPU host must not pay pool spin-up.
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 1)
    assert execution_plan(3, jobs=3) == ("serial", 1)


def test_execution_plan_degrades_to_serial_for_few_cells(monkeypatch):
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 8)
    assert execution_plan(1, jobs=8) == ("serial", 1)
    assert execution_plan(0, jobs=8) == ("serial", 1)


def test_execution_plan_uses_default_jobs(monkeypatch):
    monkeypatch.setattr(parallel, "_cpu_count", lambda: 8)
    set_default_jobs(4)
    assert execution_plan(10) == ("process-pool", 4)
    set_default_jobs(1)
    assert execution_plan(10) == ("serial", 1)


def test_execution_plan_rejects_invalid_jobs():
    with pytest.raises(ValueError):
        execution_plan(4, jobs=0)
