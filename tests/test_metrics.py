"""Tests for metrics: IdleRatio, quartiles, utilization, CDFs."""

from __future__ import annotations

import math

import pytest

from repro.core.metrics import (
    JobMetrics,
    TaskTiming,
    four_quartile_summary,
    normalized_cdf,
    quantile,
    utilization_series,
)


def timing(plan=0.0, data=0.0, finish=10.0, stage="s", **kw) -> TaskTiming:
    return TaskTiming(
        job_id="j", stage=stage, index=0,
        plan_arrive=plan, data_arrive=data, finish=finish, **kw,
    )


def test_idle_ratio_definition():
    # IdleRatio = (T_data_arrive - T_task_start) / (T_task_finish - T_task_start)
    t = timing(plan=10.0, data=14.0, finish=20.0)
    assert t.idle_ratio == pytest.approx(0.4)


def test_idle_ratio_clamps():
    assert timing(plan=10.0, data=5.0, finish=20.0).idle_ratio == 0.0
    assert timing(plan=10.0, data=50.0, finish=20.0).idle_ratio == 1.0
    assert timing(plan=10.0, data=10.0, finish=10.0).idle_ratio == 0.0


def test_job_idle_ratio_is_mean_over_tasks():
    metrics = JobMetrics(job_id="j")
    metrics.tasks = [timing(plan=0, data=0, finish=10), timing(plan=0, data=5, finish=10)]
    assert metrics.idle_ratio() == pytest.approx(0.25)
    assert JobMetrics(job_id="empty").idle_ratio() == 0.0


def test_latency_and_run_time():
    metrics = JobMetrics(job_id="j", submit_time=2.0, start_time=5.0, finish_time=12.0)
    assert metrics.latency == 10.0
    assert metrics.run_time == 7.0


def test_phase_breakdown_takes_critical_max():
    metrics = JobMetrics(job_id="j")
    metrics.tasks = [
        timing(stage="m", launch_time=1.0, shuffle_read_time=2.0,
               processing_time=3.0, shuffle_write_time=4.0),
        timing(stage="m", launch_time=0.5, shuffle_read_time=5.0,
               processing_time=1.0, shuffle_write_time=0.1),
    ]
    breakdown = metrics.phase_breakdown("m")
    assert breakdown.launch == 1.0
    assert breakdown.shuffle_read == 5.0
    assert breakdown.processing == 3.0
    assert breakdown.shuffle_write == 4.0
    assert breakdown.total == pytest.approx(13.0)
    with pytest.raises(KeyError):
        metrics.phase_breakdown("missing")


def test_quantile_type7_matches_numpy():
    import numpy as np
    data = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6, 5.3]
    for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        assert quantile(data, q) == pytest.approx(float(np.quantile(data, q)))


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)
    assert quantile([7.0], 0.5) == 7.0


def test_four_quartile_summary():
    data = list(map(float, range(1, 101)))
    summary = four_quartile_summary(data)
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["median"] == pytest.approx(50.5)
    # The interquartile mean of a uniform sequence equals its median.
    assert summary["iq_mean"] == pytest.approx(50.5, abs=1.0)
    assert summary["mean"] == pytest.approx(50.5)


def test_four_quartile_summary_is_robust_to_stragglers():
    data = [1.0] * 99 + [10_000.0]
    summary = four_quartile_summary(data)
    assert summary["iq_mean"] == pytest.approx(1.0)
    assert summary["mean"] > 100


def test_utilization_series_counts_overlaps():
    intervals = [(0.0, 10.0), (5.0, 15.0), (20.0, 25.0)]
    series = utilization_series(intervals, step=5.0, horizon=25.0)
    by_time = {s.time: s.running_executors for s in series}
    assert by_time[0.0] == 1
    assert by_time[5.0] == 2
    assert by_time[10.0] == 1
    assert by_time[15.0] == 0
    assert by_time[20.0] == 1
    assert by_time[25.0] == 0


def test_utilization_series_validation():
    with pytest.raises(ValueError):
        utilization_series([], step=0.0, horizon=1.0)
    with pytest.raises(ValueError):
        utilization_series([(2.0, 1.0)], step=1.0, horizon=1.0)


def test_normalized_cdf():
    points = normalized_cdf([2.0, 4.0, 6.0], [2.0, 2.0, 2.0])
    assert [r for r, _ in points] == [1.0, 2.0, 3.0]
    assert [p for _, p in points] == pytest.approx([100 / 3, 200 / 3, 100.0])


def test_normalized_cdf_handles_zero_baseline():
    points = normalized_cdf([1.0], [0.0])
    assert math.isinf(points[0][0])
    with pytest.raises(ValueError):
        normalized_cdf([1.0], [1.0, 2.0])
