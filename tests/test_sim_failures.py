"""Tests for the fault injector and trace-calibrated failure sampling."""

from __future__ import annotations

import random

import pytest

from repro.sim.failures import (
    TRACE_FAILURE_SCALE,
    TRACE_FAILURE_SHAPE,
    FailureKind,
    FailurePlan,
    FailureSpec,
    _weibull_from_quantiles,
    sample_failure_time,
    sample_trace_failures,
)


def test_spec_requires_exactly_one_time():
    with pytest.raises(ValueError):
        FailureSpec()
    with pytest.raises(ValueError):
        FailureSpec(at_time=1.0, at_fraction=0.5)
    FailureSpec(at_time=1.0)
    FailureSpec(at_fraction=0.5)


def test_spec_rejects_negative_times():
    with pytest.raises(ValueError):
        FailureSpec(at_time=-1.0)
    with pytest.raises(ValueError):
        FailureSpec(at_fraction=-0.5)


def test_spec_rejects_non_positive_duration():
    with pytest.raises(ValueError):
        FailureSpec(at_time=1.0, duration=0.0)
    with pytest.raises(ValueError):
        FailureSpec(at_time=1.0, duration=-3.0)
    FailureSpec(kind=FailureKind.MACHINE_QUARANTINE, at_time=1.0, duration=5.0)


def test_plan_add_revalidates_mutated_spec():
    spec = FailureSpec(at_time=1.0)
    spec.at_fraction = 0.5  # specs are mutable; add() must re-check
    with pytest.raises(ValueError):
        FailurePlan().add(spec)


def test_resolve_time_absolute():
    assert FailureSpec(at_time=12.5).resolve_time(100.0) == 12.5


def test_resolve_time_fraction():
    assert FailureSpec(at_fraction=0.4).resolve_time(50.0) == pytest.approx(20.0)
    with pytest.raises(ValueError):
        FailureSpec(at_fraction=0.4).resolve_time(0.0)


def test_plan_filters_by_job():
    plan = FailurePlan()
    plan.add(FailureSpec(at_time=1.0, job_id="a"))
    plan.add(FailureSpec(at_time=2.0))
    assert len(plan.for_job("a")) == 2
    assert len(plan.for_job("b")) == 1
    assert len(plan) == 2


def test_weibull_fit_reproduces_quantiles():
    k, lam = _weibull_from_quantiles(0.5, 30.0, 0.9, 200.0)
    import math
    assert 1 - math.exp(-((30.0 / lam) ** k)) == pytest.approx(0.5)
    assert 1 - math.exp(-((200.0 / lam) ** k)) == pytest.approx(0.9)
    assert (TRACE_FAILURE_SHAPE, TRACE_FAILURE_SCALE) == (k, lam)


def test_weibull_fit_rejects_bad_quantiles():
    with pytest.raises(ValueError):
        _weibull_from_quantiles(0.9, 30.0, 0.5, 200.0)


def test_sampled_failure_times_match_paper_quantiles():
    rng = random.Random(1)
    samples = sorted(sample_failure_time(rng) for _ in range(4000))
    # Section V-F: ~50% of failures within 30s, ~90% within 200s.
    frac_30 = sum(1 for s in samples if s <= 30.0) / len(samples)
    frac_200 = sum(1 for s in samples if s <= 200.0) / len(samples)
    assert frac_30 == pytest.approx(0.5, abs=0.04)
    assert frac_200 == pytest.approx(0.9, abs=0.03)


def test_sample_trace_failures_rate():
    rng = random.Random(2)
    jobs = [f"job{i}" for i in range(1000)]
    plan = sample_trace_failures(jobs, failure_rate=0.3, rng=rng)
    assert 0.25 < len(plan) / 1000 < 0.35
    for spec in plan.specs:
        assert spec.at_fraction is not None
        assert 0 <= spec.at_fraction <= 0.95
        assert spec.kind == FailureKind.TASK_CRASH


def test_sample_trace_failures_rejects_bad_rate():
    with pytest.raises(ValueError):
        sample_trace_failures([], 1.5, random.Random(0))


def test_zero_rate_yields_empty_plan():
    plan = sample_trace_failures(["a", "b"], 0.0, random.Random(0))
    assert len(plan) == 0
