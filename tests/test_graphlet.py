"""Tests for graphlets and their dependency graph."""

from __future__ import annotations

import pytest

from repro.core.dag import Edge, JobDAG
from repro.core.graphlet import Graphlet, GraphletGraph
from repro.core.partition import partition_job
from repro.workloads import tpch

from conftest import chain_dag, make_stage


def test_dependencies_follow_cross_edges():
    graph = partition_job(chain_dag(blocking_stages=(1,)))
    g1, g2 = graph.graphlets
    assert graph.dependencies[g1.graphlet_id] == set()
    assert graph.dependencies[g2.graphlet_id] == {g1.graphlet_id}


def test_submission_order_is_topological():
    graph = partition_job(tpch.query_dag(9))
    order = graph.submission_order()
    position = {gid: i for i, gid in enumerate(order)}
    for gid, deps in graph.dependencies.items():
        for dep in deps:
            assert position[dep] < position[gid]


def test_q9_submission_order_matches_paper():
    """Section III-A2: graphlet 1 first, then 2 (after J4), 3, then 4."""
    graph = partition_job(tpch.query_dag(9))
    by_stages = {frozenset(g.stage_names): g.graphlet_id for g in graph.graphlets}
    order = graph.submission_order()
    g1 = by_stages[frozenset({"M1", "M2", "M3", "J4"})]
    g2 = by_stages[frozenset({"M5", "J6"})]
    g4 = by_stages[frozenset({"R11", "R12"})]
    assert order.index(g1) < order.index(g2) < order.index(g4)


def test_cross_and_internal_edges():
    dag = chain_dag(blocking_stages=(1,))
    graph = partition_job(dag)
    cross = graph.cross_edges()
    assert [(e.src, e.dst) for e in cross] == [("S1", "S2")]
    g2 = graph.graphlet_of("S2")
    internal = graph.internal_edges(g2.graphlet_id)
    assert [(e.src, e.dst) for e in internal] == [("S2", "S3")]


def test_graphlet_of_and_lookup():
    graph = partition_job(chain_dag())
    g = graph.graphlet_of("S2")
    assert "S2" in g
    assert graph.graphlet(g.graphlet_id) is g
    with pytest.raises(KeyError):
        graph.graphlet(999)


def test_task_count():
    dag = chain_dag(tasks=5)
    graph = partition_job(dag)
    assert graph.graphlets[0].task_count(dag) == 15


def test_uncovered_stage_rejected():
    dag = chain_dag()
    with pytest.raises(ValueError):
        GraphletGraph(dag=dag, graphlets=[
            Graphlet(graphlet_id=1, stage_names=["S1"], trigger_stage="S1"),
        ])


def test_unknown_stage_rejected():
    dag = chain_dag()
    with pytest.raises(ValueError):
        GraphletGraph(dag=dag, graphlets=[
            Graphlet(graphlet_id=1, stage_names=["S1", "S2", "S3", "ghost"],
                     trigger_stage="S1"),
        ])


def test_cyclic_graphlet_dependencies_detected():
    # Hand-build a graphlet graph whose units depend on each other.
    stages = [make_stage("a", blocking=True), make_stage("b", blocking=True)]
    dag = JobDAG("j", stages, [Edge("a", "b")])
    graph = GraphletGraph(
        dag=dag,
        graphlets=[
            Graphlet(graphlet_id=1, stage_names=["a"], trigger_stage="a"),
            Graphlet(graphlet_id=2, stage_names=["b"], trigger_stage="b"),
        ],
        dependencies={1: {2}, 2: {1}},
        stage_to_graphlet={"a": 1, "b": 2},
    )
    with pytest.raises(ValueError):
        graph.submission_order()
