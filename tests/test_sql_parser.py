"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.sql import FIG1_QUERY
from repro.sql.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import ParseError, parse


def test_minimal_select():
    stmt = parse("select a, b from t")
    assert [i.output_name for i in stmt.select_items] == ["a", "b"]
    assert isinstance(stmt.from_table, TableRef)
    assert stmt.from_table.name == "t"


def test_aliases():
    stmt = parse("select a as x, b y from t u")
    assert stmt.select_items[0].alias == "x"
    assert stmt.select_items[1].alias == "y"
    assert stmt.from_table.alias == "u"


def test_star():
    stmt = parse("select * from t")
    assert isinstance(stmt.select_items[0].expr, Star)


def test_arithmetic_precedence():
    stmt = parse("select a + b * c from t")
    expr = stmt.select_items[0].expr
    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


def test_parenthesised_expression():
    stmt = parse("select (a + b) * c from t")
    expr = stmt.select_items[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary_minus():
    stmt = parse("select -a from t")
    assert isinstance(stmt.select_items[0].expr, UnaryOp)


def test_where_and_or_precedence():
    stmt = parse("select a from t where x = 1 or y = 2 and z = 3")
    assert stmt.where.op == "or"
    assert stmt.where.right.op == "and"


def test_like_and_not_like():
    stmt = parse("select a from t where name like '%x%' and name not like 'y%'")
    clause = stmt.where
    assert clause.op == "and"
    assert clause.left.op == "like"
    assert isinstance(clause.right, UnaryOp) and clause.right.op == "not"


def test_between_desugars():
    stmt = parse("select a from t where x between 1 and 5")
    clause = stmt.where
    assert clause.op == "and"
    assert clause.left.op == ">=" and clause.right.op == "<="


def test_is_null():
    stmt = parse("select a from t where x is null")
    assert isinstance(stmt.where, FunctionCall)
    stmt = parse("select a from t where x is not null")
    assert isinstance(stmt.where, UnaryOp)


def test_joins_with_conditions():
    stmt = parse(
        "select a from t1 join t2 on t1.k = t2.k left join t3 on t2.j = t3.j"
    )
    assert len(stmt.joins) == 2
    assert stmt.joins[0].kind == "inner"
    assert stmt.joins[1].kind == "left"


def test_multi_term_join_condition():
    stmt = parse("select a from t1 join t2 on t1.x = t2.x and t1.y = t2.y")
    assert stmt.joins[0].condition.op == "and"


def test_group_by_order_by_limit():
    stmt = parse(
        "select a, sum(b) s from t group by a order by a desc, s limit 10"
    )
    assert len(stmt.group_by) == 1
    assert stmt.order_by[0].descending is True
    assert stmt.order_by[1].descending is False
    assert stmt.limit == 10
    assert stmt.is_aggregate


def test_count_star_and_distinct():
    stmt = parse("select count(*) c, count(distinct x) d from t")
    count = stmt.select_items[0].expr
    assert isinstance(count.args[0], Star)
    assert stmt.select_items[1].expr.distinct


def test_subquery_in_from():
    stmt = parse("select x from (select a as x from t) sub")
    assert isinstance(stmt.from_table, SubqueryRef)
    assert stmt.from_table.alias == "sub"
    assert stmt.from_table.query.from_table.name == "t"


def test_fig1_query_parses():
    """The paper's Fig. 1 job text (TPC-H Q9) must parse completely."""
    stmt = parse(FIG1_QUERY)
    assert isinstance(stmt.from_table, SubqueryRef)
    inner = stmt.from_table.query
    assert len(inner.joins) == 5
    assert stmt.limit == 999999
    assert stmt.is_aggregate
    assert [i.output_name for i in stmt.select_items] == [
        "nation", "o_year", "sum_profit",
    ]


def test_function_call_substr():
    stmt = parse("select substr(o_orderdate, 1, 4) from orders")
    call = stmt.select_items[0].expr
    assert call.name == "substr"
    assert len(call.args) == 3
    assert call.args[1] == Literal(1)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("selec a from t")
    with pytest.raises(ParseError):
        parse("select a from")
    with pytest.raises(ParseError):
        parse("select a from t where")
    with pytest.raises(ParseError):
        parse("select a from t extra junk")
    with pytest.raises(ParseError):
        parse("select a from t join u")  # missing ON


def test_case_when_expression():
    from repro.sql.ast import CaseExpr

    stmt = parse(
        "select case when x > 1 then 'big' when x = 1 then 'one' "
        "else 'small' end as size from t"
    )
    expr = stmt.select_items[0].expr
    assert isinstance(expr, CaseExpr)
    assert len(expr.whens) == 2
    assert expr.default == Literal("small")


def test_case_without_else():
    from repro.sql.ast import CaseExpr

    stmt = parse("select case when x = 1 then 2 end from t")
    expr = stmt.select_items[0].expr
    assert isinstance(expr, CaseExpr)
    assert expr.default is None


def test_case_requires_when():
    with pytest.raises(ParseError):
        parse("select case else 1 end from t")


def test_in_list_and_not_in():
    from repro.sql.ast import InList

    stmt = parse("select a from t where x in (1, 2, 3) and y not in ('a')")
    clause = stmt.where
    assert isinstance(clause.left, InList) and not clause.left.negated
    assert len(clause.left.values) == 3
    assert isinstance(clause.right, InList) and clause.right.negated


def test_aggregate_inside_case_detected():
    stmt = parse("select case when sum(x) > 1 then 1 else 0 end from t")
    assert stmt.is_aggregate
