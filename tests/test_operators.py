"""Tests for the operator vocabulary and blocking classification."""

from __future__ import annotations

from repro.core.operators import (
    BLOCKING_OPERATORS,
    Operator,
    OperatorKind,
    ops,
    stage_is_blocking,
)


def test_paper_blocking_set():
    # Section III-A1 lists exactly these global-sort operators.
    expected = {
        OperatorKind.STREAMED_AGGREGATE,
        OperatorKind.MERGE_JOIN,
        OperatorKind.WINDOW,
        OperatorKind.SORT_BY,
        OperatorKind.MERGE_SORT,
    }
    assert BLOCKING_OPERATORS == frozenset(expected)


def test_streaming_operators_not_blocking():
    for kind in (OperatorKind.TABLE_SCAN, OperatorKind.FILTER,
                 OperatorKind.HASH_JOIN, OperatorKind.HASH_AGGREGATE,
                 OperatorKind.SHUFFLE_READ, OperatorKind.SHUFFLE_WRITE):
        assert not Operator(kind).is_blocking


def test_ops_builder():
    chain = ops(OperatorKind.TABLE_SCAN, OperatorKind.FILTER)
    assert [op.kind for op in chain] == [OperatorKind.TABLE_SCAN, OperatorKind.FILTER]


def test_stage_is_blocking():
    assert stage_is_blocking(ops(OperatorKind.SHUFFLE_READ, OperatorKind.MERGE_SORT))
    assert not stage_is_blocking(ops(OperatorKind.SHUFFLE_READ, OperatorKind.FILTER))
    assert not stage_is_blocking(())


def test_operator_str():
    assert str(Operator(OperatorKind.MERGE_JOIN)) == "MergeJoin"
    assert str(Operator(OperatorKind.MERGE_JOIN, "on x")) == "MergeJoin(on x)"
