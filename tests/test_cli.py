"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _experiment_registry, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("fig9a", "fig14", "table1", "ablation-heartbeat"):
        assert key in out


def test_experiment_command_runs(capsys):
    assert main(["experiment", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "M1" in out and "498" in out


def test_experiment_unknown_key(capsys):
    assert main(["experiment", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_registry_covers_every_figure_and_table():
    keys = set(_experiment_registry())
    for figure in ("fig3", "fig8", "fig9a", "fig9b", "fig10", "fig11",
                   "fig12", "fig13", "fig14", "fig15", "fig16", "table1"):
        assert figure in keys
    assert sum(1 for k in keys if k.startswith("ablation")) >= 6


def test_sql_command(capsys):
    assert main([
        "sql", "--query", "select count(*) c from nation",
        "--scale", "1", "--machines", "4", "--execute",
    ]) == 0
    out = capsys.readouterr().out
    assert "graphlets" in out
    assert "'c': 25" in out


def test_sql_command_engine_flag(capsys):
    for engine in ("row", "columnar"):
        assert main([
            "sql", "--query", "select count(*) c from nation",
            "--scale", "1", "--machines", "4", "--execute",
            "--engine", engine,
        ]) == 0
        out = capsys.readouterr().out
        assert "'c': 25" in out
        assert f"engine={engine}" in out


def test_sql_command_reports_chosen_engine(capsys):
    assert main([
        "sql", "--query", "select count(*) c from nation",
        "--scale", "1", "--machines", "4", "--execute",
    ]) == 0
    out = capsys.readouterr().out
    assert "engine=columnar" in out


def test_bench_parser_defaults():
    args = build_parser().parse_args(["bench"])
    assert args.suite == "all"
    assert args.out == "BENCH_simulator.json"
    assert args.sql_out == "BENCH_sql.json"
    assert args.check is False
    assert args.tolerance == 0.25


def test_bench_check_reports_regression(tmp_path, capsys, monkeypatch):
    import json

    from repro.cli import _cmd_bench
    from repro.experiments import bench

    committed = tmp_path / "BENCH_sql.json"
    committed.write_text(json.dumps({"q1_aggregate": {"speedup": 100.0}}))
    monkeypatch.setattr(
        bench, "run_sql_benchmarks",
        lambda quick, echo: {"q1_aggregate": {"speedup": 1.0}},
    )
    args = build_parser().parse_args([
        "bench", "--suite", "sql", "--check",
        "--sql-out", str(committed),
    ])
    assert _cmd_bench(args) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # The committed file was compared against, not overwritten.
    assert json.loads(committed.read_text())["q1_aggregate"]["speedup"] == 100.0


def test_bench_check_passes_and_skips_missing_file(tmp_path, capsys, monkeypatch):
    from repro.cli import _cmd_bench
    from repro.experiments import bench

    monkeypatch.setattr(
        bench, "run_sql_benchmarks",
        lambda quick, echo: {"q1_aggregate": {"speedup": 5.0}},
    )
    args = build_parser().parse_args([
        "bench", "--suite", "sql", "--check",
        "--sql-out", str(tmp_path / "missing.json"),
    ])
    assert _cmd_bench(args) == 0
    captured = capsys.readouterr()
    assert "bench check passed" in captured.out
    assert "no committed" in captured.err


def test_replay_command(capsys):
    assert main(["replay", "--jobs", "30"]) == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "swift" in out and "jetscope" in out and "speedup" in out
    # The job-count --jobs spelling still parses but is deprecated.
    assert "deprecated" in captured.err and "--n-jobs" in captured.err


def test_replay_canonical_n_jobs_flag(capsys):
    assert main(["replay", "--n-jobs", "30"]) == 0
    captured = capsys.readouterr()
    assert "replaying 30 jobs" in captured.out
    assert "deprecated" not in captured.err


def test_deprecated_output_flag_maps_to_out(capsys):
    args = build_parser().parse_args(["report", "--output", "x.md"])
    assert args.out == "x.md"
    err = capsys.readouterr().err
    assert "deprecated" in err and "--out" in err


def test_trace_command_writes_perfetto_trace(tmp_path, capsys):
    import json

    base = tmp_path / "t"
    assert main(["trace", "fig9a", "--out", str(base), "--format", "both"]) == 0
    out = capsys.readouterr().out
    assert "records" in out and str(base) + ".json" in out
    chrome = json.loads((tmp_path / "t.json").read_text())
    assert {"traceEvents", "displayTimeUnit"} <= set(chrome)
    assert any(e["ph"] == "X" for e in chrome["traceEvents"])
    jsonl_lines = (tmp_path / "t.jsonl").read_text().splitlines()
    assert json.loads(jsonl_lines[0])["args"]["schema"] == 1


def test_trace_command_normalizes_key_spellings():
    from repro.cli import _normalize_trace_key, _trace_registry

    assert _normalize_trace_key("fig03") == "fig3"
    assert _normalize_trace_key("FIG9A") == "fig9a"
    assert _normalize_trace_key("terasort") == "table1"
    assert {"fig3", "fig9a", "fig9b", "fig13", "table1",
            "replay"} <= set(_trace_registry())


def test_trace_command_unknown_experiment(capsys):
    assert main(["trace", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_maybe_plot_renders_scalability_chart(capsys):
    from repro.cli import _maybe_plot
    from repro.experiments.harness import ExperimentResult

    result = ExperimentResult(name="fake_scaling")
    for executors, speedup, ideal in ((10_000, 1.0, 1.0), (20_000, 1.9, 2.0)):
        result.add(executors=executors, makespan_s=1.0, speedup=speedup, ideal=ideal)
    _maybe_plot(result)
    out = capsys.readouterr().out
    assert "o=ideal" in out and "x=measured" in out


def test_maybe_plot_noop_for_other_results(capsys):
    from repro.cli import _maybe_plot
    from repro.experiments.harness import ExperimentResult

    result = ExperimentResult(name="plain")
    result.add(metric="a", value=1.0)
    _maybe_plot(result)
    assert capsys.readouterr().out == ""


def test_experiment_json_output(capsys):
    import json

    assert main(["experiment", "fig13", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["name"] == "fig13_q13_details"
    assert payload["rows"][0]["stage"] == "M1"


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------

def test_bench_parser_accepts_shuffle_suite():
    args = build_parser().parse_args(["bench", "--suite", "shuffle"])
    assert args.suite == "shuffle"


def test_bench_shuffle_merges_entry(tmp_path, capsys, monkeypatch):
    import json

    from repro.cli import _cmd_bench
    from repro.experiments import bench

    path = tmp_path / "BENCH_simulator.json"
    path.write_text(json.dumps({"terasort": {"speedup": 2.0}}))
    fake = {"shuffle": {
        "job": "terasort_8x8", "machine_lost": 0, "at_fraction": 0.5,
        "v1_recovery_s": 5.0, "v2_recovery_s": 0.0, "v2_failovers": 1,
        "recovery_improvement": 5000.0,
    }}
    monkeypatch.setattr(
        bench, "run_shuffle_benchmarks", lambda quick, echo: fake
    )
    args = build_parser().parse_args([
        "bench", "--suite", "shuffle", "--out", str(path),
    ])
    assert _cmd_bench(args) == 0
    assert "shuffle recovery" in capsys.readouterr().out
    merged = json.loads(path.read_text())
    # Merged alongside, not clobbering, the existing scenarios.
    assert merged["terasort"] == {"speedup": 2.0}
    assert merged["shuffle"]["recovery_improvement"] == 5000.0


def test_chaos_parser_accepts_named_profiles():
    from repro.chaos import PROFILES

    for name in PROFILES:
        args = build_parser().parse_args(["chaos", "--profile", name])
        assert args.profile == name
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--profile", "nope"])


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.trace == "paper"
    assert args.out == "service_out"
    assert args.seed == 7
    assert args.audit is False
    assert args.check is False


def test_serve_parser_accepts_service_bench_suite():
    args = build_parser().parse_args(["bench", "--suite", "service"])
    assert args.suite == "service"


def test_serve_smoke_writes_outputs(tmp_path, capsys):
    out = tmp_path / "svc"
    assert main(["serve", "--trace", "smoke", "--n-jobs", "16",
                 "--n-tenants", "8", "--out", str(out)]) == 0
    assert (out / "queue_times.csv").exists()
    assert (out / "summary.json").exists()
    stdout = capsys.readouterr().out
    assert "time-in-queue" in stdout
    header = (out / "queue_times.csv").read_text().splitlines()[0]
    assert header.startswith("seq,tenant,job_id,status")


def test_serve_check_passes_deterministically(tmp_path, capsys):
    out = tmp_path / "svc"
    assert main(["serve", "--trace", "smoke", "--n-jobs", "16",
                 "--n-tenants", "8", "--audit", "--check",
                 "--out", str(out)]) == 0
    assert "serve check passed" in capsys.readouterr().out


def test_serve_summary_json_has_percentiles(tmp_path):
    import json

    out = tmp_path / "svc"
    assert main(["serve", "--trace", "smoke", "--n-jobs", "12",
                 "--out", str(out)]) == 0
    payload = json.loads((out / "summary.json").read_text())
    totals = payload["totals"]
    assert {"p50", "p95", "p99"} <= set(totals["queue_time"])
    assert totals["submitted"] == 12
