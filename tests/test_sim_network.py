"""Tests for the network model: setup latency, incast, transfers."""

from __future__ import annotations

import pytest

from repro.sim.config import NetworkConfig
from repro.sim.network import NetworkModel


@pytest.fixture
def net() -> NetworkModel:
    return NetworkModel(NetworkConfig())


def test_setup_time_grows_with_congestion(net):
    idle = net.connection_setup_time(0)
    busy = net.connection_setup_time(100_000)
    saturated = net.connection_setup_time(10_000_000)
    assert idle == net.config.conn_setup_base
    assert idle < busy < saturated < net.config.conn_setup_congested


def test_setup_time_uses_tracked_connections_by_default(net):
    baseline = net.connection_setup_time()
    net.register_connections(200_000)
    assert net.connection_setup_time() > baseline


def test_setup_time_for_respects_parallelism(net):
    one_round = net.setup_time_for(net.config.conn_parallelism, 0)
    two_rounds = net.setup_time_for(net.config.conn_parallelism + 1, 0)
    assert two_rounds == pytest.approx(2 * one_round)
    assert net.setup_time_for(0, 0) == 0.0


def test_setup_time_rejects_negative(net):
    with pytest.raises(ValueError):
        net.setup_time_for(-1, 0)
    with pytest.raises(ValueError):
        net.connection_setup_time(-5)


def test_retransmission_rate_is_quadratic_then_capped(net):
    sat = net.config.retx_saturation
    quarter = net.retransmission_rate(int(sat / 2))
    assert quarter == pytest.approx(net.config.retx_cap / 4)
    assert net.retransmission_rate(int(sat)) == pytest.approx(net.config.retx_cap)
    assert net.retransmission_rate(int(sat * 10)) == net.config.retx_cap


def test_effective_bandwidth_shared_by_flows(net):
    solo = net.effective_bandwidth(1, 0)
    shared = net.effective_bandwidth(4, 0)
    assert shared == pytest.approx(solo / 4)


def test_effective_bandwidth_degrades_under_retransmission(net):
    clean = net.effective_bandwidth(1, 0)
    congested = net.effective_bandwidth(1, int(net.config.retx_saturation))
    expected = clean / (1.0 + net.config.retx_throughput_penalty * net.config.retx_cap)
    assert congested == pytest.approx(expected)


def test_effective_bandwidth_rejects_zero_flows(net):
    with pytest.raises(ValueError):
        net.effective_bandwidth(0)


def test_register_release_roundtrip(net):
    net.register_connections(100)
    net.register_connections(50)
    assert net.open_connections == 150
    net.release_connections(100)
    assert net.open_connections == 50
    net.release_connections(500)
    assert net.open_connections == 0


def test_register_rejects_negative(net):
    with pytest.raises(ValueError):
        net.register_connections(-1)
    with pytest.raises(ValueError):
        net.release_connections(-1)


def test_transfer_estimate_components(net):
    estimate = net.transfer_estimate(
        bytes_to_move=1e9, flows_sharing_nic=2, connections_per_task=10,
        concurrent_connections=0,
    )
    assert estimate.setup_time == pytest.approx(net.setup_time_for(10, 0))
    expected_transfer = 1e9 / net.effective_bandwidth(2, 0) + net.config.rtt
    assert estimate.transfer_time == pytest.approx(expected_transfer)
    assert estimate.total == pytest.approx(estimate.setup_time + estimate.transfer_time)


def test_transfer_estimate_rejects_negative_bytes(net):
    with pytest.raises(ValueError):
        net.transfer_estimate(-1, 1, 1)


def test_memory_copy_time(net):
    one = net.memory_copy_time(net.config.memory_bandwidth)
    assert one == pytest.approx(1.0)
    assert net.memory_copy_time(1e9, copies=0) == 0.0
    with pytest.raises(ValueError):
        net.memory_copy_time(-1)
