"""Runtime tests: failure injection and recovery policies."""

from __future__ import annotations

import pytest

from repro.baselines import restart_policy
from repro.core.policies import swift_policy
from repro.core.runtime import SwiftRuntime
from repro.sim.cluster import Cluster, MachineState
from repro.sim.failures import FailureKind, FailurePlan, FailureSpec

from conftest import as_job, chain_dag


def run_with_failures(dag, specs, policy=None, machines=4, executors=8,
                      reference=None):
    if reference is None:
        baseline_runtime = SwiftRuntime(
            Cluster.build(machines, executors), policy or swift_policy()
        )
        reference = baseline_runtime.execute(as_job(dag)).metrics.run_time
    runtime = SwiftRuntime(
        Cluster.build(machines, executors),
        policy or swift_policy(),
        failure_plan=FailurePlan(list(specs)),
        reference_duration=reference,
    )
    result = runtime.execute(as_job(dag))
    return result, reference, runtime


def baseline_time(dag, policy=None, machines=4, executors=8):
    runtime = SwiftRuntime(Cluster.build(machines, executors), policy or swift_policy())
    return runtime.execute(as_job(dag)).metrics.run_time


def test_task_crash_mid_stage_recovers_and_completes():
    dag = chain_dag("crash", blocking_stages=(1,), tasks=4)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.2)
    result, reference, _ = run_with_failures(dag, [spec])
    assert result.completed
    assert result.metrics.failures == 1
    assert result.metrics.run_time >= reference


def test_fine_grained_beats_job_restart():
    dag = chain_dag("cmp", blocking_stages=(1,), tasks=4, n_stages=4)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S2", at_fraction=0.6)
    fine, reference, _ = run_with_failures(dag, [spec])
    restart, _, _ = run_with_failures(dag, [spec], policy=restart_policy(),
                                      reference=reference)
    assert fine.metrics.run_time <= restart.metrics.run_time
    assert restart.metrics.restarts == 1
    assert fine.metrics.restarts == 0


def test_restart_slowdown_tracks_injection_time():
    """Restarting at fraction f of the job costs ~f extra (Fig. 14)."""
    dag = chain_dag("r", blocking_stages=(1,), tasks=4, n_stages=3)
    reference = baseline_time(dag, restart_policy())
    for fraction in (0.3, 0.7):
        spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=fraction)
        result, _, _ = run_with_failures(dag, [spec], policy=restart_policy(),
                                         reference=reference)
        slowdown = result.metrics.run_time / reference - 1.0
        assert slowdown == pytest.approx(fraction, abs=0.15)


def test_failure_after_output_consumed_is_noop():
    """Idempotent task whose consumers already read its data: no recovery
    action, no slowdown (the paper's M2-at-t20 case)."""
    dag = chain_dag("noop", blocking_stages=(1,), tasks=4)
    reference = baseline_time(dag)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.95)
    result, _, _ = run_with_failures(dag, [spec], reference=reference)
    assert result.metrics.run_time == pytest.approx(reference, rel=0.02)


def test_non_idempotent_failure_reruns_successors():
    ni = chain_dag("ni", tasks=2, n_stages=3, idempotent=False)
    idem = chain_dag("id", tasks=2, n_stages=3, idempotent=True)
    reference_ni = baseline_time(ni)
    reference_id = baseline_time(idem)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.5)
    r_ni, _, _ = run_with_failures(ni, [spec], reference=reference_ni)
    r_id, _, _ = run_with_failures(idem, [spec], reference=reference_id)
    ni_slow = r_ni.metrics.run_time - reference_ni
    id_slow = r_id.metrics.run_time - reference_id
    assert ni_slow >= id_slow


def test_application_error_fails_job_without_retry():
    dag = chain_dag("app", tasks=2)
    spec = FailureSpec(kind=FailureKind.APPLICATION_ERROR, stage="S1", at_fraction=0.3)
    result, _, runtime = run_with_failures(dag, [spec])
    assert result.failed
    assert not result.completed
    # Resources are reclaimed.
    assert runtime.cluster.free_executor_count() == runtime.cluster.total_executors()


def test_machine_crash_marks_machine_dead_and_recovers():
    dag = chain_dag("mc", tasks=4, n_stages=2)
    spec = FailureSpec(kind=FailureKind.MACHINE_CRASH, machine_id=0, at_fraction=0.3)
    result, reference, runtime = run_with_failures(dag, [spec])
    assert runtime.cluster.machines[0].state == MachineState.DEAD
    assert result.completed
    assert result.metrics.run_time >= reference


def test_machine_crash_detection_uses_heartbeat_delay():
    dag = chain_dag("hb", tasks=2, n_stages=1)
    reference = baseline_time(dag)
    crash = FailureSpec(kind=FailureKind.MACHINE_CRASH, machine_id=0, at_fraction=0.3)
    task = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.3)
    r_crash, _, _ = run_with_failures(dag, [crash], reference=reference)
    r_task, _, _ = run_with_failures(dag, [task], reference=reference)
    # Heartbeat detection (seconds) is slower than self-report (50ms).
    assert r_crash.metrics.run_time > r_task.metrics.run_time


def test_repeated_failures_quarantine_machine():
    dag = chain_dag("q", tasks=8, n_stages=1)
    specs = [
        FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", task_index=i,
                    at_fraction=0.1 + 0.02 * i)
        for i in range(8)
    ]
    result, _, runtime = run_with_failures(dag, specs, machines=1, executors=16)
    assert result.completed
    assert runtime.admin.stats.machines_marked_read_only >= 1


def test_failure_on_finished_job_is_ignored():
    dag = chain_dag("late", tasks=2, n_stages=1)
    reference = baseline_time(dag)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1",
                       at_time=reference * 10)
    result, _, _ = run_with_failures(dag, [spec], reference=reference)
    assert result.completed
    assert result.metrics.run_time == pytest.approx(reference, rel=0.01)


def test_restart_preserves_submit_time_latency():
    dag = chain_dag("lat", tasks=2, n_stages=2)
    reference = baseline_time(dag, restart_policy())
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.5)
    result, _, _ = run_with_failures(dag, [spec], policy=restart_policy(),
                                     reference=reference)
    assert result.metrics.latency >= result.metrics.run_time
    assert result.metrics.failures == 1


def test_machine_quarantine_drains_and_recovers():
    dag = chain_dag("mq", tasks=8, n_stages=2)
    reference = baseline_time(dag)
    spec = FailureSpec(kind=FailureKind.MACHINE_QUARANTINE, machine_id=0,
                       at_fraction=0.2, duration=reference * 0.3)
    result, _, runtime = run_with_failures(dag, [spec], reference=reference)
    assert result.completed
    assert runtime.admin.stats.machines_marked_read_only == 1
    # The timed quarantine ended: machine healthy, read-only flag cleared.
    assert runtime.cluster.machines[0].state == MachineState.HEALTHY
    assert not runtime.admin.health.read_only


def test_cache_worker_loss_recovers_and_completes():
    dag = chain_dag("cw", blocking_stages=(1,), tasks=8)
    spec = FailureSpec(kind=FailureKind.CACHE_WORKER_LOSS, machine_id=0,
                       at_fraction=0.4)
    result, _, runtime = run_with_failures(dag, [spec])
    assert result.completed
    # Nothing leaked in the lost worker.
    assert runtime.cluster.machines[0].cache_worker.bytes_in_memory == 0.0


def test_retry_budget_escalates_to_job_failure():
    from repro.sim.config import RetryConfig, SimConfig

    dag = chain_dag("rb", tasks=2, n_stages=1)
    reference = baseline_time(dag)
    config = SimConfig(retry=RetryConfig(max_task_retries=1))
    specs = [
        FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", task_index=0,
                    at_fraction=fraction)
        for fraction in (0.3, 0.9)
    ]
    runtime = SwiftRuntime(
        Cluster.build(4, 8), swift_policy(), config=config,
        failure_plan=FailurePlan(list(specs)), reference_duration=reference,
    )
    result = runtime.execute(as_job(dag))
    assert result.failed
    assert "retry budget exhausted" in result.reason
    # Resources are reclaimed despite the mid-run abort.
    assert runtime.cluster.free_executor_count() == runtime.cluster.total_executors()


def test_retry_backoff_grows_and_caps():
    from repro.sim.config import RetryConfig

    retry = RetryConfig(backoff_base=0.2, backoff_factor=2.0, backoff_cap=1.0)
    assert retry.backoff(1) == pytest.approx(0.2)
    assert retry.backoff(2) == pytest.approx(0.4)
    assert retry.backoff(3) == pytest.approx(0.8)
    assert retry.backoff(6) == 1.0
    with pytest.raises(ValueError):
        retry.backoff(0)


def test_retry_config_validates():
    from repro.sim.config import RetryConfig

    with pytest.raises(ValueError):
        RetryConfig(max_task_retries=0).validate()
    with pytest.raises(ValueError):
        RetryConfig(backoff_base=0.5, backoff_cap=0.1).validate()
    with pytest.raises(ValueError):
        RetryConfig(jitter_frac=1.5).validate()


def test_recovery_counters_reconcile_with_decisions():
    dag = chain_dag("rc", blocking_stages=(1,), tasks=4)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.3)
    result, _, _ = run_with_failures(dag, [spec])
    m = result.metrics
    assert result.completed
    # One failure -> one RecoveryDecision, tallied under its case.
    assert sum(m.recoveries_by_case.values()) == 1
    assert m.noop_recoveries == 0
    assert m.task_reruns >= 1
    # Every planned re-run actually executed (and nothing extra did).
    assert m.task_reruns == m.planned_rerun_tasks


def test_noop_recovery_counters():
    dag = chain_dag("noc", blocking_stages=(1,), tasks=4)
    reference = baseline_time(dag)
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage="S1", at_fraction=0.95)
    result, _, _ = run_with_failures(dag, [spec], reference=reference)
    m = result.metrics
    assert result.completed
    assert m.noop_recoveries == 1
    assert m.task_reruns == 0
    assert m.planned_rerun_tasks == 0
    assert m.resends == 0


def test_process_restart_relaunches_executor_and_recovers():
    from repro.sim.cluster import ExecutorState

    dag = chain_dag("pr", tasks=2, n_stages=1)
    reference = baseline_time(dag)
    spec = FailureSpec(kind=FailureKind.PROCESS_RESTART, stage="S1",
                       at_fraction=0.4)
    result, _, runtime = run_with_failures(dag, [spec], reference=reference)
    assert result.completed
    assert result.metrics.run_time > reference
    # The relaunched executor got a fresh PID and returned to the pool.
    pids = [e.pid for e in runtime.cluster.iter_executors()]
    assert any(p > 1_000_000 for p in pids)
    assert all(
        e.state == ExecutorState.IDLE for e in runtime.cluster.iter_executors()
    )
