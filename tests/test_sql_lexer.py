"""Tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.sql.lexer import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_simple_select():
    tokens = tokenize("select a from t")
    assert [t.text for t in tokens[:-1]] == ["select", "a", "from", "t"]
    assert tokens[0].kind == TokenKind.KEYWORD
    assert tokens[1].kind == TokenKind.IDENT
    assert tokens[-1].kind == TokenKind.EOF


def test_string_literal():
    tokens = tokenize("where name like '%green%'")
    strings = [t for t in tokens if t.kind == TokenKind.STRING]
    assert strings[0].text == "%green%"


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("select 'oops")


def test_numbers_int_and_float():
    tokens = tokenize("1 23.5 0.25")
    numbers = [t.text for t in tokens if t.kind == TokenKind.NUMBER]
    assert numbers == ["1", "23.5", "0.25"]


def test_qualified_name_not_a_float():
    tokens = tokenize("l.l_suppkey")
    assert [t.kind for t in tokens[:-1]] == [
        TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT,
    ]


def test_operators():
    tokens = tokenize("a <> b >= c <= d != e")
    ops = [t.text for t in tokens if t.kind == TokenKind.OPERATOR]
    assert ops == ["<>", ">=", "<=", "!="]


def test_comments_skipped():
    tokens = tokenize("select a -- comment here\nfrom t")
    assert [t.text for t in tokens[:-1]] == ["select", "a", "from", "t"]


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT A FROM T")
    assert tokens[0].kind == TokenKind.KEYWORD
    assert tokens[0].lowered == "select"


def test_punctuation():
    source = "f(a, b) * c;"
    expected = [
        TokenKind.IDENT, TokenKind.LPAREN, TokenKind.IDENT, TokenKind.COMMA,
        TokenKind.IDENT, TokenKind.RPAREN, TokenKind.STAR, TokenKind.IDENT,
        TokenKind.SEMICOLON, TokenKind.EOF,
    ]
    assert kinds(source) == expected


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("select @")
