"""Tests for the Terasort workload."""

from __future__ import annotations

import pytest

from repro.core.dag import EdgeMode
from repro.core.partition import partition_job
from repro.workloads import terasort


def test_structure():
    dag = terasort.terasort_dag(100, 50)
    assert dag.stage("map").task_count == 100
    assert dag.stage("reduce").task_count == 50
    assert dag.roots() == ["map"] and dag.sinks() == ["reduce"]


def test_map_reduce_edge_is_barrier():
    """The map side sorts, so the shuffle edge is a barrier and Swift
    splits the job into two graphlets."""
    dag = terasort.terasort_dag(10, 10)
    assert dag.edge_mode(dag.edges[0]) == EdgeMode.BARRIER
    assert len(partition_job(dag)) == 2


def test_map_input_size_default():
    dag = terasort.terasort_dag(10, 10)
    assert dag.stage("map").scan_bytes_per_task == terasort.MAP_INPUT_BYTES == 200e6


def test_data_conservation():
    dag = terasort.terasort_dag(100, 25)
    maps, reduces = dag.stage("map"), dag.stage("reduce")
    assert maps.total_output_bytes == pytest.approx(100 * 200e6)
    assert reduces.total_output_bytes == pytest.approx(maps.total_output_bytes)


def test_table1_grid():
    assert terasort.TABLE1_SIZES == ((250, 250), (500, 500), (1000, 1000), (1500, 1500))


def test_rejects_bad_sizes():
    with pytest.raises(ValueError):
        terasort.terasort_dag(0, 5)
    with pytest.raises(ValueError):
        terasort.terasort_dag(5, 0)


def test_job_wrapper_and_id():
    job = terasort.terasort_job(3, 4, submit_time=1.0)
    assert job.job_id == "terasort_3x4"
    assert job.submit_time == 1.0
