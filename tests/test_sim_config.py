"""Tests for simulator configuration validation and helpers."""

from __future__ import annotations

import pytest

from repro.sim.config import (
    AdminConfig,
    CacheWorkerConfig,
    DiskConfig,
    ExecutorConfig,
    NetworkConfig,
    ShuffleConfig,
    SimConfig,
)


def test_default_config_validates():
    SimConfig().validate()


def test_network_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        NetworkConfig(nic_bandwidth=0).validate()


def test_network_rejects_inverted_setup_latencies():
    with pytest.raises(ValueError):
        NetworkConfig(conn_setup_base=0.5, conn_setup_congested=0.1).validate()


def test_network_rejects_bad_retx_cap():
    with pytest.raises(ValueError):
        NetworkConfig(retx_cap=1.5).validate()


def test_network_rejects_zero_parallelism():
    with pytest.raises(ValueError):
        NetworkConfig(conn_parallelism=0).validate()


def test_disk_rejects_bad_values():
    with pytest.raises(ValueError):
        DiskConfig(sequential_bandwidth=-1).validate()
    with pytest.raises(ValueError):
        DiskConfig(disks_per_machine=0).validate()


def test_cache_worker_rejects_bad_values():
    with pytest.raises(ValueError):
        CacheWorkerConfig(memory_capacity=0).validate()
    with pytest.raises(ValueError):
        CacheWorkerConfig(spill_chunk_bytes=0).validate()


def test_shuffle_thresholds_must_be_ordered():
    ShuffleConfig(direct_threshold=10, local_threshold=20).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(direct_threshold=20, local_threshold=10).validate()
    with pytest.raises(ValueError):
        ShuffleConfig(direct_threshold=0, local_threshold=10).validate()


def test_shuffle_production_thresholds():
    cfg = ShuffleConfig()
    assert cfg.direct_threshold == 10_000
    assert cfg.local_threshold == 90_000


def test_admin_heartbeat_interval_by_scale():
    cfg = AdminConfig()
    assert cfg.heartbeat_interval(100) == 5.0
    assert cfg.heartbeat_interval(500) == 5.0
    assert cfg.heartbeat_interval(501) == 10.0
    assert cfg.heartbeat_interval(5_000) == 10.0
    assert cfg.heartbeat_interval(50_000) == 15.0


def test_admin_rejects_negative_processing_time():
    with pytest.raises(ValueError):
        AdminConfig(event_processing_time=-1).validate()


def test_admin_rejects_empty_heartbeat_table():
    with pytest.raises(ValueError):
        AdminConfig(heartbeat_intervals=()).validate()


def test_executor_rejects_negative_overheads():
    with pytest.raises(ValueError):
        ExecutorConfig(prelaunched_overhead=-0.1).validate()
    with pytest.raises(ValueError):
        ExecutorConfig(coldstart_mean=1.0, coldstart_jitter=2.0).validate()


def test_sim_config_rejects_bad_top_level():
    cfg = SimConfig()
    cfg.executors_per_machine = 0
    with pytest.raises(ValueError):
        cfg.validate()
    cfg = SimConfig()
    cfg.task_processing_rate = 0
    with pytest.raises(ValueError):
        cfg.validate()


def test_copy_is_deep_for_sections():
    cfg = SimConfig()
    clone = cfg.copy()
    clone.network.nic_bandwidth = 1.0
    assert cfg.network.nic_bandwidth != 1.0


def test_copy_with_override():
    clone = SimConfig().copy(seed=99)
    assert clone.seed == 99


def test_copy_rejects_unknown_field():
    with pytest.raises(AttributeError):
        SimConfig().copy(nonexistent=1)
