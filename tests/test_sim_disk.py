"""Tests for the disk model."""

from __future__ import annotations

import pytest

from repro.sim.config import DiskConfig
from repro.sim.disk import DiskModel


@pytest.fixture
def disk() -> DiskModel:
    return DiskModel(DiskConfig())


def test_machine_bandwidth_capped_at_one_spindle(disk):
    assert disk.machine_bandwidth(1) == disk.config.sequential_bandwidth


def test_machine_bandwidth_shared_beyond_spindles(disk):
    spindles = disk.config.disks_per_machine
    total = disk.config.sequential_bandwidth * spindles
    crowded = disk.machine_bandwidth(spindles * 2)
    assert crowded == pytest.approx(total / (spindles * 2))


def test_machine_bandwidth_rejects_zero_tasks(disk):
    with pytest.raises(ValueError):
        disk.machine_bandwidth(0)


def test_write_time_includes_per_file_overhead(disk):
    base = disk.write_time(1e9, n_files=1)
    many = disk.write_time(1e9, n_files=101)
    assert many - base == pytest.approx(100 * disk.config.per_file_overhead)


def test_read_time_random_penalty(disk):
    seq = disk.read_time(1e9, n_files=0)
    rand = disk.read_time(1e9, n_files=0, random_access=True)
    assert rand == pytest.approx(seq * disk.config.random_penalty)


def test_read_write_reject_negative(disk):
    with pytest.raises(ValueError):
        disk.write_time(-1)
    with pytest.raises(ValueError):
        disk.read_time(-1)
    with pytest.raises(ValueError):
        disk.read_time(1, n_files=-1)


def test_spill_is_sequential_full_bandwidth(disk):
    t = disk.spill_time(disk.config.sequential_bandwidth)
    assert t == pytest.approx(1.0)
    with pytest.raises(ValueError):
        disk.spill_time(-1)


def test_contention_slows_io(disk):
    fast = disk.read_time(1e9, concurrent_tasks=1)
    slow = disk.read_time(1e9, concurrent_tasks=disk.config.disks_per_machine * 4)
    assert slow > fast
