"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one Swift mechanism by
toggling a single policy knob on otherwise-identical workloads.  Like the
figure runners, each ablation decomposes into independent cells (see
:mod:`repro.experiments.cells`) executed through
:func:`repro.experiments.parallel.run_cells`, so ``--jobs N`` runs the
knob settings concurrently without changing any result.
"""

from __future__ import annotations

import statistics

from .harness import ExperimentResult
from .parallel import Cell, run_cells

#: Module that hosts the picklable cell functions.
_CELLS = "repro.experiments.cells"


def partitioning_ablation(n_jobs: int = 150) -> ExperimentResult:
    """Scheduling-granularity ablation: Swift graphlets vs whole-job vs
    per-stage vs data-size bubbles, all else equal (in-memory shuffle,
    pre-launched executors)."""
    result = ExperimentResult(
        name="ablation_partitioning",
        notes=(
            "same executors/shuffle everywhere; only the unit of scheduling "
            "varies. With an ample memory budget, bubbles coincide with "
            "graphlets on these small jobs; whole-job gangs pay their cost "
            "in IdleRatio and latency rather than raw makespan."
        ),
    )
    partitioners = (
        ("graphlet (swift)", "swift"),
        ("whole job", "whole_job"),
        ("per stage", "stage"),
        ("bubble", "bubble"),
    )
    cells = [
        Cell(_CELLS, "partitioning_cell", {"partitioner": key, "n_jobs": n_jobs})
        for _, key in partitioners
    ]
    for (label, _), payload in zip(partitioners, run_cells(cells)):
        result.add(
            partitioning=label,
            makespan_s=payload["makespan_s"],
            mean_latency_s=payload["mean_latency_s"],
            mean_idle_ratio_pct=payload["mean_idle_ratio_pct"],
        )
    return result


def submission_order_ablation(query: int = 9) -> ExperimentResult:
    """Section III-A2's note: the conservative graphlet submission order
    delays M7/M8 (which *could* run alongside graphlet 2) to avoid J10
    idling.  Compare conservative vs eager on Q9."""
    result = ExperimentResult(
        name="ablation_submission_order",
        notes="conservative avoids executor idling; eager starts leaves earlier",
    )
    orders = ("conservative", "eager")
    cells = [
        Cell(_CELLS, "submission_order_cell", {"order": order, "query": query})
        for order in orders
    ]
    for order, payload in zip(orders, run_cells(cells)):
        result.add(
            submission=order,
            run_time_s=payload["run_time_s"],
            mean_idle_ratio_pct=payload["mean_idle_ratio_pct"],
        )
    return result


def heartbeat_interval_ablation(
    intervals: tuple[float, ...] = (1.0, 5.0, 15.0, 60.0),
    n_failures: int = 4,
) -> ExperimentResult:
    """Failure-detection sensitivity: machine-crash recovery latency as a
    function of the heartbeat interval (Section IV-A's 5/10/15s trade-off)."""
    [base] = run_cells([
        Cell(_CELLS, "q13_runtime_cell", {"policy": "swift", "scale": 1.0})
    ])
    result = ExperimentResult(
        name="ablation_heartbeat_interval",
        notes="machine crash at 30% of the job; detection waits for the heartbeat",
    )
    cells = [
        Cell(_CELLS, "heartbeat_cell", {"interval": interval, "reference": base})
        for interval in intervals
    ]
    for interval, run_time in zip(intervals, run_cells(cells)):
        result.add(
            heartbeat_s=interval,
            slowdown_pct=100 * (run_time / base - 1),
        )
    return result


def cache_memory_ablation(
    capacities_gb: tuple[float, ...] = (0.5, 2.0, 8.0, 48.0),
) -> ExperimentResult:
    """Cache Worker memory pressure: shrink the per-machine cache until the
    LRU policy must spill, and measure the job-time impact (Section III-B's
    claim that chunked spill "would not hurt performance greatly")."""
    result = ExperimentResult(
        name="ablation_cache_memory",
        notes="large-shuffle jobs; smaller caches force LRU spill to disk",
    )
    cells = [
        Cell(_CELLS, "cache_capacity_cell", {"capacity_gb": capacity, "n_jobs": 4})
        for capacity in capacities_gb
    ]
    for capacity, payload in zip(capacities_gb, run_cells(cells)):
        result.add(
            cache_gb=capacity,
            mean_latency_s=payload["mean_latency_s"],
            spill_events=payload["spill_events"],
        )
    return result


def failure_rate_sweep(
    rates: tuple[float, ...] = (0.0, 0.2, 0.5, 0.8),
    n_jobs: int = 120,
    seed: int = 29,
) -> ExperimentResult:
    """How gracefully each recovery policy degrades as failures get more
    frequent (extends Fig. 15 into a sweep)."""
    [base] = run_cells([
        Cell(_CELLS, "trace_base_latency_cell",
             {"n_jobs": n_jobs, "mean_interarrival": 0.3})
    ])
    result = ExperimentResult(name="ablation_failure_rate_sweep")
    # (cell key, row label) — restart_policy() names itself "swift_restart".
    policies = (("swift", "swift"), ("restart", "swift_restart"))
    cells = [
        Cell(_CELLS, "trace_failure_cell",
             {"policy": policy, "n_jobs": n_jobs, "mean_interarrival": 0.3,
              "failure_rate": rate, "seed": seed, "reference": base})
        for rate in rates
        for policy, _ in policies
    ]
    slowdown_lists = run_cells(cells)
    for r, rate in enumerate(rates):
        row: dict[str, object] = {"failure_rate": rate}
        for p, (_, label) in enumerate(policies):
            slowdowns = slowdown_lists[r * len(policies) + p]
            row[f"{label}_slowdown_pct"] = statistics.mean(slowdowns)
        result.add(**row)
    return result
