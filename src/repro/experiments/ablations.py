"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one Swift mechanism by
toggling a single policy knob on otherwise-identical workloads.
"""

from __future__ import annotations

import random
import statistics

from ..core.partition import (
    BubblePartitioner,
    StagePartitioner,
    SwiftPartitioner,
    WholeJobPartitioner,
)
from ..core.policies import SubmissionOrder, swift_policy
from ..sim.config import SimConfig
from ..sim.failures import FailureKind, FailurePlan, FailureSpec
from ..workloads import tpch, traces
from .harness import ExperimentResult, makespan, mean_latency, run_jobs, run_single


def partitioning_ablation(n_jobs: int = 150) -> ExperimentResult:
    """Scheduling-granularity ablation: Swift graphlets vs whole-job vs
    per-stage vs data-size bubbles, all else equal (in-memory shuffle,
    pre-launched executors)."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=0.08)
    )
    result = ExperimentResult(
        name="ablation_partitioning",
        notes=(
            "same executors/shuffle everywhere; only the unit of scheduling "
            "varies. With an ample memory budget, bubbles coincide with "
            "graphlets on these small jobs; whole-job gangs pay their cost "
            "in IdleRatio and latency rather than raw makespan."
        ),
    )
    partitioners = (
        ("graphlet (swift)", SwiftPartitioner()),
        ("whole job", WholeJobPartitioner()),
        ("per stage", StagePartitioner()),
        ("bubble", BubblePartitioner()),
    )
    for label, partitioner in partitioners:
        policy = swift_policy(name=f"swift_{partitioner.name}", partitioner=partitioner)
        results, _ = run_jobs(policy, jobs)
        idle = statistics.mean(r.metrics.idle_ratio() for r in results)
        result.add(
            partitioning=label,
            makespan_s=makespan(results),
            mean_latency_s=mean_latency(results),
            mean_idle_ratio_pct=100 * idle,
        )
    return result


def submission_order_ablation(query: int = 9) -> ExperimentResult:
    """Section III-A2's note: the conservative graphlet submission order
    delays M7/M8 (which *could* run alongside graphlet 2) to avoid J10
    idling.  Compare conservative vs eager on Q9."""
    result = ExperimentResult(
        name="ablation_submission_order",
        notes="conservative avoids executor idling; eager starts leaves earlier",
    )
    for order in (SubmissionOrder.CONSERVATIVE, SubmissionOrder.EAGER):
        policy = swift_policy(name=f"swift_{order.value}", submission=order)
        res = run_single(policy, tpch.query_job(query))
        result.add(
            submission=order.value,
            run_time_s=res.metrics.run_time,
            mean_idle_ratio_pct=100 * res.metrics.idle_ratio(),
        )
    return result


def heartbeat_interval_ablation(
    intervals: tuple[float, ...] = (1.0, 5.0, 15.0, 60.0),
    n_failures: int = 4,
) -> ExperimentResult:
    """Failure-detection sensitivity: machine-crash recovery latency as a
    function of the heartbeat interval (Section IV-A's 5/10/15s trade-off)."""
    base = run_single(swift_policy(), tpch.query_job(13)).metrics.run_time
    result = ExperimentResult(
        name="ablation_heartbeat_interval",
        notes="machine crash at 30% of the job; detection waits for the heartbeat",
    )
    for interval in intervals:
        config = SimConfig()
        config.admin.heartbeat_intervals = ((1 << 62, interval),)
        plan = FailurePlan(
            [FailureSpec(kind=FailureKind.MACHINE_CRASH, machine_id=1, at_fraction=0.3)]
        )
        res = run_single(
            swift_policy(), tpch.query_job(13), config=config,
            failure_plan=plan, reference_duration=base,
        )
        result.add(
            heartbeat_s=interval,
            slowdown_pct=100 * (res.metrics.run_time / base - 1),
        )
    return result


def cache_memory_ablation(
    capacities_gb: tuple[float, ...] = (0.5, 2.0, 8.0, 48.0),
) -> ExperimentResult:
    """Cache Worker memory pressure: shrink the per-machine cache until the
    LRU policy must spill, and measure the job-time impact (Section III-B's
    claim that chunked spill "would not hurt performance greatly")."""
    result = ExperimentResult(
        name="ablation_cache_memory",
        notes="large-shuffle jobs; smaller caches force LRU spill to disk",
    )
    jobs = traces.shuffle_class_jobs("large", n_jobs=4)
    for capacity in capacities_gb:
        config = SimConfig()
        config.cache_worker.memory_capacity = int(capacity * 1024 ** 3)
        results, runtime = run_jobs(
            swift_policy(), jobs, n_machines=50, executors_per_machine=16,
            config=config,
        )
        spills = sum(
            machine.cache_worker.spill_events
            for machine in runtime.cluster.machines
            if machine.cache_worker is not None
        )
        result.add(
            cache_gb=capacity,
            mean_latency_s=mean_latency(results),
            spill_events=spills,
        )
    return result


def failure_rate_sweep(
    rates: tuple[float, ...] = (0.0, 0.2, 0.5, 0.8),
    n_jobs: int = 120,
    seed: int = 29,
) -> ExperimentResult:
    """How gracefully each recovery policy degrades as failures get more
    frequent (extends Fig. 15 into a sweep)."""
    from ..baselines import restart_policy
    from ..sim.failures import sample_trace_failures

    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=0.3)
    )
    base_results, _ = run_jobs(swift_policy(), jobs)
    base = {r.job_id: r.metrics.latency for r in base_results}
    result = ExperimentResult(name="ablation_failure_rate_sweep")
    for rate in rates:
        plan = sample_trace_failures(
            [j.job_id for j in jobs], rate, random.Random(seed)
        )
        row: dict[str, object] = {"failure_rate": rate}
        for policy in (swift_policy(), restart_policy()):
            results, _ = run_jobs(
                policy, jobs, failure_plan=plan, reference_duration=base
            )
            slowdowns = [
                100 * (r.metrics.latency / base[r.job_id] - 1)
                for r in results
                if base.get(r.job_id, 0) > 0
            ]
            row[f"{policy.name}_slowdown_pct"] = statistics.mean(slowdowns)
        result.add(**row)
    return result
