"""Markdown report generation: regenerate EXPERIMENTS.md from live runs.

``build_report`` runs every experiment (optionally at reduced scale) and
renders a paper-vs-measured markdown document.  The repository's checked-in
EXPERIMENTS.md is produced by::

    python -m repro report --output EXPERIMENTS.md
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from . import ablations, figures
from .harness import ExperimentResult


@dataclass(frozen=True)
class ReportSection:
    """One experiment in the report: runner plus its paper context."""

    key: str
    title: str
    paper_claim: str
    runner: Callable[[], ExperimentResult]


def _sections(quick: bool) -> list[ReportSection]:
    """The full experiment list; ``quick`` shrinks workload sizes."""
    n_trace = 200 if quick else 400
    return [
        ReportSection(
            "fig3", "Fig. 3 — IdleRatio under gang scheduling",
            "average IdleRatio of 3.81 / 13.15 / 14.45 / 14.92 % on four "
            "production clusters",
            lambda: figures.fig3_idle_ratio(n_jobs=80 if quick else 120),
        ),
        ReportSection(
            "fig8", "Fig. 8 — trace characteristics",
            "average run time 30 s; >90 % of jobs within 120 s; >80 % of "
            "jobs with <=80 tasks and <=4 stages",
            lambda: figures.fig8_trace_characteristics(n_jobs=600 if quick else 1500),
        ),
        ReportSection(
            "fig9a", "Fig. 9(a) — TPC-H, Swift vs Spark",
            "total speedup of 2.11x over tuned Spark SQL 2.4.6 on 1 TB",
            lambda: figures.fig9a_tpch(),
        ),
        ReportSection(
            "fig9b", "Fig. 9(b) — Q9 4-phase breakdown",
            "Spark: >71 s launching critical tasks; disk shuffle write/read "
            "137.8 s / 133.9 s. Swift: shuffle read 8.92 s, write 9.61 s",
            lambda: figures.fig9b_q9_phases(),
        ),
        ReportSection(
            "table1", "Table I — Terasort",
            "speedups 3.07 / 3.96 / 7.06 / 14.18 for 250^2..1500^2; Spark "
            "time shoots up past 1000^2, Swift grows only slightly",
            lambda: figures.table1_terasort(),
        ),
        ReportSection(
            "fig10", "Fig. 10 — running executors replaying the trace",
            "Swift and Bubble finish all jobs in 240 s and 296 s — speedups "
            "of 2.44x and 1.98x over JetScope",
            lambda: _fig10_summary(n_jobs=n_trace),
        ),
        ReportSection(
            "fig11", "Fig. 11 — normalized latency CDF",
            "more than 60 % of JetScope jobs at >=2x Swift's latency; "
            "Bubble tracks Swift closely",
            lambda: figures.fig11_latency_cdf(n_jobs=n_trace),
        ),
        ReportSection(
            "fig12", "Fig. 12 — shuffle-scheme ablation",
            "best scheme per class: small->Direct (Local +4 %, Remote +3 %); "
            "medium->Remote (Direct +25 %, Local +3.8 %); large->Local "
            "(Direct +108.3 %, Remote +47.9 %)",
            lambda: figures.fig12_shuffle_ablation(n_jobs=6 if quick else 8),
        ),
        ReportSection(
            "fig13", "Fig. 13 — TPC-H Q13 job details",
            "stage/task table of Q13 (M1: 498 tasks ... R6: 30 records)",
            figures.fig13_q13_details,
        ),
        ReportSection(
            "fig14", "Fig. 14 — single-failure injection into Q13",
            "Swift slows down <10 % for every injection (0 at t=20); job "
            "restart pays roughly the injection time again",
            figures.fig14_fault_injection,
        ),
        ReportSection(
            "fig15", "Fig. 15 — trace replay with real-world failures",
            "job restart slows execution by 45 % on average; Swift's "
            "fine-grained recovery by 5 %",
            lambda: figures.fig15_trace_failures(n_jobs=120 if quick else 200),
        ),
        ReportSection(
            "fig16", "Fig. 16 — scalability (strong scaling)",
            "near-linear speedup from 10,000 to 140,000 executors",
            lambda: figures.fig16_scalability(
                executor_counts=(10_000, 20_000, 40_000, 80_000, 140_000),
                n_jobs=1200 if quick else 2500,
            ),
        ),
        ReportSection(
            "ablation_partitioning", "Ablation — unit of scheduling",
            "(beyond the paper) graphlets vs whole-job vs per-stage vs bubbles",
            lambda: ablations.partitioning_ablation(n_jobs=100 if quick else 150),
        ),
        ReportSection(
            "ablation_adaptive", "Ablation — adaptive shuffle envelope",
            "(beyond the paper) adaptive selection tracks the best fixed scheme",
            lambda: figures.adaptive_shuffle_envelope(n_jobs=4 if quick else 6),
        ),
        ReportSection(
            "ablation_heartbeat", "Ablation — heartbeat interval",
            "(beyond the paper) Section IV-A's detection-latency trade-off",
            ablations.heartbeat_interval_ablation,
        ),
        ReportSection(
            "ablation_cache", "Ablation — Cache Worker memory",
            "(beyond the paper) LRU spill engages only under severe pressure",
            lambda: ablations.cache_memory_ablation(),
        ),
        ReportSection(
            "ablation_submission", "Ablation — graphlet submission order",
            "(beyond the paper) Section III-A2's conservative-order trade-off",
            ablations.submission_order_ablation,
        ),
        ReportSection(
            "ablation_failure_rate", "Ablation — failure-rate sweep",
            "(beyond the paper) degradation under increasing failure rates",
            lambda: ablations.failure_rate_sweep(n_jobs=80 if quick else 120),
        ),
        ReportSection(
            "shuffle_recovery", "Shuffle v2 — recovery under Cache Worker loss",
            "(beyond the paper; the FuxiShuffle direction) replica failover "
            "serves lost shuffle shares without producer re-runs",
            lambda: _shuffle_recovery_summary(quick=quick),
        ),
    ]


def _fig10_summary(n_jobs: int) -> ExperimentResult:
    spans = figures.fig10_makespans(n_jobs=n_jobs)
    result = ExperimentResult(
        name="fig10_makespans",
        notes="paper: Swift 240s, Bubble 296s; 2.44x / 1.98x over JetScope",
    )
    for name in ("swift", "bubble", "jetscope"):
        result.add(
            system=name,
            makespan_s=spans[name],
            speedup_over_jetscope=spans["jetscope"] / spans[name],
        )
    return result


def _shuffle_recovery_summary(quick: bool) -> ExperimentResult:
    """Shuffle v2 vs v1 recovery time under one injected Cache Worker loss.

    Reuses the gated bench scenario (``bench --suite shuffle``): both
    variants replay the same Terasort and lose the same Cache Worker at the
    same fraction of the failure-free makespan; only the replication factor
    differs.  Times are *simulated* seconds, so the rows are deterministic.
    """
    from .bench import bench_shuffle_recovery

    size = 110 if quick else 128
    payload = bench_shuffle_recovery(quick=quick, m=size, n=size)
    result = ExperimentResult(
        name="shuffle_v2_recovery",
        notes=(
            f"same {payload['job']} replay, same Cache Worker lost at "
            f"{payload['at_fraction']:.0%} of the failure-free makespan "
            f"({payload['baseline_makespan_s']:.1f}s simulated); v1 must "
            "re-run producers, v2 fails over to surviving replicas — "
            "gated by `python -m repro bench --suite shuffle --check`"
        ),
    )
    result.add(
        variant="v1 (replication=1)",
        makespan_s=payload["v1_makespan_s"],
        recovery_s=payload["v1_recovery_s"],
        recovery_path=f"{payload['v1_reruns']} producer re-run(s)",
    )
    result.add(
        variant="v2 (replication=2)",
        makespan_s=payload["v2_makespan_s"],
        recovery_s=payload["v2_recovery_s"],
        recovery_path=f"{payload['v2_failovers']} replica failover read(s)",
    )
    return result


def _markdown_table(result: ExperimentResult) -> str:
    if not result.rows:
        return "_(no rows)_"
    keys = list(result.rows[0].keys())
    lines = ["| " + " | ".join(keys) + " |",
             "|" + "|".join("---" for _ in keys) + "|"]
    for row in result.rows:
        cells = []
        for key in keys:
            value = row.get(key)
            cells.append(f"{value:.2f}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def build_report(quick: bool = False, echo: Callable[[str], None] | None = None) -> str:
    """Run every experiment and render the EXPERIMENTS.md document."""
    sections = _sections(quick)
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro report"
        + (" --quick" if quick else "") + "`.",
        "",
        "Every table and figure of the paper's evaluation (Section V), "
        "regenerated on the simulator, plus six ablations.  Absolute times "
        "differ from the paper (our substrate is a calibrated simulator, "
        "not Alibaba's testbed); the reproduction targets are *shapes*: "
        "who wins, by roughly what factor, and where crossovers fall.  "
        "See DESIGN.md for the substitution inventory.",
        "",
        "Every experiment fans its independent simulation cells through "
        "`repro.experiments.parallel`: pass `--jobs N` to `python -m repro "
        "report` / `experiment` to use N worker processes (results are "
        "byte-identical to a serial run).  Cell results are memoized by a "
        "hash of their full spec; set `--cache-dir DIR` or "
        "`$REPRO_CACHE_DIR` to persist the cache on disk.  Changing any "
        "cell input changes the hash (stale entries are never served); "
        "after editing simulator *code*, delete the cache directory to "
        "invalidate it.",
        "",
        "Figures that consume per-task data (e.g. Fig. 10's executor "
        "time series) read the run's structured trace records rather than "
        "private runtime state: any figure can be regenerated from an "
        "exported trace (`python -m repro trace <experiment> --format "
        "jsonl`, then `repro.obs.read_jsonl`).  See README's "
        "Observability section.",
        "",
        "Substrate and SQL-engine benchmarks live outside this report: "
        "`python -m repro bench` regenerates `BENCH_simulator.json` and "
        "`BENCH_sql.json` (row vs. columnar engine; run it on an otherwise "
        "idle machine before committing fresh numbers), and `python -m "
        "repro bench --check` compares a fresh run against the committed "
        "files without overwriting them, failing on >25% regressions of "
        "the gated speedups (SQL scenarios are compared only when the "
        "fresh run used the same `n_rows` as the committed one, so a "
        "`--quick` run never gates against full-size numbers).  The SQL "
        "suite times the row engine on row-dict lists and the columnar "
        "engine on its native numpy `ColumnBatch` layout (typed arrays + "
        "null bitmaps + dictionary-encoded strings, encoded once outside "
        "the timed region) at 100k and 1M rows; both engines must return "
        "identical rows for the number to be recorded.  The committed "
        "simulator payload is generated "
        "with resource auditing on (`--audit`, the default): the chaos "
        "smoke sweep reconciles a `repro.audit.ResourceLedger` after every "
        "campaign, so its gated pass fraction also covers resource "
        "conservation.",
        "",
        "Fault-tolerance results are additionally stress-tested by the "
        "chaos engine: `python -m repro chaos --runs 200 --seed 0` sweeps "
        "seeded multi-failure campaigns and checks recovery invariants "
        "after every run (add `--audit` to also reconcile resource "
        "accounting, as the CI smoke job does).  A violated campaign is "
        "shrunk to a minimal repro and saved as JSON; replay it exactly "
        "with `python -m repro chaos --replay chaos_repros/<file>.json` "
        "(campaigns are fully deterministic, so the replay reproduces the "
        "violation bit for bit).  Named profiles target the shuffle v2 "
        "resilience paths — `--profile cache-worker-loss-during-shuffle` "
        "(replication failover under Cache Worker losses), "
        "`mode-switch-under-crash`, and `replica-placement-skew` — with a "
        "`bounded-shuffle-recovery` invariant asserting every recovery "
        "decision was justified (no producer re-run while replicas "
        "survived, no failover without a survivor).  See README's "
        "\"Fault tolerance & chaos\" and \"Shuffle v2\" sections.",
        "",
    ]
    for section in sections:
        if echo:
            echo(f"running {section.key} ...")
        started = time.time()
        result = section.runner()
        elapsed = time.time() - started
        parts.append(f"## {section.title}")
        parts.append("")
        parts.append(f"**Paper:** {section.paper_claim}.")
        parts.append("")
        parts.append(_markdown_table(result))
        parts.append("")
        if result.notes:
            parts.append(f"_{result.notes}_")
            parts.append("")
        parts.append(f"_(generated in {elapsed:.1f}s)_")
        parts.append("")
    return "\n".join(parts)
