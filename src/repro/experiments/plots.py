"""Text rendering of experiment series: sparklines and scatter plots.

The CLI and examples render figures as plain text so the reproduction has
no plotting dependencies; each function returns a string.
"""

from __future__ import annotations

from typing import Sequence

_BARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a single-line intensity strip."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = list(values)[::step][:width]
    peak = max(sampled)
    if peak <= 0:
        return " " * len(sampled)
    return "".join(
        _BARS[min(len(_BARS) - 1, int(v / peak * (len(_BARS) - 1)))] for v in sampled
    )


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be the same length")
    if not labels:
        return ""
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{str(label):<{label_width}} |{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def xy_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Plot one or more y-series against shared x values on an ASCII grid."""
    if not xs:
        return ""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    all_y = [y for ys in series.values() for y in ys]
    y_max = max(all_y) or 1.0
    y_min = min(0.0, min(all_y))
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_max:>10.2f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(f"{'x:':>12} {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
