"""Shared experiment harness: cluster construction, replays, reporting."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.dag import Job
from ..core.policies import ExecutionPolicy
from ..core.runtime import JobResult, SwiftRuntime
from ..obs.tracer import Tracer
from ..sim.cluster import Cluster
from ..sim.config import SimConfig
from ..sim.failures import FailurePlan


@dataclass
class ExperimentResult:
    """One experiment's output: rows of named values plus paper targets."""

    name: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, **values: object) -> None:
        """Append one row of named values."""
        self.rows.append(values)

    def column(self, key: str) -> list[object]:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows]

    def to_json(self) -> str:
        """Serialize name, rows, and notes as a JSON document."""
        return json.dumps(
            {"name": self.name, "notes": self.notes, "rows": self.rows},
            indent=2,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            rows=list(payload.get("rows", [])),
            notes=payload.get("notes", ""),
        )

    def save(self, path: str) -> None:
        """Write the :meth:`to_json` document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        if not self.rows:
            return f"[{self.name}] (no rows)"
        keys = list(self.rows[0].keys())
        widths = {
            k: max(len(k), *(len(_fmt(row.get(k))) for row in self.rows)) for k in keys
        }
        header = "  ".join(k.ljust(widths[k]) for k in keys)
        lines = [f"[{self.name}]", header, "  ".join("-" * widths[k] for k in keys)]
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def build_cluster(
    n_machines: int = 100,
    executors_per_machine: int = 32,
    config: Optional[SimConfig] = None,
) -> Cluster:
    """A fresh cluster matching the paper's 100-node testbed by default."""
    return Cluster.build(n_machines, executors_per_machine, config=config)


def run_jobs(
    policy: ExecutionPolicy,
    jobs: Sequence[Job],
    n_machines: int = 100,
    executors_per_machine: int = 32,
    config: Optional[SimConfig] = None,
    failure_plan: Optional[FailurePlan] = None,
    reference_duration: float = 100.0,
    fast_path: bool = True,
    tracer: Optional[Tracer] = None,
) -> tuple[list[JobResult], SwiftRuntime]:
    """Execute ``jobs`` under ``policy`` on a fresh cluster.

    Returns the per-job results and the runtime (for utilization series,
    admin stats, and other cross-job introspection).  ``fast_path=False``
    forces the legacy one-event-per-task kernel (results are identical; see
    the determinism tests).  ``tracer`` threads an observability hook
    through the run (see :mod:`repro.obs`).
    """
    cluster = build_cluster(n_machines, executors_per_machine, config)
    runtime = SwiftRuntime(
        cluster,
        policy,
        config=config,
        failure_plan=failure_plan,
        reference_duration=reference_duration,
        fast_path=fast_path,
        tracer=tracer,
    )
    runtime.submit_all(list(jobs))
    results = runtime.run()
    return results, runtime


def run_single(
    policy: ExecutionPolicy,
    job: Job,
    n_machines: int = 100,
    executors_per_machine: int = 32,
    config: Optional[SimConfig] = None,
    failure_plan: Optional[FailurePlan] = None,
    reference_duration: float = 100.0,
    fast_path: bool = True,
    tracer: Optional[Tracer] = None,
) -> JobResult:
    """Execute one job on a fresh cluster and return its result."""
    results, _ = run_jobs(
        policy,
        [job],
        n_machines,
        executors_per_machine,
        config,
        failure_plan,
        reference_duration,
        fast_path,
        tracer,
    )
    if not results:
        raise RuntimeError(f"job {job.job_id} produced no result")
    return results[0]


def makespan(results: Sequence[JobResult]) -> float:
    """Completion time of the last job in a replay."""
    if not results:
        raise ValueError("no results")
    return max(r.metrics.finish_time for r in results)


def mean_latency(results: Sequence[JobResult]) -> float:
    """Average end-to-end job latency of a replay."""
    if not results:
        raise ValueError("no results")
    return sum(r.metrics.latency for r in results) / len(results)
