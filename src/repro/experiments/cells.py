"""Module-level cell functions behind the parallel experiment harness.

Each function here is one independent *cell* of a paper experiment: it
regenerates its own workload from the seeds encoded in its keyword
arguments, runs the simulation, and returns a small JSON-safe payload.
``figures``/``ablations`` build :class:`~repro.experiments.parallel.Cell`
specs naming these functions by string, so the figure modules never import
this one (no cycle) and the specs pickle cleanly into worker processes.

Everything a cell needs must arrive through its kwargs as JSON primitives;
policies, shuffle schemes, and partitioners are therefore resolved by name
here rather than passed as objects.
"""

from __future__ import annotations

import random
import statistics

from ..baselines import bubble_policy, jetscope_policy, restart_policy, spark_policy
from ..core.dag import Job
from ..core.metrics import four_quartile_summary
from ..core.partition import (
    BubblePartitioner,
    StagePartitioner,
    SwiftPartitioner,
    WholeJobPartitioner,
)
from ..core.policies import ExecutionPolicy, SubmissionOrder, swift_policy
from ..core.shuffle import ShuffleScheme
from ..obs.tracer import RecordingTracer
from ..sim.config import SimConfig
from ..sim.failures import FailureKind, FailurePlan, FailureSpec, sample_trace_failures
from ..workloads import terasort, tpch, traces
from .harness import makespan, mean_latency, run_jobs, run_single

#: Policy factories by name; cells receive the name, not the object.
_POLICIES = {
    "swift": swift_policy,
    "spark": spark_policy,
    "bubble": bubble_policy,
    "jetscope": jetscope_policy,
    "restart": restart_policy,
}

#: Partitioner classes by name for the scheduling-granularity ablation.
_PARTITIONERS = {
    "swift": SwiftPartitioner,
    "whole_job": WholeJobPartitioner,
    "stage": StagePartitioner,
    "bubble": BubblePartitioner,
}


def _policy(name: str) -> ExecutionPolicy:
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(_POLICIES)}")


# ----------------------------------------------------------------------
# Fig. 3 / Fig. 8
# ----------------------------------------------------------------------

def fig3_profile_cell(profile: int, n_jobs: int, n_machines: int) -> float:
    """IdleRatio (interquartile mean, %) of one cluster profile."""
    jobs = traces.cluster_profile_jobs(profile, n_jobs=n_jobs)
    results, _ = run_jobs(jetscope_policy(), jobs, n_machines=n_machines)
    per_job = [r.metrics.idle_ratio() for r in results]
    return 100.0 * four_quartile_summary(per_job)["iq_mean"]


def fig8_stats_cell(n_jobs: int) -> dict[str, float]:
    """Structural statistics of the generated trace."""
    jobs = traces.generate_trace(traces.TraceConfig(n_jobs=n_jobs))
    return traces.trace_statistics(jobs)


def fig8_runtime_cell(n_jobs: int, chunk: int, n_chunks: int) -> list[float]:
    """Unloaded runtimes of one fixed slice of the trace sample.

    The sample is always split into ``n_chunks`` strided slices (a spec
    constant, never the worker count), so the union of all chunks is the
    same multiset of runtimes no matter how many processes run them.
    """
    jobs = traces.generate_trace(traces.TraceConfig(n_jobs=n_jobs))
    sample = jobs[:: max(1, n_jobs // 300)]
    runtimes: list[float] = []
    for job in sample[chunk::n_chunks]:
        solo = Job(dag=job.dag, submit_time=0.0)
        runtimes.append(run_single(swift_policy(), solo).metrics.run_time)
    return runtimes


# ----------------------------------------------------------------------
# TPC-H / Terasort head-to-heads
# ----------------------------------------------------------------------

def tpch_query_cell(query: int, scale: float) -> dict[str, float]:
    """Swift-vs-Spark run time of one TPC-H query."""
    swift_t = run_single(swift_policy(), tpch.query_job(query, scale)).metrics.run_time
    spark_t = run_single(spark_policy(), tpch.query_job(query, scale)).metrics.run_time
    return {"swift_s": swift_t, "spark_s": spark_t}


def q9_phase_cell(policy: str, scale: float) -> dict[str, dict[str, float]]:
    """4-phase breakdown of Q9's critical stages under one policy."""
    res = run_single(_policy(policy), tpch.query_job(9, scale))
    out: dict[str, dict[str, float]] = {}
    for stage in tpch.Q9_CRITICAL_STAGES:
        b = res.metrics.phase_breakdown(stage)
        out[stage] = {
            "L": b.launch, "SR": b.shuffle_read,
            "P": b.processing, "SW": b.shuffle_write,
        }
    return out


def terasort_cell(m: int, n: int) -> dict[str, float]:
    """Swift-vs-Spark run time of one Terasort size point."""
    swift_t = run_single(swift_policy(), terasort.terasort_job(m, n)).metrics.run_time
    spark_t = run_single(spark_policy(), terasort.terasort_job(m, n)).metrics.run_time
    return {"swift_s": swift_t, "spark_s": spark_t}


# ----------------------------------------------------------------------
# Trace replays (Figs. 10, 11, 15 and the failure-rate sweep)
# ----------------------------------------------------------------------

def trace_replay_cell(
    policy: str, n_jobs: int, mean_interarrival: float
) -> dict[str, object]:
    """Full trace replay under one system: makespan, per-job latencies,
    and the executor busy intervals that feed Fig. 10's time series.

    The busy intervals come from the run's trace records (task-attempt
    spans) rather than from private runtime state; the determinism tests
    pin the two representations equal.
    """
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=mean_interarrival)
    )
    tracer = RecordingTracer()
    results, _ = run_jobs(_policy(policy), jobs, tracer=tracer)
    return {
        "makespan": makespan(results),
        "latencies": {r.job_id: r.metrics.latency for r in results},
        "busy_intervals": [list(interval) for interval in tracer.task_intervals()],
    }


def trace_base_latency_cell(n_jobs: int, mean_interarrival: float) -> dict[str, float]:
    """Failure-free per-job latencies of a trace (the Fig. 15 reference)."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=mean_interarrival)
    )
    results, _ = run_jobs(swift_policy(), jobs)
    return {r.job_id: r.metrics.latency for r in results}


def trace_failure_cell(
    policy: str,
    n_jobs: int,
    mean_interarrival: float,
    failure_rate: float,
    seed: int,
    reference: dict[str, float],
) -> list[float]:
    """Per-job slowdown (%) of one policy replaying the trace with
    trace-calibrated failures, relative to the failure-free reference."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=mean_interarrival)
    )
    plan = sample_trace_failures(
        [j.job_id for j in jobs], failure_rate, random.Random(seed)
    )
    results, _ = run_jobs(
        _policy(policy), jobs, failure_plan=plan, reference_duration=reference
    )
    return [
        100.0 * (r.metrics.latency / reference[r.job_id] - 1.0)
        for r in results
        if reference.get(r.job_id, 0) > 0
    ]


# ----------------------------------------------------------------------
# Fig. 12 — shuffle schemes
# ----------------------------------------------------------------------

def shuffle_scheme_cell(
    category: str,
    scheme: str,
    n_jobs: int,
    n_machines: int,
    executors_per_machine: int,
) -> float:
    """Mean job latency of one (shuffle class, scheme) combination."""
    config = SimConfig()
    config.network.reference_machines = n_machines
    policy = swift_policy(name=f"swift_{scheme}", shuffle=ShuffleScheme(scheme))
    jobs = traces.shuffle_class_jobs(category, n_jobs=n_jobs)
    results, _ = run_jobs(
        policy, jobs, n_machines=n_machines,
        executors_per_machine=executors_per_machine,
        config=config.copy(),
    )
    return mean_latency(results)


# ----------------------------------------------------------------------
# Q13 fault injection (Fig. 14) and the heartbeat ablation
# ----------------------------------------------------------------------

def q13_runtime_cell(policy: str, scale: float) -> float:
    """Failure-free Q13 run time (shared baseline of Fig. 14 and the
    heartbeat ablation)."""
    return run_single(_policy(policy), tpch.query_job(13, scale)).metrics.run_time


def fig14_injection_cell(
    policy: str, stage: str, fraction: float, scale: float, reference: float
) -> float:
    """Q13 run time with one task crash injected at ``fraction`` of the
    baseline runtime into ``stage``."""
    spec = FailureSpec(kind=FailureKind.TASK_CRASH, stage=stage, at_fraction=fraction)
    return run_single(
        _policy(policy), tpch.query_job(13, scale),
        failure_plan=FailurePlan([spec]), reference_duration=reference,
    ).metrics.run_time


def heartbeat_cell(interval: float, reference: float) -> float:
    """Q13 run time with a machine crash at 30% under one heartbeat interval."""
    config = SimConfig()
    config.admin.heartbeat_intervals = ((1 << 62, interval),)
    plan = FailurePlan(
        [FailureSpec(kind=FailureKind.MACHINE_CRASH, machine_id=1, at_fraction=0.3)]
    )
    res = run_single(
        swift_policy(), tpch.query_job(13), config=config,
        failure_plan=plan, reference_duration=reference,
    )
    return res.metrics.run_time


# ----------------------------------------------------------------------
# Fig. 16 — scalability
# ----------------------------------------------------------------------

def fig16_count_cell(
    count: int,
    n_machines: int,
    n_jobs: int,
    tasks_per_stage: int,
    work_seconds: float,
) -> float:
    """Makespan of the scalability batch at one executor-pool size."""
    from .figures import scalability_workload

    per_machine = max(1, count // n_machines)
    jobs = scalability_workload(
        n_jobs=n_jobs, tasks_per_stage=tasks_per_stage, work_seconds=work_seconds
    )
    results, _ = run_jobs(
        swift_policy(), jobs, n_machines=n_machines,
        executors_per_machine=per_machine,
    )
    return makespan(results)


# ----------------------------------------------------------------------
# Ablation cells
# ----------------------------------------------------------------------

def partitioning_cell(partitioner: str, n_jobs: int) -> dict[str, float]:
    """Trace replay under one unit of scheduling (graphlet/job/stage/bubble)."""
    jobs = traces.generate_trace(
        traces.TraceConfig(n_jobs=n_jobs, mean_interarrival=0.08)
    )
    instance = _PARTITIONERS[partitioner]()
    policy = swift_policy(name=f"swift_{instance.name}", partitioner=instance)
    results, _ = run_jobs(policy, jobs)
    idle = statistics.mean(r.metrics.idle_ratio() for r in results)
    return {
        "makespan_s": makespan(results),
        "mean_latency_s": mean_latency(results),
        "mean_idle_ratio_pct": 100 * idle,
    }


def submission_order_cell(order: str, query: int) -> dict[str, float]:
    """Q``query`` under one graphlet submission order."""
    policy = swift_policy(name=f"swift_{order}", submission=SubmissionOrder(order))
    res = run_single(policy, tpch.query_job(query))
    return {
        "run_time_s": res.metrics.run_time,
        "mean_idle_ratio_pct": 100 * res.metrics.idle_ratio(),
    }


def cache_capacity_cell(capacity_gb: float, n_jobs: int) -> dict[str, float]:
    """Large-shuffle replay under one Cache Worker memory budget; reports
    the LRU spill count alongside the latency impact."""
    config = SimConfig()
    config.cache_worker.memory_capacity = int(capacity_gb * 1024 ** 3)
    jobs = traces.shuffle_class_jobs("large", n_jobs=n_jobs)
    results, runtime = run_jobs(
        swift_policy(), jobs, n_machines=50, executors_per_machine=16,
        config=config,
    )
    spills = sum(
        machine.cache_worker.spill_events
        for machine in runtime.cluster.machines
        if machine.cache_worker is not None
    )
    return {
        "mean_latency_s": mean_latency(results),
        "spill_events": spills,
    }


def chaos_campaign_cell(
    seed: int,
    workload: str,
    profile: str,
    shrink: bool = True,
    out_dir: "str | None" = None,
    audit: bool = False,
) -> dict[str, object]:
    """One chaos campaign: generate from ``seed``, inject, check, shrink.

    The cell regenerates everything from its kwargs (campaigns are a
    deterministic function of seed/workload/profile), so the spec-hash
    cache and process-pool fan-out both apply to chaos sweeps.
    """
    from ..chaos import ChaosEngine

    engine = ChaosEngine(
        workload=workload, profile=profile, out_dir=out_dir, audit=audit
    )
    return engine.run_seed(seed, shrink=shrink).to_dict()
