"""Parallel experiment harness: fan independent simulation cells across
worker processes, with a spec-hashed result cache.

Every paper experiment decomposes into independent *cells* — one
(policy, configuration, seed) simulation whose result is a small JSON
payload.  A :class:`Cell` names a module-level function plus keyword
arguments built only from JSON primitives, so the spec both pickles
cleanly into a ``ProcessPoolExecutor`` worker and hashes canonically for
the cache.

Design rules that keep parallel runs byte-identical to serial ones:

* Cells never share state: each cell builds its own cluster, workload,
  and RNGs from the seeds in its kwargs.
* The cell *decomposition* of an experiment is fixed — it never depends
  on how many workers execute it, so ``--jobs 1`` and ``--jobs 8``
  produce identical rows in identical order.
* Every payload — fresh or cached — is normalised through a JSON
  round-trip, so a result served from the cache is indistinguishable
  from one computed in-process (tuples become lists either way).

The cache has two layers: a per-process memory cache (always on; repeat
sections inside one report run are free) and an optional on-disk cache
keyed by the spec hash, enabled by passing ``cache_dir`` or setting
``REPRO_CACHE_DIR``.  Editing a cell function's inputs changes the hash,
so stale entries are never served; editing its *code* requires clearing
the directory (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: Environment variable consulted for the default worker count.
JOBS_ENV = "REPRO_JOBS"
#: Environment variable enabling the on-disk result cache.
CACHE_ENV = "REPRO_CACHE_DIR"
#: Fewest uncached cells worth a process pool: below this, interpreter
#: spin-up plus pickling costs about as much as just running the cell.
MIN_CELLS_FOR_POOL = 2

_default_jobs: Optional[int] = None
#: Process-wide memory cache: spec hash -> normalised payload.
_MEMORY_CACHE: dict[str, Any] = {}


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``module``/``func`` name a module-level function (anything importable
    under ``repro.*``); ``kwargs`` must contain only JSON primitives
    (str/int/float/bool/None and lists/dicts of them) so the spec is both
    picklable and canonically hashable.
    """

    module: str
    func: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        """Stable content hash of this cell's full spec."""
        spec = {"module": self.module, "func": self.func, "kwargs": self.kwargs}
        blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def set_default_jobs(n: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets it).

    The CLI's ``--jobs`` flag routes through here so experiment functions
    deep inside ``figures``/``ablations`` pick it up without threading a
    parameter through every call site.
    """
    global _default_jobs
    if n is not None and n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    _default_jobs = n


def default_jobs() -> int:
    """Resolve the effective worker count: explicit > $REPRO_JOBS > 1."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _cpu_count() -> int:
    """Usable CPU count (monkeypatched in tests)."""
    return os.cpu_count() or 1


def execution_plan(n_cells: int, jobs: Optional[int] = None) -> tuple[str, int]:
    """How ``run_cells`` would execute ``n_cells`` uncached cells.

    Returns ``("process-pool", workers)`` or ``("serial", 1)``.  The
    effective worker count is capped by the cell count and the host's CPU
    count; when it degrades to 1 — or there are too few cells to amortise
    pool spin-up and pickling — the plan is serial, so a ``--jobs 3`` run
    on a single-CPU host never pays fan-out overhead for nothing.
    """
    requested = jobs if jobs is not None else default_jobs()
    if requested < 1:
        raise ValueError(f"jobs must be >= 1, got {requested}")
    workers = min(requested, n_cells, max(1, _cpu_count()))
    if workers <= 1 or n_cells < MIN_CELLS_FOR_POOL:
        return "serial", 1
    return "process-pool", workers


def clear_memory_cache() -> None:
    """Drop every in-process cached payload (tests use this for isolation)."""
    _MEMORY_CACHE.clear()


def _cache_dir(override: Optional[str]) -> Optional[str]:
    return override if override is not None else os.environ.get(CACHE_ENV) or None


def _normalize(payload: Any) -> Any:
    """JSON round-trip so fresh and cached payloads are byte-identical."""
    return json.loads(json.dumps(payload, default=str))


def _call_cell(module: str, func: str, kwargs: dict[str, Any]) -> Any:
    """Worker entry point: import the cell function and run it.

    Module-level (not a closure) so it pickles into spawn/fork workers.
    """
    target = getattr(importlib.import_module(module), func)
    return _normalize(target(**kwargs))


def _disk_load(directory: str, key: str) -> Optional[Any]:
    path = os.path.join(directory, f"{key}.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _disk_store(directory: str, key: str, payload: Any) -> None:
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{key}.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        # The cache is best-effort; a read-only directory must not fail a run.
        pass


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> list[Any]:
    """Execute ``cells`` and return their payloads in submission order.

    ``jobs`` > 1 fans uncached cells across a ``ProcessPoolExecutor``;
    the merge order is always the input order, so results are identical
    to a serial run regardless of worker count or completion order.
    """
    n_jobs = jobs if jobs is not None else default_jobs()
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {n_jobs}")
    directory = _cache_dir(cache_dir)

    results: list[Any] = [None] * len(cells)
    misses: list[int] = []
    for i, cell in enumerate(cells):
        key = cell.key()
        if key in _MEMORY_CACHE:
            results[i] = _MEMORY_CACHE[key]
            continue
        if directory is not None:
            payload = _disk_load(directory, key)
            if payload is not None:
                _MEMORY_CACHE[key] = payload
                results[i] = payload
                continue
        misses.append(i)

    if misses:
        mode, workers = execution_plan(len(misses), n_jobs)
        if mode == "process-pool":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_call_cell, cells[i].module, cells[i].func, cells[i].kwargs)
                    for i in misses
                ]
                fresh = [future.result() for future in futures]
        else:
            fresh = [
                _call_cell(cells[i].module, cells[i].func, cells[i].kwargs)
                for i in misses
            ]
        for i, payload in zip(misses, fresh):
            key = cells[i].key()
            _MEMORY_CACHE[key] = payload
            if directory is not None:
                _disk_store(directory, key, payload)
            results[i] = payload

    return results


def run_cell(cell: Cell, cache_dir: Optional[str] = None) -> Any:
    """Execute one cell in-process (still consulting both caches)."""
    return run_cells([cell], jobs=1, cache_dir=cache_dir)[0]
