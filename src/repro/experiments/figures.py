"""One runner per table/figure of the paper's evaluation (Section V).

Each ``figNN_*`` / ``table1_*`` function regenerates the corresponding
result on the simulator and returns an
:class:`~repro.experiments.harness.ExperimentResult` whose rows mirror the
paper's rows/series.  ``PAPER`` holds the published values so benchmarks can
print paper-vs-measured side by side.

Every experiment is decomposed into independent cells (one simulation per
policy/config/seed combination, defined in :mod:`repro.experiments.cells`)
and executed through :func:`repro.experiments.parallel.run_cells`, so
``--jobs N`` fans the cells across worker processes.  The decomposition is
fixed per experiment — never a function of the worker count — which keeps
parallel results byte-identical to serial ones.
"""

from __future__ import annotations

import random
import statistics
from typing import Sequence

from ..core.dag import Job
from ..core.metrics import four_quartile_summary, normalized_cdf, utilization_series
from ..workloads import terasort, tpch, traces
from .harness import ExperimentResult
from .parallel import Cell, run_cells

#: Module that hosts the picklable cell functions.
_CELLS = "repro.experiments.cells"

#: Fig. 8 splits its runtime sample into this many cells.  A spec constant
#: (not the worker count!) so the merged multiset of runtimes is identical
#: for any ``--jobs`` value.
FIG8_RUNTIME_CHUNKS = 8

#: Published values from the paper, used for paper-vs-measured reporting.
PAPER: dict[str, object] = {
    "fig3_idle_ratio_pct": (3.81, 13.15, 14.45, 14.92),
    "fig8_avg_runtime_s": 30.0,
    "fig8_frac_under_120s": 0.90,
    "fig8_frac_tasks_le_80": 0.80,
    "fig8_frac_stages_le_4": 0.80,
    "fig9a_total_speedup": 2.11,
    "fig9b_spark_launch_total_s": 71.0,
    "fig9b_swift_shuffle_read_s": 8.92,
    "fig9b_swift_shuffle_write_s": 9.61,
    "fig9b_spark_shuffle_write_s": 137.8,
    "fig9b_spark_shuffle_read_s": 133.9,
    "table1": {(250, 250): (61, 19, 3.07), (500, 500): (103, 26, 3.96),
               (1000, 1000): (233, 33, 7.06), (1500, 1500): (539, 38, 14.18)},
    "fig10_jetscope_speedup": 2.44,
    "fig10_bubble_speedup_over_jetscope": 1.98,
    "fig10_bubble_over_swift": 1.23,
    "fig11_jetscope_frac_ge_2x": 0.60,
    "fig12": {
        "small": {"direct": 1.00, "local": 1.04, "remote": 1.03},
        "medium": {"direct": 1.25, "local": 1.038, "remote": 1.00},
        "large": {"direct": 2.083, "local": 1.00, "remote": 1.479},
    },
    "fig14_swift_max_slowdown_pct": 10.0,
    "fig15_restart_slowdown_pct": 45.0,
    "fig15_swift_slowdown_pct": 5.0,
    "fig16_executors": (10_000, 140_000),
}


# ----------------------------------------------------------------------
# Fig. 3 — IdleRatio of four production clusters under gang scheduling
# ----------------------------------------------------------------------

def fig3_idle_ratio(n_jobs: int = 150, n_machines: int = 100) -> ExperimentResult:
    """Mean task IdleRatio per cluster profile under whole-job gang
    scheduling (the four bars of Fig. 3)."""
    result = ExperimentResult(
        name="fig3_idle_ratio",
        notes="paper: 3.81 / 13.15 / 14.45 / 14.92 % across clusters #1-#4",
    )
    cells = [
        Cell(_CELLS, "fig3_profile_cell",
             {"profile": profile, "n_jobs": n_jobs, "n_machines": n_machines})
        for profile in range(4)
    ]
    for profile, pct in enumerate(run_cells(cells)):
        result.add(
            cluster=f"#{profile + 1}",
            idle_ratio_pct=pct,
            paper_pct=PAPER["fig3_idle_ratio_pct"][profile],
        )
    return result


# ----------------------------------------------------------------------
# Fig. 8 — trace characteristics
# ----------------------------------------------------------------------

def fig8_trace_characteristics(n_jobs: int = 2000) -> ExperimentResult:
    """Runtime and size distributions of the generated trace (Fig. 8)."""
    cells = [Cell(_CELLS, "fig8_stats_cell", {"n_jobs": n_jobs})] + [
        Cell(_CELLS, "fig8_runtime_cell",
             {"n_jobs": n_jobs, "chunk": chunk, "n_chunks": FIG8_RUNTIME_CHUNKS})
        for chunk in range(FIG8_RUNTIME_CHUNKS)
    ]
    payloads = run_cells(cells)
    stats = payloads[0]
    runtimes = [t for chunk in payloads[1:] for t in chunk]
    runtimes.sort()
    frac_under_120 = sum(1 for r in runtimes if r <= 120.0) / len(runtimes)
    result = ExperimentResult(
        name="fig8_trace_characteristics",
        notes="paper: avg 30s, >90% <=120s, >80% of jobs <=80 tasks and <=4 stages",
    )
    result.add(metric="avg_runtime_s", measured=statistics.mean(runtimes), paper=30.0)
    result.add(metric="frac_runtime_le_120s", measured=frac_under_120, paper=0.90)
    result.add(metric="frac_tasks_le_80", measured=stats["frac_tasks_le_80"], paper=0.80)
    result.add(metric="frac_stages_le_4", measured=stats["frac_stages_le_4"], paper=0.80)
    return result


# ----------------------------------------------------------------------
# Fig. 9(a) — TPC-H, Swift vs Spark
# ----------------------------------------------------------------------

def fig9a_tpch(
    queries: Sequence[int] = tpch.ALL_QUERIES, scale: float = 1.0
) -> ExperimentResult:
    """Per-query execution time of Swift and Spark on TPC-H (Fig. 9(a))."""
    result = ExperimentResult(
        name="fig9a_tpch", notes="paper: total speedup 2.11x over Spark SQL 2.4.6"
    )
    cells = [
        Cell(_CELLS, "tpch_query_cell", {"query": query, "scale": scale})
        for query in queries
    ]
    total_swift = total_spark = 0.0
    for query, payload in zip(queries, run_cells(cells)):
        swift_t, spark_t = payload["swift_s"], payload["spark_s"]
        total_swift += swift_t
        total_spark += spark_t
        result.add(query=f"Q{query}", swift_s=swift_t, spark_s=spark_t,
                   speedup=spark_t / swift_t)
    result.add(query="TOTAL", swift_s=total_swift, spark_s=total_spark,
               speedup=total_spark / total_swift)
    return result


def fig9b_q9_phases(scale: float = 1.0) -> ExperimentResult:
    """4-phase breakdown of Q9's critical stages (Fig. 9(b))."""
    result = ExperimentResult(
        name="fig9b_q9_phases",
        notes=(
            "paper: Spark launching >71s total; Swift SR 8.92s / SW 9.61s vs "
            "Spark disk shuffle 137.8s / 133.9s"
        ),
    )
    swift_phases, spark_phases = run_cells([
        Cell(_CELLS, "q9_phase_cell", {"policy": "swift", "scale": scale}),
        Cell(_CELLS, "q9_phase_cell", {"policy": "spark", "scale": scale}),
    ])
    for stage in tpch.Q9_CRITICAL_STAGES:
        sw, sp = swift_phases[stage], spark_phases[stage]
        result.add(
            stage=stage,
            swift_L=sw["L"], swift_SR=sw["SR"],
            swift_P=sw["P"], swift_SW=sw["SW"],
            spark_L=sp["L"], spark_SR=sp["SR"],
            spark_P=sp["P"], spark_SW=sp["SW"],
        )
    return result


# ----------------------------------------------------------------------
# Table I — Terasort
# ----------------------------------------------------------------------

def table1_terasort(
    sizes: Sequence[tuple[int, int]] = terasort.TABLE1_SIZES
) -> ExperimentResult:
    """Terasort M x N sweep, Spark vs Swift (Table I)."""
    result = ExperimentResult(
        name="table1_terasort",
        notes="paper speedups: 3.07 / 3.96 / 7.06 / 14.18 as size grows",
    )
    cells = [Cell(_CELLS, "terasort_cell", {"m": m, "n": n}) for m, n in sizes]
    for (m, n), payload in zip(sizes, run_cells(cells)):
        swift_t, spark_t = payload["swift_s"], payload["spark_s"]
        paper = PAPER["table1"].get((m, n))  # type: ignore[union-attr]
        result.add(
            job_size=f"{m}x{n}", spark_s=spark_t, swift_s=swift_t,
            speedup=spark_t / swift_t,
            paper_speedup=paper[2] if paper else float("nan"),
        )
    return result


# ----------------------------------------------------------------------
# Figs. 10 & 11 — trace replay against JetScope and Bubble Execution
# ----------------------------------------------------------------------

_REPLAY_SYSTEMS = ("swift", "bubble", "jetscope")


def _replay_three_systems(
    n_jobs: int, mean_interarrival: float
) -> dict[str, dict[str, object]]:
    """Replay payloads per system; one cell each, so ``--jobs 3`` runs the
    three systems concurrently (the memory cache dedups repeat calls across
    fig10/fig11 within one process, replacing the old module-level cache)."""
    cells = [
        Cell(_CELLS, "trace_replay_cell",
             {"policy": name, "n_jobs": n_jobs,
              "mean_interarrival": mean_interarrival})
        for name in _REPLAY_SYSTEMS
    ]
    return dict(zip(_REPLAY_SYSTEMS, run_cells(cells)))


def fig10_executor_timeseries(
    n_jobs: int = 400, mean_interarrival: float = 0.08, step: float = 10.0
) -> ExperimentResult:
    """Running-executor counts over time for the three systems (Fig. 10)."""
    replay = _replay_three_systems(n_jobs, mean_interarrival)
    result = ExperimentResult(
        name="fig10_executor_timeseries",
        notes="paper: Swift 240s, Bubble 296s; 2.44x / 1.98x speedup over JetScope",
    )
    spans = {name: payload["makespan"] for name, payload in replay.items()}
    horizon = max(spans.values())
    series = {
        name: utilization_series(payload["busy_intervals"], step, horizon)
        for name, payload in replay.items()
    }
    n_points = len(next(iter(series.values())))
    for i in range(n_points):
        row: dict[str, object] = {"time_s": series["swift"][i].time}
        for name in _REPLAY_SYSTEMS:
            row[f"{name}_running"] = series[name][i].running_executors
        result.add(**row)
    result.add(
        time_s="makespan",
        swift_running=spans["swift"],
        bubble_running=spans["bubble"],
        jetscope_running=spans["jetscope"],
    )
    return result


def fig10_makespans(
    n_jobs: int = 400, mean_interarrival: float = 0.08
) -> dict[str, float]:
    """Makespans of the three systems (the headline Fig. 10 numbers)."""
    replay = _replay_three_systems(n_jobs, mean_interarrival)
    return {name: payload["makespan"] for name, payload in replay.items()}


def fig11_latency_cdf(
    n_jobs: int = 400, mean_interarrival: float = 0.08
) -> ExperimentResult:
    """CDF of job latency normalized to Swift (Fig. 11)."""
    replay = _replay_three_systems(n_jobs, mean_interarrival)
    swift_lat = replay["swift"]["latencies"]
    result = ExperimentResult(
        name="fig11_latency_cdf",
        notes="paper: >60% of JetScope jobs at >=2x Swift latency; Bubble close to Swift",
    )
    for name in ("bubble", "jetscope"):
        lat = replay[name]["latencies"]
        ordered = sorted(swift_lat)
        cdf = normalized_cdf(
            [lat[j] for j in ordered], [swift_lat[j] for j in ordered]
        )
        ratios = [r for r, _ in cdf]
        frac_ge_2 = sum(1 for r in ratios if r >= 2.0) / len(ratios)
        result.add(
            system=name,
            median_ratio=ratios[len(ratios) // 2],
            p90_ratio=ratios[int(len(ratios) * 0.9)],
            frac_ge_2x=frac_ge_2,
        )
    return result


# ----------------------------------------------------------------------
# Fig. 12 — shuffle-scheme ablation by shuffle size class
# ----------------------------------------------------------------------

def fig12_shuffle_ablation(
    n_jobs: int = 10, n_machines: int = 200, executors_per_machine: int = 16
) -> ExperimentResult:
    """Normalized average job time per (size class, shuffle scheme).

    The paper replays each class with Direct, Local, and Remote Shuffle on
    the 2,000-node cluster; times are normalized to Direct = 1 per class.
    """
    result = ExperimentResult(
        name="fig12_shuffle_ablation",
        notes=(
            "paper best scheme: small->Direct, medium->Remote (Direct +25%), "
            "large->Local (Direct +108.3%, Remote +47.9%)"
        ),
    )
    categories = ("small", "medium", "large")
    schemes = ("direct", "local", "remote")
    cells = [
        Cell(_CELLS, "shuffle_scheme_cell",
             {"category": category, "scheme": scheme, "n_jobs": n_jobs,
              "n_machines": n_machines,
              "executors_per_machine": executors_per_machine})
        for category in categories
        for scheme in schemes
    ]
    latencies = run_cells(cells)
    for c, category in enumerate(categories):
        times = dict(zip(schemes, latencies[c * len(schemes):(c + 1) * len(schemes)]))
        base = times["direct"]
        paper = PAPER["fig12"][category]  # type: ignore[index]
        result.add(
            shuffle_class=category,
            direct=times["direct"] / base,
            local=times["local"] / base,
            remote=times["remote"] / base,
            paper_direct=paper["direct"],
            paper_local=paper["local"],
            paper_remote=paper["remote"],
        )
    return result


def adaptive_shuffle_envelope(
    n_jobs: int = 8, n_machines: int = 200, executors_per_machine: int = 16
) -> ExperimentResult:
    """Ablation: adaptive selection tracks the best fixed scheme per class."""
    result = ExperimentResult(name="adaptive_shuffle_envelope")
    categories = ("small", "medium", "large")
    schemes = ("direct", "local", "remote", "adaptive")
    cells = [
        Cell(_CELLS, "shuffle_scheme_cell",
             {"category": category, "scheme": scheme, "n_jobs": n_jobs,
              "n_machines": n_machines,
              "executors_per_machine": executors_per_machine})
        for category in categories
        for scheme in schemes
    ]
    latencies = run_cells(cells)
    for c, category in enumerate(categories):
        times = dict(zip(schemes, latencies[c * len(schemes):(c + 1) * len(schemes)]))
        fixed_best = min(times["direct"], times["local"], times["remote"])
        result.add(
            shuffle_class=category,
            adaptive=times["adaptive"],
            best_fixed=fixed_best,
            overhead_pct=100.0 * (times["adaptive"] / fixed_best - 1.0),
        )
    return result


# ----------------------------------------------------------------------
# Fig. 13 — Q13 job details
# ----------------------------------------------------------------------

def fig13_q13_details() -> ExperimentResult:
    """The Q13 stage table (Fig. 13) plus our DAG's realised structure."""
    result = ExperimentResult(name="fig13_q13_details")
    dag = tpch.query_dag(13)
    ours = {s.name: s for s in dag.stages.values()}
    for row in tpch.Q13_DETAILS:
        stage = str(row["stage"])
        built = ours.get(stage)
        result.add(
            stage=stage,
            paper_tasks=row["tasks"],
            built_tasks=built.task_count if built else 0,
            input_records_per_task=row["input_records_per_task"],
            input_size_per_task=row["input_size_per_task"],
        )
    return result


# ----------------------------------------------------------------------
# Figs. 14 & 15 — fault tolerance
# ----------------------------------------------------------------------

#: Fig. 14's injection schedule: (normalized time, target stage of Q13).
FIG14_INJECTIONS: tuple[tuple[float, str], ...] = (
    (0.2, "M2"),
    (0.4, "J3"),
    (0.6, "R4"),
    (0.8, "R5"),
    (0.98, "R6"),
)


def fig14_fault_injection(scale: float = 1.0) -> ExperimentResult:
    """Single-failure injections into Q13, Swift vs job restart (Fig. 14).

    Two-phase fan-out: the failure-free baseline runs first (its runtime
    parameterizes every injection), then all ten injected runs go wide.
    """
    [baseline] = run_cells([
        Cell(_CELLS, "q13_runtime_cell", {"policy": "swift", "scale": scale})
    ])
    result = ExperimentResult(
        name="fig14_fault_injection",
        notes="paper: Swift slowdown <10% for all injections; restart up to ~100%",
    )
    cells = [
        Cell(_CELLS, "fig14_injection_cell",
             {"policy": policy, "stage": stage, "fraction": fraction,
              "scale": scale, "reference": baseline})
        for fraction, stage in FIG14_INJECTIONS
        for policy in ("swift", "restart")
    ]
    times = run_cells(cells)
    for i, (fraction, stage) in enumerate(FIG14_INJECTIONS):
        swift_t, restart_t = times[2 * i], times[2 * i + 1]
        result.add(
            inject_at=round(100 * fraction),
            stage=stage,
            swift_slowdown_pct=100.0 * (swift_t / baseline - 1.0),
            restart_slowdown_pct=100.0 * (restart_t / baseline - 1.0),
        )
    return result


def fig15_trace_failures(
    n_jobs: int = 200, failure_rate: float = 0.9, seed: int = 17
) -> ExperimentResult:
    """Trace replay with trace-calibrated failures (Fig. 15).

    Failures strike at a Weibull-sampled fraction of each job's own
    runtime (Section V-F: ~50% of failures within 30s, 90% within 200s);
    nearly every job suffers one, which is what makes whole-job restart
    average a ~45% slowdown in the paper.
    """
    [base] = run_cells([
        Cell(_CELLS, "trace_base_latency_cell",
             {"n_jobs": n_jobs, "mean_interarrival": 0.3})
    ])
    result = ExperimentResult(
        name="fig15_trace_failures",
        notes="paper: job restart +45% average slowdown; Swift fine-grained +5%",
    )
    cells = [
        Cell(_CELLS, "trace_failure_cell",
             {"policy": policy, "n_jobs": n_jobs, "mean_interarrival": 0.3,
              "failure_rate": failure_rate, "seed": seed, "reference": base})
        for policy in ("swift", "restart")
    ]
    # Row labels match the policies' own names (restart_policy() is
    # "swift_restart"), exactly as the pre-cell implementation reported.
    for label, slowdowns in zip(("swift", "swift_restart"), run_cells(cells)):
        summary = four_quartile_summary(slowdowns)
        result.add(
            policy=label,
            mean_slowdown_pct=summary["iq_mean"],
            median_slowdown_pct=summary["median"],
            q3_slowdown_pct=summary["q3"],
        )
    return result


# ----------------------------------------------------------------------
# Fig. 16 — scalability
# ----------------------------------------------------------------------

def scalability_workload(
    n_jobs: int = 1200, tasks_per_stage: int = 120, work_seconds: float = 6.0,
    seed: int = 23,
) -> list[Job]:
    """A wide, short-task batch with parallelism far beyond 140k executors,
    matching "the workload is generated according to the production traces"
    (many concurrent small jobs)."""
    rng = random.Random(seed)
    config = traces.TraceConfig(n_jobs=n_jobs, blocking_probability=0.4, seed=seed)
    jobs: list[Job] = []
    for i in range(n_jobs):
        job = traces.generate_job(
            rng, f"scale_{i:05d}", config, submit_time=0.0,
            n_stages=rng.choice((1, 2, 2, 3)),
        )
        for stage in job.dag.stages.values():
            total_out = stage.output_bytes_per_task * stage.task_count
            total_scan = stage.scan_bytes_per_task * stage.task_count
            stage.task_count = max(8, int(tasks_per_stage * rng.uniform(0.5, 1.5)))
            # Preserve per-stage data volumes when widening the stage.
            stage.output_bytes_per_task = total_out / stage.task_count
            stage.scan_bytes_per_task = total_scan / stage.task_count
            stage.work_seconds_per_task = work_seconds * rng.uniform(0.5, 1.5)
        jobs.append(job)
    return jobs


def fig16_scalability(
    executor_counts: Sequence[int] = (10_000, 20_000, 40_000, 80_000, 140_000),
    n_machines: int = 2000,
    n_jobs: int = 2500,
    tasks_per_stage: int = 120,
    work_seconds: float = 4.0,
) -> ExperimentResult:
    """Strong scaling: same workload, growing executor pool (Fig. 16).

    Strong scaling to 14x requires the batch's total work to dwarf any
    single job's critical path (the paper replays a large production
    workload), hence the default of thousands of short wide jobs.
    """
    result = ExperimentResult(
        name="fig16_scalability",
        notes="paper: near-linear speedup from 10,000 to 140,000 executors",
    )
    cells = [
        Cell(_CELLS, "fig16_count_cell",
             {"count": count, "n_machines": n_machines, "n_jobs": n_jobs,
              "tasks_per_stage": tasks_per_stage, "work_seconds": work_seconds})
        for count in executor_counts
    ]
    for count, span in zip(executor_counts, run_cells(cells)):
        result.add(executors=count, makespan_s=span)
    base = float(result.rows[0]["makespan_s"])  # type: ignore[arg-type]
    base_count = executor_counts[0]
    for row in result.rows:
        row["speedup"] = base / float(row["makespan_s"])  # type: ignore[arg-type]
        row["ideal"] = float(row["executors"]) / base_count  # type: ignore[arg-type]
    return result
