"""Substrate benchmarks: event kernel, fast path, and parallel harness.

``python -m repro bench`` runs these scenarios and writes
``BENCH_simulator.json`` so the fast-path speedup is tracked in-repo
against the legacy kernel measured in the same file:

* **event_engine** — raw event throughput of the simulation kernel.
* **cancel_heavy** — throughput when most scheduled events are cancelled
  (exercises lazy deletion + heap compaction).
* **terasort** — end-to-end simulation rate of a 100x100 Terasort job.
  The baseline is the legacy one-event-per-task kernel
  (``fast_path=False``) driven by the pre-fast-path ``peek``/``step``
  loop; the measured run uses the finish-ledger fast path.  Results of
  the two kernels are byte-identical (see the determinism tests) — only
  the wall-clock differs.
* **parallel_replay** — wall-clock of a three-system trace replay,
  serial vs fanned across worker processes.
* **tracing** — Terasort simulation rate with the tracer disabled (the
  null-tracer hook threaded through the hot paths) vs recording every
  span; the disabled overhead is the guarded <2% regression budget.
* **chaos_smoke** — a fixed-seed chaos sweep (Terasort, standard
  profile): campaign throughput plus the invariant pass fraction, which
  is gated so a recovery regression fails ``repro bench --check``.

All timings are min-of-rounds ``perf_counter`` measurements; min (not
mean) is the standard way to suppress scheduler noise on shared machines.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional

from ..core.policies import swift_policy
from ..core.runtime import SwiftRuntime
from ..obs.tracer import RecordingTracer, Tracer
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from ..workloads import terasort
from .parallel import Cell, clear_memory_cache, execution_plan, run_cells

#: Module that hosts the picklable cell functions.
_CELLS = "repro.experiments.cells"


def _min_time(fn: Callable[[], object], rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time in seconds, plus the last return value."""
    best = float("inf")
    value: object = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def bench_event_engine(n_events: int = 100_000, rounds: int = 3) -> dict[str, float]:
    """Raw kernel throughput: schedule ``n_events`` no-op callbacks, drain."""
    def scenario() -> int:
        sim = Simulator()
        for i in range(n_events):
            sim.schedule(float(i % 97) / 10, _noop)
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events
    return {
        "n_events": n_events,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _noop() -> None:
    return None


def bench_cancel_heavy(
    n_events: int = 100_000, cancel_fraction: float = 0.75, rounds: int = 3
) -> dict[str, float]:
    """Kernel throughput when most events are cancelled before running.

    Mirrors failure-recovery replays, which schedule speculative recovery
    events and cancel nearly all of them; lazy deletion plus compaction
    must keep the heap small and ``pending_events`` O(1).
    """
    n_cancelled = int(n_events * cancel_fraction)

    def scenario() -> int:
        sim = Simulator()
        events = [
            sim.schedule(float(i % 97) / 10, _noop) for i in range(n_events)
        ]
        for event in events[:n_cancelled]:
            event.cancel()
        assert sim.pending_events() == n_events - n_cancelled
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events - n_cancelled
    return {
        "n_events": n_events,
        "cancel_fraction": cancel_fraction,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _run_terasort(m: int, n: int, fast_path: bool, peek_step: bool) -> int:
    """One Terasort run; returns the task count.  ``peek_step`` drives the
    simulation with the pre-fast-path peek/step loop (the legacy driver)."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=fast_path
    )
    runtime.submit(terasort.terasort_job(m, n))
    if peek_step:
        sim = runtime.sim
        while sim.peek_time() is not None:
            sim.step()
        results = runtime.results
    else:
        results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_terasort(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """End-to-end simulation rate: legacy kernel baseline vs fast path."""
    base_s, tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=False, peek_step=True), rounds
    )
    fast_s, fast_tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=True, peek_step=False), rounds
    )
    assert tasks == fast_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "baseline_ms": 1e3 * base_s,
        "fast_ms": 1e3 * fast_s,
        "baseline_tasks_per_s": tasks / base_s,
        "fast_tasks_per_s": tasks / fast_s,
        "speedup": base_s / fast_s,
    }


def _run_traced_terasort(m: int, n: int, tracer: Optional[Tracer]) -> int:
    """One fast-path Terasort run with ``tracer`` threaded through."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=True, tracer=tracer
    )
    runtime.submit(terasort.terasort_job(m, n))
    results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_tracing(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """Tracer-disabled vs recording simulation rate on Terasort."""
    off_s, tasks = _min_time(lambda: _run_traced_terasort(m, n, None), rounds)
    on_s, on_tasks = _min_time(
        lambda: _run_traced_terasort(m, n, RecordingTracer()), rounds
    )
    assert tasks == on_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "disabled_ms": 1e3 * off_s,
        "recording_ms": 1e3 * on_s,
        "disabled_tasks_per_s": tasks / off_s,
        "recording_tasks_per_s": tasks / on_s,
        "recording_overhead_pct": 100.0 * (on_s / off_s - 1.0),
    }


def bench_chaos_smoke(
    runs: int = 10, rounds: int = 1, audit: bool = True
) -> dict[str, float]:
    """Fixed-seed chaos sweep: campaign throughput plus pass fraction.

    The pass fraction doubles as a correctness gate: campaigns are fully
    deterministic, so any drop means a recovery-path regression, not
    timer noise.  ``audit`` additionally wires a resource-accounting
    ledger through every campaign, so unbalanced register/release pairs
    fail the ``resource-conservation`` invariant (and thus the gate).
    """
    from ..chaos import ChaosEngine

    def scenario() -> object:
        engine = ChaosEngine(
            workload="terasort", profile="standard", audit=audit
        )
        return engine.sweep(range(runs), shrink=False)

    elapsed, report = _min_time(scenario, rounds)
    passed = report.passed  # type: ignore[union-attr]
    return {
        "workload": "terasort",
        "profile": "standard",
        "runs": runs,
        "audit": audit,
        "passed": passed,
        "passed_fraction": passed / runs,
        "best_ms": 1e3 * elapsed,
        "campaigns_per_s": runs / elapsed,
    }


def bench_parallel_replay(
    n_jobs: int = 120, workers: int = 3, rounds: int = 1
) -> dict[str, float]:
    """Wall-clock of the three-system trace replay, serial vs fanned out.

    The result payloads are identical either way (the determinism tests
    assert it); this measures only the harness speedup.  Caches are
    cleared before each measurement so both runs do the full work.
    """
    cells = [
        Cell(_CELLS, "trace_replay_cell",
             {"policy": name, "n_jobs": n_jobs, "mean_interarrival": 0.08})
        for name in ("swift", "bubble", "jetscope")
    ]
    mode, effective_workers = execution_plan(len(cells), workers)
    saved_cache_env = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        def serial() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=1)

        def fanned() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=workers)

        serial_s, _ = _min_time(serial, rounds)
        if mode == "process-pool":
            fanned_s, _ = _min_time(fanned, rounds)
        else:
            # run_cells degrades the fanned run to serial (one usable CPU
            # or too few cells), so measuring it again would only report
            # timer noise as a fake sub-1x "speedup".
            fanned_s = serial_s
    finally:
        clear_memory_cache()
        if saved_cache_env is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_env
    return {
        "n_jobs": n_jobs,
        "workers": workers,
        "effective_workers": effective_workers,
        "mode": mode,
        # Fan-out only beats serial with real cores to spread across; the
        # count makes the serial degrade on a 1-core box interpretable.
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "parallel_s": fanned_s,
        "speedup": serial_s / fanned_s,
    }


# ----------------------------------------------------------------------
# SQL engine benchmarks (BENCH_sql.json)
# ----------------------------------------------------------------------

def _synthetic_tables(n_rows: int, seed: int = 7) -> dict[str, list[dict]]:
    """A lineitem/orders pair sized for SQL benchmarking.

    Wider value ranges than :func:`repro.sql.datagen.generate_database`
    (which targets example-sized databases) so selective predicates keep
    realistic selectivity at 100k rows.
    """
    import random

    rng = random.Random(seed)
    n_orders = max(1, n_rows // 10)
    flags, statuses = ("A", "N", "R"), ("F", "O")
    modes = ("AIR", "MAIL", "RAIL", "SHIP", "TRUCK")
    priorities = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
    lineitem = [
        {
            "l_orderkey": rng.randint(1, n_orders),
            "l_quantity": float(rng.randint(1, 50)),
            "l_extendedprice": round(rng.uniform(900.0, 105000.0), 2),
            "l_discount": round(rng.uniform(0.0, 0.10), 2),
            "l_tax": round(rng.uniform(0.0, 0.08), 2),
            "l_returnflag": rng.choice(flags),
            "l_linestatus": rng.choice(statuses),
            "l_shipdate": f"199{rng.randint(4, 8)}-{rng.randint(1, 12):02d}"
                          f"-{rng.randint(1, 28):02d}",
            "l_shipmode": rng.choice(modes),
        }
        for _ in range(n_rows)
    ]
    orders = [
        {
            "o_orderkey": key,
            "o_orderpriority": rng.choice(priorities),
            "o_totalprice": round(rng.uniform(1000.0, 400000.0), 2),
        }
        for key in range(1, n_orders + 1)
    ]
    return {"lineitem": lineitem, "orders": orders}


#: Q1-style grouped aggregation — the acceptance-criteria query.
_SQL_Q1 = """
    select l_returnflag, l_linestatus,
        sum(l_quantity) as sum_qty,
        sum(l_extendedprice) as sum_base_price,
        sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
        avg(l_quantity) as avg_qty,
        avg(l_extendedprice) as avg_price,
        avg(l_discount) as avg_disc,
        count(*) as count_order
    from lineitem
    where l_shipdate <= '1998-09-02'
    group by l_returnflag, l_linestatus
    order by l_returnflag, l_linestatus
"""

_SQL_FILTER_PROJECT = """
    select l_orderkey, l_extendedprice * (1 - l_discount) as revenue,
        l_shipmode
    from lineitem
    where l_shipdate >= '1996-01-01' and l_discount < 0.05
        and l_shipmode in ('AIR', 'RAIL')
"""

_SQL_HASH_JOIN = """
    select o_orderpriority, count(*) as n_items,
        sum(l_extendedprice) as total_price
    from lineitem l
    join orders o on l.l_orderkey = o.o_orderkey
    group by o_orderpriority
    order by o_orderpriority
"""


def _bench_sql_scenario(
    sql: str, database: dict[str, list[dict]], n_rows: int,
    row_rounds: int, columnar_rounds: int,
) -> dict[str, object]:
    """Row vs columnar wall time for one query; asserts identical rows."""
    from ..sql import DEFAULT_CATALOG, parse, plan_statement
    from ..sql.columnar import ColumnarExecutor
    from ..sql.executor import QueryExecutor

    plan = plan_statement(parse(sql), DEFAULT_CATALOG)
    row_s, row_rows = _min_time(
        lambda: QueryExecutor(database, DEFAULT_CATALOG).execute(plan),
        row_rounds,
    )
    columnar_s, columnar_rows = _min_time(
        lambda: ColumnarExecutor(database, DEFAULT_CATALOG).execute(plan),
        columnar_rounds,
    )
    if row_rows != columnar_rows:
        raise AssertionError("columnar result differs from the row engine")
    return {
        "n_rows": n_rows,
        "result_rows": len(row_rows),  # type: ignore[arg-type]
        "row_ms": 1e3 * row_s,
        "columnar_ms": 1e3 * columnar_s,
        "row_rows_per_s": n_rows / row_s,
        "columnar_rows_per_s": n_rows / columnar_s,
        "speedup": row_s / columnar_s,
    }


def run_sql_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run the SQL engine scenarios; the BENCH_sql.json payload."""
    def say(message: str) -> None:
        if echo:
            echo(message)

    n_rows = 20_000 if quick else 100_000
    # Two rounds keep the row baseline robust to a transient load spike
    # (min-of-rounds); quick mode stays single-round for speed.
    row_rounds = 1 if quick else 2
    columnar_rounds = 2 if quick else 3
    database = _synthetic_tables(n_rows)
    payload: dict[str, object] = {
        "generated_by": "python -m repro bench --suite sql"
                        + (" --quick" if quick else ""),
    }
    say("sql q1-style grouped aggregation ...")
    payload["q1_aggregate"] = _bench_sql_scenario(
        _SQL_Q1, database, n_rows, row_rounds, columnar_rounds
    )
    say("sql filter + project ...")
    payload["filter_project"] = _bench_sql_scenario(
        _SQL_FILTER_PROJECT, database, n_rows, row_rounds, columnar_rounds
    )
    say("sql hash join + aggregate ...")
    payload["hash_join"] = _bench_sql_scenario(
        _SQL_HASH_JOIN, database, n_rows, row_rounds, columnar_rounds
    )
    return payload


def write_sql_bench_file(
    path: str = "BENCH_sql.json",
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run the SQL benchmarks and write the JSON document to ``path``."""
    payload = run_sql_benchmarks(quick=quick, echo=echo)
    write_payload(path, payload)
    return payload


# ----------------------------------------------------------------------
# Regression checking (``repro bench --check``)
# ----------------------------------------------------------------------

#: Gated metrics per scenario.  Only *relative* measures (speedups):
#: absolute event/row rates vary too much across hosts to gate on.
CHECK_METRICS: dict[str, tuple[str, ...]] = {
    "terasort": ("speedup",),
    # Deterministic invariant pass fraction — a correctness gate, immune
    # to host speed, so it rides the same relative-drop machinery.
    "chaos_smoke": ("passed_fraction",),
    "parallel_replay": ("speedup",),
    "q1_aggregate": ("speedup",),
    "filter_project": ("speedup",),
    "hash_join": ("speedup",),
}


def compare_payloads(
    committed: dict[str, object],
    fresh: dict[str, object],
    tolerance: float = 0.25,
) -> list[str]:
    """Regression messages for gated metrics that dropped below tolerance.

    A metric regresses when ``fresh < committed * (1 - tolerance)``.
    Scenarios or metrics missing from either payload are skipped, so old
    bench files and ``--quick`` runs compare cleanly.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    problems: list[str] = []
    for scenario, metrics in CHECK_METRICS.items():
        old, new = committed.get(scenario), fresh.get(scenario)
        if not isinstance(old, dict) or not isinstance(new, dict):
            continue
        for metric in metrics:
            if metric not in old or metric not in new:
                continue
            committed_value = float(old[metric])
            fresh_value = float(new[metric])
            floor = committed_value * (1.0 - tolerance)
            if fresh_value < floor:
                problems.append(
                    f"{scenario}.{metric}: fresh {fresh_value:.2f} < "
                    f"committed {committed_value:.2f} - {tolerance:.0%} "
                    f"tolerance (floor {floor:.2f})"
                )
    return problems


def write_payload(path: str, payload: dict[str, object]) -> None:
    """Write one benchmark payload as an indented JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def run_benchmarks(
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
    audit: bool = True,
) -> dict[str, object]:
    """Run every scenario and return the BENCH_simulator.json payload.

    ``audit`` wires the resource-accounting ledger through the chaos
    smoke sweep (the committed payloads are generated with it on).
    """
    def say(message: str) -> None:
        if echo:
            echo(message)

    n_events = 20_000 if quick else 100_000
    rounds = 2 if quick else 5
    payload: dict[str, object] = {
        "generated_by": "python -m repro bench" + (" --quick" if quick else ""),
    }
    say("event engine ...")
    payload["event_engine"] = bench_event_engine(n_events=n_events, rounds=min(rounds, 3))
    say("cancel-heavy engine ...")
    payload["cancel_heavy"] = bench_cancel_heavy(n_events=n_events, rounds=min(rounds, 3))
    say("terasort fast path vs legacy kernel ...")
    payload["terasort"] = bench_terasort(rounds=rounds)
    say("tracing disabled vs recording ...")
    payload["tracing"] = bench_tracing(rounds=rounds)
    say("parallel replay harness ...")
    payload["parallel_replay"] = bench_parallel_replay(
        n_jobs=60 if quick else 120
    )
    say("chaos smoke sweep ...")
    payload["chaos_smoke"] = bench_chaos_smoke(
        runs=5 if quick else 10, audit=audit
    )
    return payload


def write_bench_file(
    path: str = "BENCH_simulator.json",
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run the benchmarks and write the JSON document to ``path``."""
    payload = run_benchmarks(quick=quick, echo=echo)
    write_payload(path, payload)
    return payload
