"""Substrate benchmarks: event kernel, fast path, and parallel harness.

``python -m repro bench`` runs these scenarios and writes
``BENCH_simulator.json`` so the fast-path speedup is tracked in-repo
against the legacy kernel measured in the same file:

* **event_engine** — raw event throughput of the simulation kernel.
* **cancel_heavy** — throughput when most scheduled events are cancelled
  (exercises lazy deletion + heap compaction).
* **terasort** — end-to-end simulation rate of a 100x100 Terasort job.
  The baseline is the legacy one-event-per-task kernel
  (``fast_path=False``) driven by the pre-fast-path ``peek``/``step``
  loop; the measured run uses the finish-ledger fast path.  Results of
  the two kernels are byte-identical (see the determinism tests) — only
  the wall-clock differs.
* **parallel_replay** — wall-clock of a three-system trace replay,
  serial vs fanned across worker processes.
* **tracing** — Terasort simulation rate with the tracer disabled (the
  null-tracer hook threaded through the hot paths) vs recording every
  span; the disabled overhead is the guarded <2% regression budget.

All timings are min-of-rounds ``perf_counter`` measurements; min (not
mean) is the standard way to suppress scheduler noise on shared machines.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional

from ..core.policies import swift_policy
from ..core.runtime import SwiftRuntime
from ..obs.tracer import RecordingTracer, Tracer
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from ..workloads import terasort
from .parallel import Cell, clear_memory_cache, run_cells

#: Module that hosts the picklable cell functions.
_CELLS = "repro.experiments.cells"


def _min_time(fn: Callable[[], object], rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time in seconds, plus the last return value."""
    best = float("inf")
    value: object = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def bench_event_engine(n_events: int = 100_000, rounds: int = 3) -> dict[str, float]:
    """Raw kernel throughput: schedule ``n_events`` no-op callbacks, drain."""
    def scenario() -> int:
        sim = Simulator()
        for i in range(n_events):
            sim.schedule(float(i % 97) / 10, _noop)
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events
    return {
        "n_events": n_events,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _noop() -> None:
    return None


def bench_cancel_heavy(
    n_events: int = 100_000, cancel_fraction: float = 0.75, rounds: int = 3
) -> dict[str, float]:
    """Kernel throughput when most events are cancelled before running.

    Mirrors failure-recovery replays, which schedule speculative recovery
    events and cancel nearly all of them; lazy deletion plus compaction
    must keep the heap small and ``pending_events`` O(1).
    """
    n_cancelled = int(n_events * cancel_fraction)

    def scenario() -> int:
        sim = Simulator()
        events = [
            sim.schedule(float(i % 97) / 10, _noop) for i in range(n_events)
        ]
        for event in events[:n_cancelled]:
            event.cancel()
        assert sim.pending_events() == n_events - n_cancelled
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events - n_cancelled
    return {
        "n_events": n_events,
        "cancel_fraction": cancel_fraction,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _run_terasort(m: int, n: int, fast_path: bool, peek_step: bool) -> int:
    """One Terasort run; returns the task count.  ``peek_step`` drives the
    simulation with the pre-fast-path peek/step loop (the legacy driver)."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=fast_path
    )
    runtime.submit(terasort.terasort_job(m, n))
    if peek_step:
        sim = runtime.sim
        while sim.peek_time() is not None:
            sim.step()
        results = runtime.results
    else:
        results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_terasort(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """End-to-end simulation rate: legacy kernel baseline vs fast path."""
    base_s, tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=False, peek_step=True), rounds
    )
    fast_s, fast_tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=True, peek_step=False), rounds
    )
    assert tasks == fast_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "baseline_ms": 1e3 * base_s,
        "fast_ms": 1e3 * fast_s,
        "baseline_tasks_per_s": tasks / base_s,
        "fast_tasks_per_s": tasks / fast_s,
        "speedup": base_s / fast_s,
    }


def _run_traced_terasort(m: int, n: int, tracer: Optional[Tracer]) -> int:
    """One fast-path Terasort run with ``tracer`` threaded through."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=True, tracer=tracer
    )
    runtime.submit(terasort.terasort_job(m, n))
    results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_tracing(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """Tracer-disabled vs recording simulation rate on Terasort."""
    off_s, tasks = _min_time(lambda: _run_traced_terasort(m, n, None), rounds)
    on_s, on_tasks = _min_time(
        lambda: _run_traced_terasort(m, n, RecordingTracer()), rounds
    )
    assert tasks == on_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "disabled_ms": 1e3 * off_s,
        "recording_ms": 1e3 * on_s,
        "disabled_tasks_per_s": tasks / off_s,
        "recording_tasks_per_s": tasks / on_s,
        "recording_overhead_pct": 100.0 * (on_s / off_s - 1.0),
    }


def bench_parallel_replay(
    n_jobs: int = 120, workers: int = 3, rounds: int = 1
) -> dict[str, float]:
    """Wall-clock of the three-system trace replay, serial vs fanned out.

    The result payloads are identical either way (the determinism tests
    assert it); this measures only the harness speedup.  Caches are
    cleared before each measurement so both runs do the full work.
    """
    cells = [
        Cell(_CELLS, "trace_replay_cell",
             {"policy": name, "n_jobs": n_jobs, "mean_interarrival": 0.08})
        for name in ("swift", "bubble", "jetscope")
    ]
    saved_cache_env = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        def serial() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=1)

        def fanned() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=workers)

        serial_s, _ = _min_time(serial, rounds)
        fanned_s, _ = _min_time(fanned, rounds)
    finally:
        clear_memory_cache()
        if saved_cache_env is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_env
    return {
        "n_jobs": n_jobs,
        "workers": workers,
        # Fan-out only beats serial with real cores to spread across; the
        # count makes a sub-1x speedup on a 1-core box interpretable.
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "parallel_s": fanned_s,
        "speedup": serial_s / fanned_s,
    }


def run_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run every scenario and return the BENCH_simulator.json payload."""
    def say(message: str) -> None:
        if echo:
            echo(message)

    n_events = 20_000 if quick else 100_000
    rounds = 2 if quick else 5
    payload: dict[str, object] = {
        "generated_by": "python -m repro bench" + (" --quick" if quick else ""),
    }
    say("event engine ...")
    payload["event_engine"] = bench_event_engine(n_events=n_events, rounds=min(rounds, 3))
    say("cancel-heavy engine ...")
    payload["cancel_heavy"] = bench_cancel_heavy(n_events=n_events, rounds=min(rounds, 3))
    say("terasort fast path vs legacy kernel ...")
    payload["terasort"] = bench_terasort(rounds=rounds)
    say("tracing disabled vs recording ...")
    payload["tracing"] = bench_tracing(rounds=rounds)
    say("parallel replay harness ...")
    payload["parallel_replay"] = bench_parallel_replay(
        n_jobs=60 if quick else 120
    )
    return payload


def write_bench_file(
    path: str = "BENCH_simulator.json",
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run the benchmarks and write the JSON document to ``path``."""
    payload = run_benchmarks(quick=quick, echo=echo)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload
