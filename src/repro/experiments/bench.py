"""Substrate benchmarks: event kernel, fast path, and parallel harness.

``python -m repro bench`` runs these scenarios and writes
``BENCH_simulator.json`` so the fast-path speedup is tracked in-repo
against the legacy kernel measured in the same file:

* **event_engine** — raw event throughput of the simulation kernel.
* **cancel_heavy** — throughput when most scheduled events are cancelled
  (exercises lazy deletion + heap compaction).
* **terasort** — end-to-end simulation rate of a 100x100 Terasort job.
  The baseline is the legacy one-event-per-task kernel
  (``fast_path=False``) driven by the pre-fast-path ``peek``/``step``
  loop; the measured run uses the finish-ledger fast path.  Results of
  the two kernels are byte-identical (see the determinism tests) — only
  the wall-clock differs.
* **parallel_replay** — wall-clock of a three-system trace replay,
  serial vs fanned across worker processes.
* **tracing** — Terasort simulation rate with the tracer disabled (the
  null-tracer hook threaded through the hot paths) vs recording every
  span; the disabled overhead is the guarded <2% regression budget.
* **chaos_smoke** — a fixed-seed chaos sweep (Terasort, standard
  profile): campaign throughput plus the invariant pass fraction, which
  is gated so a recovery regression fails ``repro bench --check``.
* **service** — the multi-tenant job gateway replaying the tenant
  arrival trace vs. direct ``submit_all`` of the same jobs; the
  gateway's wall-clock overhead is gated under a 10% budget.

All timings are min-of-rounds ``perf_counter`` measurements; min (not
mean) is the standard way to suppress scheduler noise on shared machines.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Callable, Optional

from ..core.policies import swift_policy
from ..core.runtime import SwiftRuntime
from ..obs.tracer import RecordingTracer, Tracer
from ..sim.cluster import Cluster
from ..sim.engine import LegacySimulator, Simulator
from ..workloads import terasort
from ..workloads.traces import (
    PAPER_SCALE_EXECUTORS,
    PAPER_SCALE_MACHINES,
    paper_scale_trace,
    tenant_arrival_trace,
)
from .parallel import Cell, clear_memory_cache, execution_plan, run_cells

#: Module that hosts the picklable cell functions.
_CELLS = "repro.experiments.cells"


def _min_time(fn: Callable[[], object], rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time in seconds, plus the last return value.

    GC is paused during the timed region so a collection triggered by one
    scenario's allocations does not land in another scenario's timing.
    """
    best = float("inf")
    value: object = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            gc.collect()
            started = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()
    return best, value


def bench_event_engine(n_events: int = 100_000, rounds: int = 3) -> dict[str, float]:
    """Raw kernel throughput: schedule ``n_events`` no-op callbacks, drain."""
    def scenario() -> int:
        sim = Simulator()
        for i in range(n_events):
            sim.schedule(float(i % 97) / 10, _noop)
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events
    return {
        "n_events": n_events,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _noop() -> None:
    return None


def bench_cancel_heavy(
    n_events: int = 100_000, cancel_fraction: float = 0.75, rounds: int = 3
) -> dict[str, float]:
    """Kernel throughput when most events are cancelled before running.

    Mirrors failure-recovery replays, which schedule speculative recovery
    events and cancel nearly all of them; lazy deletion plus compaction
    must keep the heap small and ``pending_events`` O(1).
    """
    n_cancelled = int(n_events * cancel_fraction)

    def scenario() -> int:
        sim = Simulator()
        events = [
            sim.schedule(float(i % 97) / 10, _noop) for i in range(n_events)
        ]
        for event in events[:n_cancelled]:
            event.cancel()
        assert sim.pending_events() == n_events - n_cancelled
        sim.run()
        return sim.events_processed

    elapsed, processed = _min_time(scenario, rounds)
    assert processed == n_events - n_cancelled
    return {
        "n_events": n_events,
        "cancel_fraction": cancel_fraction,
        "best_ms": 1e3 * elapsed,
        "events_per_s": n_events / elapsed,
    }


def _run_terasort(m: int, n: int, fast_path: bool, peek_step: bool) -> int:
    """One Terasort run; returns the task count.  ``peek_step`` drives the
    simulation with the pre-fast-path peek/step loop (the legacy driver)."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=fast_path
    )
    runtime.submit(terasort.terasort_job(m, n))
    if peek_step:
        sim = runtime.sim
        while sim.peek_time() is not None:
            sim.step()
        results = runtime.results
    else:
        results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_terasort(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """End-to-end simulation rate: legacy kernel baseline vs fast path."""
    base_s, tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=False, peek_step=True), rounds
    )
    fast_s, fast_tasks = _min_time(
        lambda: _run_terasort(m, n, fast_path=True, peek_step=False), rounds
    )
    assert tasks == fast_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "baseline_ms": 1e3 * base_s,
        "fast_ms": 1e3 * fast_s,
        "baseline_tasks_per_s": tasks / base_s,
        "fast_tasks_per_s": tasks / fast_s,
        "speedup": base_s / fast_s,
    }


def _run_traced_terasort(m: int, n: int, tracer: Optional[Tracer]) -> int:
    """One fast-path Terasort run with ``tracer`` threaded through."""
    runtime = SwiftRuntime(
        Cluster.build(20, 16), swift_policy(), fast_path=True, tracer=tracer
    )
    runtime.submit(terasort.terasort_job(m, n))
    results = runtime.run()
    return len(results[0].metrics.tasks)


def bench_tracing(m: int = 100, n: int = 100, rounds: int = 5) -> dict[str, float]:
    """Tracer-disabled vs recording simulation rate on Terasort."""
    off_s, tasks = _min_time(lambda: _run_traced_terasort(m, n, None), rounds)
    on_s, on_tasks = _min_time(
        lambda: _run_traced_terasort(m, n, RecordingTracer()), rounds
    )
    assert tasks == on_tasks
    return {
        "job": f"terasort_{m}x{n}",
        "tasks": tasks,
        "disabled_ms": 1e3 * off_s,
        "recording_ms": 1e3 * on_s,
        "disabled_tasks_per_s": tasks / off_s,
        "recording_tasks_per_s": tasks / on_s,
        "recording_overhead_pct": 100.0 * (on_s / off_s - 1.0),
    }


def bench_chaos_smoke(
    runs: int = 10, rounds: int = 1, audit: bool = True
) -> dict[str, float]:
    """Fixed-seed chaos sweep: campaign throughput plus pass fraction.

    The pass fraction doubles as a correctness gate: campaigns are fully
    deterministic, so any drop means a recovery-path regression, not
    timer noise.  ``audit`` additionally wires a resource-accounting
    ledger through every campaign, so unbalanced register/release pairs
    fail the ``resource-conservation`` invariant (and thus the gate).
    """
    from ..chaos import ChaosEngine

    def scenario() -> object:
        engine = ChaosEngine(
            workload="terasort", profile="standard", audit=audit
        )
        return engine.sweep(range(runs), shrink=False)

    elapsed, report = _min_time(scenario, rounds)
    passed = report.passed  # type: ignore[union-attr]
    return {
        "workload": "terasort",
        "profile": "standard",
        "runs": runs,
        "audit": audit,
        "passed": passed,
        "passed_fraction": passed / runs,
        "best_ms": 1e3 * elapsed,
        "campaigns_per_s": runs / elapsed,
    }


def bench_parallel_replay(
    n_jobs: int = 120, workers: int = 3, rounds: int = 1
) -> dict[str, float]:
    """Wall-clock of the three-system trace replay, serial vs fanned out.

    The result payloads are identical either way (the determinism tests
    assert it); this measures only the harness speedup.  Caches are
    cleared before each measurement so both runs do the full work.
    """
    cells = [
        Cell(_CELLS, "trace_replay_cell",
             {"policy": name, "n_jobs": n_jobs, "mean_interarrival": 0.08})
        for name in ("swift", "bubble", "jetscope")
    ]
    mode, effective_workers = execution_plan(len(cells), workers)
    saved_cache_env = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        def serial() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=1)

        def fanned() -> object:
            clear_memory_cache()
            return run_cells(cells, jobs=workers)

        serial_s, _ = _min_time(serial, rounds)
        if mode == "process-pool":
            fanned_s, _ = _min_time(fanned, rounds)
        else:
            # run_cells degrades the fanned run to serial (one usable CPU
            # or too few cells), so measuring it again would only report
            # timer noise as a fake sub-1x "speedup".
            fanned_s = serial_s
    finally:
        clear_memory_cache()
        if saved_cache_env is not None:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_env
    return {
        "n_jobs": n_jobs,
        "workers": workers,
        "effective_workers": effective_workers,
        "mode": mode,
        # Fan-out only beats serial with real cores to spread across; the
        # count makes the serial degrade on a 1-core box interpretable.
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "parallel_s": fanned_s,
        "speedup": serial_s / fanned_s,
    }


# ----------------------------------------------------------------------
# Paper-scale replay (``repro bench --suite scale``)
# ----------------------------------------------------------------------

def _run_scale_replay(kernel: str, jobs: list, n_machines: int, executors: int) -> object:
    """One end-to-end trace replay on ``kernel``; returns the runtime."""
    runtime = SwiftRuntime(
        Cluster.build(n_machines, executors),
        swift_policy(),
        # The legacy per-task-event path: every task launch/finish flows
        # through the kernel queue, which is exactly what this scenario
        # measures (the finish-ledger fast path bypasses the kernel).
        fast_path=False,
        kernel=kernel,
    )
    runtime.submit_all(jobs)
    runtime.run()
    return runtime


def _kernel_event_plan(jobs: list) -> list[tuple[float, Callable[..., object], tuple]]:
    """Flatten a trace into raw kernel events (two per task).

    The plan preserves the trace's arrival process and stage structure —
    event times are the task start/finish instants a replay would schedule —
    but drops the runtime, so feeding it to a kernel measures pure
    event-queue throughput at the replay's real queue depths.
    """
    items: list[tuple[float, Callable[..., object], tuple]] = []
    for job in jobs:
        offset = 0.0
        for stage in job.dag:
            duration = stage.work_seconds_per_task or 1.0
            for index in range(stage.task_count):
                start = job.submit_time + offset + (index % 97) * 0.003
                items.append((start, _noop, ()))
                items.append((start + duration, _noop, ()))
            offset += duration + 1.0
    return items


def _replay_kernel_events(
    sim_cls: type, items: list, cancel_every: int = 4
) -> tuple[int, int]:
    """Push the event plan through one kernel; returns (executed, peak).

    A quarter of the events are shadowed by speculative duplicates that are
    cancelled before running — the recovery-churn pattern that exercises
    lazy deletion and compaction at scale.
    """
    sim = sim_cls()
    scheduled = sim.schedule_batch(items)
    assert scheduled == len(items)
    speculative = [
        sim.schedule(items[i][0] + 0.5, _noop)
        for i in range(0, len(items), cancel_every)
    ]
    for event in speculative:
        event.cancel()
    sim.run()
    return sim.events_processed, sim.peak_pending


def bench_scale(quick: bool = False, rounds: int = 2) -> dict[str, float]:
    """Paper-scale calibrated replay: 2,000 machines, Fig. 8 trace.

    Two measurements share the same calibrated trace generator:

    * **end-to-end** — the full runtime replays the trace on a
      2,000-machine cluster through the per-task-event path, on the
      array-backed kernel and on the legacy object-heap oracle; wall
      time, events, queue high-water mark, and makespan come from here.
    * **kernel replay** — the same trace flattened to raw task start/finish
      events (plus a cancelled speculative shadow) drives both kernels
      directly; this is the paper-scale ``events_per_s`` headline and the
      undiluted kernel comparison.

    Quick mode shrinks the trace and cluster but keeps both measurements'
    structure, so ``--check`` ratios compare across modes.
    """
    n_machines = 200 if quick else PAPER_SCALE_MACHINES
    executors = PAPER_SCALE_EXECUTORS
    max_stage_tasks = 150 if quick else 700
    replay_jobs = paper_scale_trace(
        n_jobs=60 if quick else 200, max_stage_tasks=max_stage_tasks
    )
    kernel_jobs = paper_scale_trace(
        n_jobs=300 if quick else 2000, max_stage_tasks=max_stage_tasks
    )

    replay_s, runtime = _min_time(
        lambda: _run_scale_replay("array", replay_jobs, n_machines, executors),
        rounds,
    )
    legacy_replay_s, legacy_runtime = _min_time(
        lambda: _run_scale_replay("legacy", replay_jobs, n_machines, executors),
        rounds,
    )
    sim = runtime.sim  # type: ignore[attr-defined]
    results = runtime.results  # type: ignore[attr-defined]
    tasks = sum(len(r.metrics.tasks) for r in results)
    legacy_results = legacy_runtime.results  # type: ignore[attr-defined]
    assert tasks == sum(len(r.metrics.tasks) for r in legacy_results)

    plan = _kernel_event_plan(kernel_jobs)
    kernel_s, stats = _min_time(
        lambda: _replay_kernel_events(Simulator, plan), rounds
    )
    legacy_kernel_s, legacy_stats = _min_time(
        lambda: _replay_kernel_events(LegacySimulator, plan), rounds
    )
    executed, peak = stats  # type: ignore[misc]
    assert (executed, peak) == legacy_stats

    return {
        "n_machines": n_machines,
        "executors_per_machine": executors,
        "replay_jobs": len(replay_jobs),
        "replay_tasks": tasks,
        "replay_wall_s": replay_s,
        "replay_legacy_wall_s": legacy_replay_s,
        "replay_tasks_per_s": tasks / replay_s,
        "replay_events": sim.events_processed,
        "replay_peak_pending": sim.peak_pending,
        "replay_makespan_s": max(r.metrics.finish_time for r in results),
        "replay_speedup": legacy_replay_s / replay_s,
        "kernel_jobs": len(kernel_jobs),
        "kernel_events": executed,
        "kernel_peak_pending": peak,
        "kernel_wall_ms": 1e3 * kernel_s,
        "kernel_legacy_wall_ms": 1e3 * legacy_kernel_s,
        "events_per_s": executed / kernel_s,
        "kernel_speedup": legacy_kernel_s / kernel_s,
    }


# ----------------------------------------------------------------------
# Service gateway benchmark (``--suite service``)
# ----------------------------------------------------------------------


def bench_service(quick: bool = False, rounds: int = 2) -> dict[str, float]:
    """Gateway overhead vs. direct ``submit_all`` on the tenant trace.

    Both modes replay the same multi-tenant Poisson arrival trace
    (:func:`repro.workloads.traces.tenant_arrival_trace`) on the same
    cluster.  **direct** hands the whole batch to
    ``SwiftRuntime.submit_all`` up front; **gateway** streams every
    arrival through a permissive :class:`repro.service.JobGateway`
    (unlimited quotas, admission disabled), so the measured delta is
    pure gateway machinery — per-arrival admission checks, fair-share /
    EDF queue maintenance, slot-claim bookkeeping — rather than
    admission shaping.  ``overhead_frac`` is gated against the <10%
    wall-clock budget; ``direct_vs_gateway`` rides the usual relative
    ``--check`` machinery.
    """
    from ..service.gateway import JobGateway
    from ..service.stats import distribution

    n_machines = 200 if quick else PAPER_SCALE_MACHINES
    executors = PAPER_SCALE_EXECUTORS
    # Quick mode caps stages at 100 tasks so the largest graphlet gang
    # (738 slots) still fits the 800-slot quick cluster — the direct
    # path has no admission control to shed oversize jobs.
    jobs = tenant_arrival_trace(
        n_tenants=200 if quick else 1000,
        n_jobs=400 if quick else 2000,
        max_stage_tasks=100 if quick else 700,
    )
    # The gateway stamps dispatch times back onto ``Job.submit_time``,
    # so each round restores the trace's arrival schedule first.
    schedule = [(job, job.submit_time) for job in jobs]

    def restore() -> None:
        for job, at in schedule:
            job.submit_time = at

    def run_direct() -> SwiftRuntime:
        restore()
        runtime = SwiftRuntime(Cluster.build(n_machines, executors), swift_policy())
        runtime.submit_all(jobs)
        runtime.run()
        return runtime

    def run_gateway() -> JobGateway:
        restore()
        runtime = SwiftRuntime(Cluster.build(n_machines, executors), swift_policy())
        gateway = JobGateway(runtime)
        gateway.submit_trace(jobs)
        runtime.run()
        return gateway

    direct_s, direct_runtime = _min_time(run_direct, rounds)
    gateway_s, gateway = _min_time(run_gateway, rounds)

    results = direct_runtime.results  # type: ignore[attr-defined]
    entries = gateway.entries  # type: ignore[attr-defined]
    finished = [e for e in entries if e.status in ("completed", "failed")]
    # A permissive gateway must not shape the workload: every arrival
    # dispatches and finishes, exactly as in the direct replay.
    assert len(finished) == len(results) == len(jobs)
    queue_dist = distribution([e.queue_time for e in finished])

    return {
        "n_machines": n_machines,
        "executors_per_machine": executors,
        "n_arrivals": len(jobs),
        "n_tenants": len({job.tenant for job in jobs}),
        "direct_s": direct_s,
        "gateway_s": gateway_s,
        "overhead_frac": gateway_s / direct_s - 1.0,
        "direct_vs_gateway": direct_s / gateway_s,
        "queue_time_p50_s": queue_dist["p50"],
        "queue_time_p95_s": queue_dist["p95"],
        "queue_time_p99_s": queue_dist["p99"],
        "rejected": sum(1 for e in entries if e.status == "rejected"),
        "deadline_overruns": sum(1 for e in finished if e.overrun > 0.0),
    }


def run_service_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run only the service gateway scenario (``--suite service``).

    Returns a payload fragment with just the ``service`` entry; writers
    merge it into the committed BENCH_simulator.json.
    """
    if echo:
        echo("service gateway vs direct submit_all ...")
    return {"service": bench_service(quick=quick)}


# ----------------------------------------------------------------------
# Shuffle v2 recovery benchmark (``--suite shuffle``)
# ----------------------------------------------------------------------


def _run_shuffle_loss(
    replication_factor: int, m: int, n: int, machine_id: int, at_fraction: float
) -> dict[str, float]:
    """One variant: baseline makespan, then makespan under a single
    injected Cache Worker loss.  All times are *simulated* seconds, so the
    measurement is deterministic and host-independent."""
    from ..sim.config import SimConfig
    from ..sim.failures import FailureKind, FailurePlan, FailureSpec

    config = SimConfig()
    config.shuffle.replication_factor = replication_factor

    baseline_rt = SwiftRuntime(Cluster.build(20, 16), swift_policy(), config=config)
    baseline = baseline_rt.execute(terasort.terasort_job(m, n))
    assert baseline.completed
    baseline_makespan = baseline.metrics.finish_time

    plan = FailurePlan().add(
        FailureSpec(
            kind=FailureKind.CACHE_WORKER_LOSS,
            machine_id=machine_id,
            at_fraction=at_fraction,
        )
    )
    loss_rt = SwiftRuntime(
        Cluster.build(20, 16),
        swift_policy(),
        config=config,
        failure_plan=plan,
        reference_duration=baseline_makespan,
    )
    result = loss_rt.execute(terasort.terasort_job(m, n))
    assert result.completed
    log = loss_rt.shuffle_recovery_log
    return {
        "baseline_makespan_s": baseline_makespan,
        "loss_makespan_s": result.metrics.finish_time,
        "recovery_s": result.metrics.finish_time - baseline_makespan,
        "reruns": sum(1 for r in log if r["action"] == "rerun"),
        "failovers": sum(1 for r in log if r["action"] == "failover"),
    }


#: Smallest recovery time credited to a variant; a perfect failover
#: recovers in zero *simulated* seconds, and a ratio against exactly 0
#: would be infinite (and unserializable as strict JSON).
_RECOVERY_FLOOR_S = 1e-3


def bench_shuffle_recovery(
    quick: bool = False, m: int = 128, n: int = 128, at_fraction: float = 0.55
) -> dict[str, float]:
    """Recovery time under Cache Worker loss: shuffle v2 vs v1.

    Both variants replay the same Terasort (its cross-unit edge is large
    enough to resolve to Remote Shuffle, so the data lives in Cache
    Workers) and lose the same Cache Worker at the same fraction of the
    failure-free makespan.  **v1** (``replication_factor=1``) must
    re-generate the lost shares through producer re-runs; **v2** (the
    default factor 2) fails over to surviving replicas.  The
    ``recovery_improvement`` ratio (v1 recovery time over v2's) is gated
    strictly above 1.0 by ``--check``.  Simulated-time measurement: the
    numbers are deterministic, so the usual relative tolerance only ever
    trips on a real behaviour change.
    """
    machine_id = 0  # always a primary under the [:y] placement
    v1 = _run_shuffle_loss(1, m, n, machine_id, at_fraction)
    v2 = _run_shuffle_loss(2, m, n, machine_id, at_fraction)
    # The gate is only meaningful if the injection really exercised both
    # paths: v1 re-ran producers, v2 served every share from replicas.
    assert v1["reruns"] > 0, "v1 run never hit the producer-rerun path"
    assert v2["reruns"] == 0 and v2["failovers"] > 0, (
        "v2 run did not fail over to replicas"
    )
    v1_recovery = max(v1["recovery_s"], _RECOVERY_FLOOR_S)
    v2_recovery = max(v2["recovery_s"], _RECOVERY_FLOOR_S)
    return {
        "job": f"terasort_{m}x{n}",
        "machine_lost": machine_id,
        "at_fraction": at_fraction,
        "baseline_makespan_s": v2["baseline_makespan_s"],
        "v1_makespan_s": v1["loss_makespan_s"],
        "v2_makespan_s": v2["loss_makespan_s"],
        "v1_recovery_s": v1["recovery_s"],
        "v2_recovery_s": v2["recovery_s"],
        "v1_reruns": v1["reruns"],
        "v2_failovers": v2["failovers"],
        "recovery_improvement": v1_recovery / v2_recovery,
    }


def run_shuffle_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run only the shuffle recovery scenario (``--suite shuffle``).

    Returns a payload fragment with just the ``shuffle`` entry; writers
    merge it into the committed BENCH_simulator.json.
    """
    if echo:
        echo("shuffle v2 vs v1 recovery under cache worker loss ...")
    return {"shuffle": bench_shuffle_recovery(quick=quick)}


# ----------------------------------------------------------------------
# SQL engine benchmarks (BENCH_sql.json)
# ----------------------------------------------------------------------

def _synthetic_tables(n_rows: int, seed: int = 7) -> dict[str, list[dict]]:
    """A lineitem/orders pair sized for SQL benchmarking.

    Wider value ranges than :func:`repro.sql.datagen.generate_database`
    (which targets example-sized databases) so selective predicates keep
    realistic selectivity at 100k rows.
    """
    import random

    rng = random.Random(seed)
    n_orders = max(1, n_rows // 10)
    flags, statuses = ("A", "N", "R"), ("F", "O")
    modes = ("AIR", "MAIL", "RAIL", "SHIP", "TRUCK")
    priorities = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
    lineitem = [
        {
            "l_orderkey": rng.randint(1, n_orders),
            "l_quantity": float(rng.randint(1, 50)),
            "l_extendedprice": round(rng.uniform(900.0, 105000.0), 2),
            "l_discount": round(rng.uniform(0.0, 0.10), 2),
            "l_tax": round(rng.uniform(0.0, 0.08), 2),
            "l_returnflag": rng.choice(flags),
            "l_linestatus": rng.choice(statuses),
            "l_shipdate": f"199{rng.randint(4, 8)}-{rng.randint(1, 12):02d}"
                          f"-{rng.randint(1, 28):02d}",
            "l_shipmode": rng.choice(modes),
        }
        for _ in range(n_rows)
    ]
    orders = [
        {
            "o_orderkey": key,
            "o_orderpriority": rng.choice(priorities),
            "o_totalprice": round(rng.uniform(1000.0, 400000.0), 2),
        }
        for key in range(1, n_orders + 1)
    ]
    return {"lineitem": lineitem, "orders": orders}


#: Q1-style grouped aggregation — the acceptance-criteria query.
_SQL_Q1 = """
    select l_returnflag, l_linestatus,
        sum(l_quantity) as sum_qty,
        sum(l_extendedprice) as sum_base_price,
        sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
        avg(l_quantity) as avg_qty,
        avg(l_extendedprice) as avg_price,
        avg(l_discount) as avg_disc,
        count(*) as count_order
    from lineitem
    where l_shipdate <= '1998-09-02'
    group by l_returnflag, l_linestatus
    order by l_returnflag, l_linestatus
"""

_SQL_FILTER_PROJECT = """
    select l_orderkey, l_extendedprice * (1 - l_discount) as revenue,
        l_shipmode
    from lineitem
    where l_shipdate >= '1996-01-01' and l_discount < 0.05
        and l_shipmode in ('AIR', 'RAIL')
"""

_SQL_HASH_JOIN = """
    select o_orderpriority, count(*) as n_items,
        sum(l_extendedprice) as total_price
    from lineitem l
    join orders o on l.l_orderkey = o.o_orderkey
    group by o_orderpriority
    order by o_orderpriority
"""


def _bench_sql_scenario(
    sql: str, database: dict[str, list[dict]], n_rows: int,
    row_rounds: int, columnar_rounds: int,
) -> dict[str, object]:
    """Row vs columnar wall time for one query; asserts identical rows.

    The row engine scans the row-dict lists directly; the columnar engine
    scans the same logical data pre-encoded as :class:`ColumnTable` arrays
    (its native resident layout), so each engine is timed on the storage
    format it would own in a real deployment.  Encoding happens once here,
    outside the timed region, and the result sets are asserted identical.
    """
    from ..sql import DEFAULT_CATALOG, parse, plan_statement
    from ..sql.batch import ColumnTable
    from ..sql.columnar import ColumnarExecutor
    from ..sql.executor import QueryExecutor

    plan = plan_statement(parse(sql), DEFAULT_CATALOG)
    columnar_db = {
        name: ColumnTable.from_rows(rows) for name, rows in database.items()
    }
    row_s, row_rows = _min_time(
        lambda: QueryExecutor(database, DEFAULT_CATALOG).execute(plan),
        row_rounds,
    )
    columnar_s, columnar_rows = _min_time(
        lambda: ColumnarExecutor(columnar_db, DEFAULT_CATALOG).execute(plan),
        columnar_rounds,
    )
    if row_rows != columnar_rows:
        raise AssertionError("columnar result differs from the row engine")
    return {
        "n_rows": n_rows,
        "result_rows": len(row_rows),  # type: ignore[arg-type]
        "row_ms": 1e3 * row_s,
        "columnar_ms": 1e3 * columnar_s,
        "row_rows_per_s": n_rows / row_s,
        "columnar_rows_per_s": n_rows / columnar_s,
        "speedup": row_s / columnar_s,
    }


def run_sql_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run the SQL engine scenarios; the BENCH_sql.json payload."""
    def say(message: str) -> None:
        if echo:
            echo(message)

    n_rows = 20_000 if quick else 100_000
    # Two rounds keep the row baseline robust to a transient load spike
    # (min-of-rounds); quick mode stays single-round for speed.
    row_rounds = 1 if quick else 2
    columnar_rounds = 2 if quick else 3
    database = _synthetic_tables(n_rows)
    payload: dict[str, object] = {
        "generated_by": "python -m repro bench --suite sql"
                        + (" --quick" if quick else ""),
    }
    scenarios = [
        ("q1_aggregate", "sql q1-style grouped aggregation ...", _SQL_Q1),
        ("filter_project", "sql filter + project ...", _SQL_FILTER_PROJECT),
        ("hash_join", "sql hash join + aggregate ...", _SQL_HASH_JOIN),
    ]
    for key, banner, sql in scenarios:
        say(banner)
        payload[key] = _bench_sql_scenario(
            sql, database, n_rows, row_rounds, columnar_rounds
        )
    if not quick:
        # 1M-row scenarios: the row engine takes tens of seconds per pass
        # here, so a single row round (min-of-1) keeps the suite tractable.
        large_rows = 1_000_000
        large_db = _synthetic_tables(large_rows)
        for key, banner, sql in scenarios:
            say(banner.replace("sql ", "sql 1M-row "))
            payload[f"{key}_1m"] = _bench_sql_scenario(
                sql, large_db, large_rows, row_rounds=1, columnar_rounds=2
            )
    return payload


def write_sql_bench_file(
    path: str = "BENCH_sql.json",
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run the SQL benchmarks and write the JSON document to ``path``."""
    payload = run_sql_benchmarks(quick=quick, echo=echo)
    write_payload(path, payload)
    return payload


# ----------------------------------------------------------------------
# Regression checking (``repro bench --check``)
# ----------------------------------------------------------------------

#: Gated metrics per scenario.  Only *relative* measures (speedups):
#: absolute event/row rates vary too much across hosts to gate on.
CHECK_METRICS: dict[str, tuple[str, ...]] = {
    "terasort": ("speedup",),
    # Deterministic invariant pass fraction — a correctness gate, immune
    # to host speed, so it rides the same relative-drop machinery.
    "chaos_smoke": ("passed_fraction",),
    "parallel_replay": ("speedup",),
    # Paper-scale replay: the kernel-vs-legacy ratio is host-relative and
    # kernel-dominated.  replay_speedup stays ungated: the end-to-end
    # replay dilutes the kernel with scheduling work, so its ratio is too
    # close to 1 to separate regressions from timer noise on quick runs.
    "scale": ("kernel_speedup",),
    # SQL engines: only the row-vs-columnar speedup is gated — absolute
    # per-engine ms swing with host load, the ratio does not.  A fresh
    # run at a different n_rows (e.g. --quick's 20k vs the committed
    # 100k) is skipped entirely in compare_payloads: columnar speedups
    # grow with batch size, so cross-size ratios are not comparable.
    "q1_aggregate": ("speedup",),
    "filter_project": ("speedup",),
    "hash_join": ("speedup",),
    "q1_aggregate_1m": ("speedup",),
    "filter_project_1m": ("speedup",),
    "hash_join_1m": ("speedup",),
    # Gateway wall-clock relative to direct submit_all (~1.0 when the
    # gateway is free); the absolute <10% overhead budget is enforced
    # separately below.
    "service": ("direct_vs_gateway",),
    # Simulated (deterministic) recovery-time ratio of shuffle v1 over v2
    # under an injected Cache Worker loss; the absolute >1.0 floor is
    # enforced separately below.
    "shuffle": ("recovery_improvement",),
}

#: Hard ceiling on ``service.overhead_frac`` — the gateway must cost
#: less than 10% wall-clock over direct ``submit_all`` (ISSUE 7
#: acceptance gate), regardless of what the committed payload recorded.
SERVICE_OVERHEAD_CEILING = 0.10

#: Hard floor on ``shuffle.recovery_improvement`` — v2 (replicated
#: failover) must recover strictly faster than v1 (producer reruns)
#: under the same Cache Worker loss, regardless of the committed value.
SHUFFLE_RECOVERY_FLOOR = 1.0


def compare_payloads(
    committed: dict[str, object],
    fresh: dict[str, object],
    tolerance: float = 0.25,
) -> list[str]:
    """Regression messages for gated metrics that dropped below tolerance.

    A metric regresses when ``fresh < committed * (1 - tolerance)``.
    Scenarios or metrics missing from either payload are skipped, so old
    bench files and ``--quick`` runs compare cleanly.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    problems: list[str] = []
    for scenario, metrics in CHECK_METRICS.items():
        old, new = committed.get(scenario), fresh.get(scenario)
        if not isinstance(old, dict) or not isinstance(new, dict):
            continue
        if scenario == "parallel_replay" and (
            old.get("mode") != "process-pool" or new.get("mode") != "process-pool"
        ):
            # A serial-degraded run (1-CPU host, too few cells) commits
            # speedup 1.0 by construction; gating on that degenerate
            # number would flag any healthy multi-core run that later
            # compares against it (or vice versa).
            continue
        if (
            "n_rows" in old
            and "n_rows" in new
            and old["n_rows"] != new["n_rows"]
        ):
            # Different table sizes measure different regimes (quick runs
            # use 20k rows against a committed 100k payload; columnar
            # speedup scales with batch size), so the ratio comparison
            # would be apples-to-oranges.
            continue
        for metric in metrics:
            if metric not in old or metric not in new:
                continue
            committed_value = float(old[metric])
            fresh_value = float(new[metric])
            floor = committed_value * (1.0 - tolerance)
            if fresh_value < floor:
                problems.append(
                    f"{scenario}.{metric}: fresh {fresh_value:.2f} < "
                    f"committed {committed_value:.2f} - {tolerance:.0%} "
                    f"tolerance (floor {floor:.2f})"
                )
    service = fresh.get("service")
    if isinstance(service, dict) and "overhead_frac" in service:
        overhead = float(service["overhead_frac"])
        if overhead >= SERVICE_OVERHEAD_CEILING:
            problems.append(
                f"service.overhead_frac: fresh {overhead:.1%} >= "
                f"{SERVICE_OVERHEAD_CEILING:.0%} gateway overhead budget"
            )
    shuffle = fresh.get("shuffle")
    if isinstance(shuffle, dict) and "recovery_improvement" in shuffle:
        improvement = float(shuffle["recovery_improvement"])
        if improvement <= SHUFFLE_RECOVERY_FLOOR:
            problems.append(
                f"shuffle.recovery_improvement: fresh {improvement:.2f} <= "
                f"{SHUFFLE_RECOVERY_FLOOR:.1f} — replicated failover must "
                "beat producer-rerun recovery"
            )
    return problems


def write_payload(path: str, payload: dict[str, object]) -> None:
    """Write one benchmark payload as an indented JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def run_benchmarks(
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
    audit: bool = True,
) -> dict[str, object]:
    """Run every scenario and return the BENCH_simulator.json payload.

    ``audit`` wires the resource-accounting ledger through the chaos
    smoke sweep (the committed payloads are generated with it on).
    """
    def say(message: str) -> None:
        if echo:
            echo(message)

    n_events = 20_000 if quick else 100_000
    rounds = 2 if quick else 5
    payload: dict[str, object] = {
        "generated_by": "python -m repro bench" + (" --quick" if quick else ""),
    }
    # Full rounds for the two kernel scenarios: they are the cheapest to
    # repeat and the most timer-noise-sensitive (sub-300ms best times).
    say("event engine ...")
    payload["event_engine"] = bench_event_engine(n_events=n_events, rounds=rounds)
    say("cancel-heavy engine ...")
    payload["cancel_heavy"] = bench_cancel_heavy(n_events=n_events, rounds=rounds)

    def resample_kernels() -> None:
        # Shared hosts drift by 1.3-1.5x on a timescale of minutes, which
        # is longer than one scenario's rounds but shorter than the whole
        # suite.  A second sample of the cheap kernel scenarios at the end
        # of the run keeps the best-of-rounds principle while spanning the
        # drift window; the faster sample wins.
        say("event engine (resample) ...")
        for key, fn in (
            ("event_engine", bench_event_engine),
            ("cancel_heavy", bench_cancel_heavy),
        ):
            first = payload[key]
            second = fn(n_events=n_events, rounds=rounds)
            assert isinstance(first, dict)
            if second["events_per_s"] > first["events_per_s"]:
                payload[key] = second
    say("terasort fast path vs legacy kernel ...")
    payload["terasort"] = bench_terasort(rounds=rounds)
    say("tracing disabled vs recording ...")
    payload["tracing"] = bench_tracing(rounds=rounds)
    say("parallel replay harness ...")
    payload["parallel_replay"] = bench_parallel_replay(
        n_jobs=60 if quick else 120
    )
    say("chaos smoke sweep ...")
    payload["chaos_smoke"] = bench_chaos_smoke(
        runs=5 if quick else 10, audit=audit
    )
    say("paper-scale trace replay ...")
    payload["scale"] = bench_scale(quick=quick)
    say("service gateway vs direct submit_all ...")
    payload["service"] = bench_service(quick=quick)
    say("shuffle v2 vs v1 recovery under cache worker loss ...")
    payload["shuffle"] = bench_shuffle_recovery(quick=quick)
    resample_kernels()
    return payload


def run_scale_benchmarks(
    quick: bool = False, echo: Optional[Callable[[str], None]] = None
) -> dict[str, object]:
    """Run only the paper-scale scenario (``--suite scale``).

    Returns a payload fragment with just the ``scale`` entry; writers merge
    it into the committed BENCH_simulator.json instead of replacing the
    other scenarios.
    """
    if echo:
        echo("paper-scale trace replay ...")
    return {"scale": bench_scale(quick=quick)}


def merge_payload(path: str, payload: dict[str, object]) -> dict[str, object]:
    """Merge ``payload`` scenarios into the JSON document at ``path``.

    Existing scenarios not present in ``payload`` are preserved, so a
    single-suite run (``--suite scale``) updates its entry in place.
    """
    merged: dict[str, object] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            merged = json.load(handle)
    merged.update(payload)
    write_payload(path, merged)
    return merged


def write_bench_file(
    path: str = "BENCH_simulator.json",
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run the benchmarks and write the JSON document to ``path``."""
    payload = run_benchmarks(quick=quick, echo=echo)
    write_payload(path, payload)
    return payload
