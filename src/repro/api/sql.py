"""SQL facade: engine-dispatched query execution with typed outcomes.

Thin, fully-typed wrapper over :mod:`repro.sql.dispatch`: one call runs a
query on the columnar engine when every operator is supported and on the
row executor otherwise, and reports which engine ran in the returned
:class:`~repro.sql.dispatch.QueryOutcome`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..sql.catalog import Catalog
from ..sql.dispatch import QueryOutcome, engine_for, execute_sql

Row = dict[str, Any]
Database = dict[str, list[Row]]


def run_sql(
    sql: str,
    database: Database,
    *,
    engine: str = "auto",
    catalog: Optional[Catalog] = None,
    batch_size: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> QueryOutcome:
    """Run ``sql`` over ``database`` on the selected engine.

    ``engine`` is ``"auto"`` (default: columnar when the whole plan is
    supported, row otherwise), ``"row"``, or ``"columnar"``.  The outcome
    carries the result rows plus the engine that actually ran and why.
    ``batch_size=None`` (default) lets the columnar engine scan whole
    tables in single batches; pass a size to bound peak memory.
    """
    outcome: QueryOutcome = execute_sql(
        sql, database, catalog, engine=engine, batch_size=batch_size,
        tracer=tracer, metrics=metrics,
    )
    return outcome


def sql_engine_for(
    sql: str, database: Database, catalog: Optional[Catalog] = None
) -> tuple[str, str]:
    """``(engine, reason)`` that ``engine="auto"`` would pick for ``sql``."""
    chosen: tuple[str, str] = engine_for(sql, database, catalog)
    return chosen


__all__ = ["Database", "QueryOutcome", "Row", "run_sql", "sql_engine_for"]
