"""repro.api — the stable public facade.

This package is the documented entry point to the reproduction: build a
:class:`RuntimeConfig`, hand jobs to :class:`Simulation` (one-shot runs) or
:class:`Runtime` (incremental submit/run), and read typed
:class:`SimulationResult` objects back — optionally with a structured trace
(:class:`TraceConfig`) exported for Perfetto or JSONL consumers.

Multi-tenant runs go through :class:`Service` instead: arrivals stream in
through a :class:`repro.service.JobGateway` (quotas, admission control,
earliest-deadline-first dispatch) and :class:`ServiceResult` carries
per-tenant time-in-queue / makespan / deadline-overrun percentile reports.

Deep imports (``repro.core``, ``repro.sim``, ...) keep working, but new
code and the docs use this facade::

    from repro.api import RuntimeConfig, Simulation, TraceConfig
    from repro.workloads import terasort

    sim = Simulation(RuntimeConfig(n_machines=20, executors_per_machine=16))
    outcome = sim.run(terasort.terasort_job(50, 50), trace=True)
    print(outcome.makespan, len(outcome.trace))
"""

from ..audit import AuditError, AuditViolation, ResourceLedger
from ..chaos import Campaign, CampaignResult, ChaosEngine, ChaosReport
from ..core.dag import Edge, EdgeMode, Job, JobDAG, Stage
from ..core.metrics import JobMetrics, PhaseBreakdown, TaskTiming
from ..core.policies import (
    ExecutionPolicy,
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
    swift_policy,
)
from ..core.runtime import JobResult, RuntimeDrainedError
from ..core.shuffle import ShuffleScheme
from ..service.policy import AdmissionPolicy, QueuePolicy, TenantSpec
from ..service.stats import TenantReport
from ..obs import (
    MetricsRegistry,
    RecordingTracer,
    TraceRecord,
    Tracer,
)
from ..sim.config import SimConfig
from ..sim.failures import FailureKind, FailurePlan, FailureSpec
from .config import RuntimeConfig
from .service import Service, ServiceConfig, ServiceResult, SubmitHandle
from .simulation import Simulation, SimulationResult, TraceConfig, Runtime
from .sql import QueryOutcome, run_sql, sql_engine_for

__all__ = [
    "AdmissionPolicy",
    "AuditError",
    "AuditViolation",
    "Campaign",
    "CampaignResult",
    "ChaosEngine",
    "ChaosReport",
    "Edge",
    "EdgeMode",
    "ExecutionPolicy",
    "FailureKind",
    "FailurePlan",
    "FailureRecovery",
    "FailureSpec",
    "Job",
    "JobDAG",
    "JobMetrics",
    "JobResult",
    "LaunchModel",
    "MetricsRegistry",
    "PhaseBreakdown",
    "QueryOutcome",
    "QueuePolicy",
    "RecordingTracer",
    "ResourceLedger",
    "Runtime",
    "RuntimeConfig",
    "RuntimeDrainedError",
    "Service",
    "ServiceConfig",
    "ServiceResult",
    "ShuffleScheme",
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "Stage",
    "SubmissionOrder",
    "SubmitHandle",
    "TaskTiming",
    "TenantReport",
    "TenantSpec",
    "TraceConfig",
    "TraceRecord",
    "Tracer",
    "run_sql",
    "sql_engine_for",
    "swift_policy",
]
