"""The ``Service`` facade: multi-tenant submission over one runtime.

``Service`` is the stable front end of :mod:`repro.service` — the
simulated counterpart of submitting jobs to Swift as a hosted service
(PAPER.md §I/§VI) instead of handing the runtime a pre-built batch::

    from repro.api import AdmissionPolicy, Service, ServiceConfig, TenantSpec
    from repro.workloads.traces import tenant_arrival_trace

    config = ServiceConfig(
        tenants=[TenantSpec(name="bi", weight=2.0, max_concurrent_jobs=8)],
        admission=AdmissionPolicy(max_pool_pressure=4.0),
    )
    service = Service(config)
    service.submit_trace(tenant_arrival_trace(n_tenants=50, n_jobs=200))
    result = service.run()
    print(result.tenants["bi"].queue_time["p95"], result.rejected)

Jobs flow: arrival event -> admission (quota / pool-pressure checks) ->
per-tenant EDF queue -> weighted fair-share dispatch into the runtime's
unified ``submit`` path -> completion hook -> per-tenant percentile
reports.  Everything is driven by simulator events, so a given arrival
trace + policy configuration replays byte-identically.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ..core.dag import Job
from ..core.runtime import JobResult
from ..obs.metrics import MetricsRegistry, collect_jobs
from ..obs.records import TraceRecord
from ..obs.tracer import RecordingTracer
from ..service.gateway import JobEntry, JobGateway
from ..service.policy import (
    AdmissionPolicy,
    QueuePolicy,
    TenantSpec,
    default_tenant_template,
)
from ..service.stats import TenantReport, distribution
from .config import RuntimeConfig
from .simulation import Runtime, TraceOption, _resolve_tracer


@dataclass
class ServiceConfig:
    """Everything needed to build a runnable multi-tenant service.

    Wraps a :class:`RuntimeConfig` (cluster + policy + calibration) with
    the gateway's tenant roster, admission policy, and queueing policy.
    Round-trips through :meth:`to_dict`/:meth:`from_dict` like every
    other facade config.
    """

    #: Cluster/runtime configuration the service runs on.
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Pre-registered tenants (quotas, weights, priorities).
    tenants: list[TenantSpec] = field(default_factory=list)
    #: When arrivals are rejected instead of queued.
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: How queued arrivals are ordered for dispatch.
    queue: QueuePolicy = field(default_factory=QueuePolicy)
    #: Quota template applied when an unknown tenant auto-registers.
    default_tenant: TenantSpec = field(default_factory=default_tenant_template)
    #: Auto-register unknown tenants (False rejects them on arrival).
    auto_register: bool = True

    def validate(self) -> "ServiceConfig":
        """Validate every field; returns self so calls can chain."""
        self.runtime.validate()
        seen: set[str] = set()
        for spec in self.tenants:
            spec.validate()
            if spec.name in seen:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            seen.add(spec.name)
        self.admission.validate()
        self.queue.validate()
        self.default_tenant.validate()
        return self

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a JSON-serializable document (see :meth:`from_dict`)."""
        return {
            "runtime": self.runtime.to_dict(),
            "tenants": [spec.to_dict() for spec in self.tenants],
            "admission": self.admission.to_dict(),
            "queue": self.queue.to_dict(),
            "default_tenant": self.default_tenant.to_dict(),
            "auto_register": self.auto_register,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        config = cls(
            runtime=RuntimeConfig.from_dict(payload.get("runtime", {})),
            tenants=[
                TenantSpec.from_dict(item) for item in payload.get("tenants", [])
            ],
            admission=AdmissionPolicy.from_dict(payload.get("admission", {})),
            queue=QueuePolicy.from_dict(payload.get("queue", {})),
            default_tenant=TenantSpec.from_dict(
                payload.get("default_tenant", default_tenant_template().to_dict())
            ),
            auto_register=bool(payload.get("auto_register", True)),
        )
        return config.validate()


class SubmitHandle:
    """A live view of one submitted arrival; resolves after ``run()``."""

    def __init__(self, entry: JobEntry) -> None:
        self._entry = entry

    @property
    def job_id(self) -> str:
        """The submitted job's identifier."""
        return self._entry.job_id

    @property
    def tenant(self) -> str:
        """The tenant the arrival was attributed to."""
        return self._entry.tenant

    @property
    def deadline(self) -> Optional[float]:
        """The resolved absolute deadline, if any."""
        return self._entry.deadline

    @property
    def status(self) -> str:
        """``pending``/``queued``/``running``/``completed``/``failed``/``rejected``."""
        return self._entry.status

    @property
    def rejected(self) -> bool:
        """True when admission control shed this arrival."""
        return self._entry.status == "rejected"

    @property
    def reject_reason(self) -> str:
        """Why admission rejected it (empty when admitted)."""
        return self._entry.reject_reason

    @property
    def queue_time(self) -> float:
        """Seconds spent queued at the gateway (nan until dispatched)."""
        return self._entry.queue_time

    @property
    def makespan(self) -> float:
        """Arrival-to-finish seconds (nan until finished)."""
        return self._entry.makespan

    @property
    def deadline_overrun(self) -> float:
        """Seconds finished past the deadline (0 when met or no SLO)."""
        return self._entry.overrun

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SubmitHandle {self.job_id} tenant={self.tenant} {self.status}>"


@dataclass
class ServiceResult:
    """Typed outcome of one :meth:`Service.run` call."""

    #: Per-job runtime results, in completion order (rejected jobs absent).
    results: list[JobResult]
    #: Per-tenant percentile reports, keyed and sorted by tenant name.
    tenants: dict[str, TenantReport] = field(default_factory=dict)
    #: The gateway's full per-arrival ledger, in submission order.
    entries: list[JobEntry] = field(default_factory=list)
    #: Trace records of the run (empty when tracing was disabled).
    trace: list[TraceRecord] = field(default_factory=list)
    #: Aggregated counters/gauges/histograms of the run.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Files written by the trace export step.
    trace_files: list[str] = field(default_factory=list)
    #: Resource-accounting summary (``None`` unless auditing was on).
    audit: Optional[dict[str, object]] = None
    #: Deterministic per-job queue-time table (CSV text).
    csv: str = ""

    @property
    def submitted(self) -> int:
        """Total arrivals the gateway saw."""
        return len(self.entries)

    @property
    def admitted(self) -> int:
        """Arrivals that passed admission control."""
        return sum(1 for e in self.entries if e.status != "rejected")

    @property
    def rejected(self) -> int:
        """Arrivals shed by admission control."""
        return sum(1 for e in self.entries if e.status == "rejected")

    @property
    def deadline_overruns(self) -> int:
        """Jobs that finished past their deadline."""
        return sum(report.deadline_overruns for report in self.tenants.values())

    @property
    def makespan(self) -> float:
        """Finish time of the last job (0 for an empty run)."""
        if not self.results:
            return 0.0
        return max(r.metrics.finish_time for r in self.results)

    def tenant(self, name: str) -> TenantReport:
        """One tenant's report by name."""
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"no report for tenant {name!r}") from None

    def to_dict(self) -> dict[str, Any]:
        """The summary.json payload: totals plus per-tenant reports."""
        queue_times = [
            e.queue_time
            for e in self.entries
            if e.status in ("completed", "failed") and not math.isnan(e.queue_time)
        ]
        makespans = [
            e.makespan
            for e in self.entries
            if e.status in ("completed", "failed") and not math.isnan(e.makespan)
        ]
        return {
            "totals": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": sum(1 for e in self.entries if e.status == "completed"),
                "failed": sum(1 for e in self.entries if e.status == "failed"),
                "deadline_overruns": self.deadline_overruns,
                "makespan": self.makespan,
                "queue_time": distribution(queue_times),
                "job_makespan": distribution(makespans),
            },
            "tenants": {
                name: report.to_dict() for name, report in self.tenants.items()
            },
        }

    def write_queue_csv(self, path: str) -> str:
        """Write the queue-time CSV to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.csv)
        return path

    def write_summary(self, path: str) -> str:
        """Write the summary JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


class Service:
    """Multi-tenant job-submission service over one simulated cluster.

    Construction builds the cluster, runtime, and gateway; ``submit`` /
    ``submit_trace`` schedule arrivals as simulator events; ``run``
    executes everything and returns a :class:`ServiceResult` with
    per-tenant time-in-queue / makespan / deadline-overrun percentile
    reports.  A ``Service`` is single-shot, like the runtime it wraps:
    build a fresh one per replay.
    """

    def __init__(
        self,
        config: Union[ServiceConfig, RuntimeConfig, None] = None,
        trace: TraceOption = None,
    ) -> None:
        if config is None:
            config = ServiceConfig()
        elif isinstance(config, RuntimeConfig):
            config = ServiceConfig(runtime=config)
        self.config = config.validate()
        tracer, self._trace_config = _resolve_tracer(trace)
        self._runtime = Runtime(self.config.runtime, tracer=tracer)
        self.gateway = JobGateway(
            self._runtime.inner,
            tenants=self.config.tenants,
            admission=self.config.admission,
            queue_policy=self.config.queue,
            default_tenant=self.config.default_tenant,
            auto_register=self.config.auto_register,
        )
        self._ran = False

    @property
    def runtime(self) -> Runtime:
        """The underlying :class:`Runtime` facade (advanced introspection)."""
        return self._runtime

    def register(self, spec: TenantSpec) -> None:
        """Register (or update) a tenant before or between arrivals."""
        self.gateway.register(spec)

    def submit(
        self,
        job: Job,
        *,
        tenant: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> SubmitHandle:
        """Schedule one arrival at ``job.submit_time``.

        ``tenant`` and ``deadline`` override the job's own fields.  The
        handle resolves (status, queue time, overrun) once :meth:`run`
        has executed the arrival.
        """
        return SubmitHandle(self.gateway.submit(job, tenant=tenant, deadline=deadline))

    def submit_trace(self, jobs: Sequence[Job]) -> list[SubmitHandle]:
        """Bulk-schedule an arrival trace (jobs carry tenant/deadline)."""
        return [SubmitHandle(entry) for entry in self.gateway.submit_trace(jobs)]

    def run(self, until: Optional[float] = None) -> ServiceResult:
        """Drain every scheduled arrival and build the per-tenant report."""
        if self._ran:
            raise RuntimeError(
                "Service.run already executed; build a fresh Service per replay"
            )
        self._ran = True
        results = self._runtime.run(until=until)
        outcome = ServiceResult(
            results=list(results),
            tenants=self.gateway.reports(),
            entries=list(self.gateway.entries),
            csv=self.gateway.queue_csv(),
        )
        if self._runtime.ledger is not None:
            outcome.audit = self._runtime.ledger.summary()
        tracer = self._runtime.tracer
        if isinstance(tracer, RecordingTracer):
            outcome.trace = list(tracer.records)
            outcome.metrics = tracer.metrics
        else:
            collect_jobs(outcome.metrics, (r.metrics for r in results))
        if self._trace_config is not None and isinstance(tracer, RecordingTracer):
            for path in self._trace_config.output_paths():
                if path.endswith(".jsonl"):
                    tracer.export_jsonl(path)
                else:
                    tracer.export_chrome(path)
                outcome.trace_files.append(path)
        return outcome
