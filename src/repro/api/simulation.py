"""The stable high-level entry points: ``Simulation`` and ``Runtime``.

These wrap cluster construction, runtime wiring, tracing, and export into
two small classes so that user code (and the figure scripts) never reaches
into private runtime fields.  Deep imports keep working, but this facade is
the documented surface.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..audit.ledger import ResourceLedger
from ..core.dag import Job
from ..core.runtime import JobResult, SwiftRuntime
from ..obs.metrics import MetricsRegistry, collect_jobs
from ..obs.records import TraceRecord
from ..obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from ..sim.cluster import Cluster
from .config import RuntimeConfig

#: ``Simulation.run(trace=...)`` accepts a config, a ready tracer, or a bool.
TraceOption = Union["TraceConfig", Tracer, bool, None]


@dataclass(frozen=True)
class TraceConfig:
    """How a run should be traced and where the export should land.

    ``path`` is a base name; the exporters append ``.json`` (Chrome
    ``trace_event``, loadable in Perfetto) and/or ``.jsonl``.  With
    ``path=None`` the records stay in memory on the result object.
    """

    enabled: bool = True
    path: Optional[str] = None
    #: ``"chrome"``, ``"jsonl"``, or ``"both"``.
    format: str = "chrome"
    #: Also record every simulator-engine event (very verbose).
    engine_events: bool = False

    _FORMATS = ("chrome", "jsonl", "both")

    def __post_init__(self) -> None:
        if self.format not in self._FORMATS:
            raise ValueError(f"format must be one of {self._FORMATS}")

    def make_tracer(self) -> Tracer:
        """Build the tracer this config describes."""
        if not self.enabled:
            return NULL_TRACER
        return RecordingTracer(engine_events=self.engine_events)

    def output_paths(self) -> list[str]:
        """The files :meth:`SimulationResult.export` will write."""
        if self.path is None:
            return []
        base = self.path
        for suffix in (".json", ".jsonl"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        paths = []
        if self.format in ("chrome", "both"):
            paths.append(base + ".json")
        if self.format in ("jsonl", "both"):
            paths.append(base + ".jsonl")
        return paths


def _resolve_tracer(trace: TraceOption) -> tuple[Tracer, Optional[TraceConfig]]:
    if trace is None or trace is False:
        return NULL_TRACER, None
    if trace is True:
        return RecordingTracer(), None
    if isinstance(trace, TraceConfig):
        return trace.make_tracer(), trace
    return trace, None


@dataclass
class SimulationResult:
    """Typed outcome of one :meth:`Simulation.run` call."""

    results: list[JobResult]
    #: Trace records of the run (empty when tracing was disabled).
    trace: list[TraceRecord] = field(default_factory=list)
    #: Aggregated counters/gauges/histograms of the run.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Files written by the export step (when a trace path was configured).
    trace_files: list[str] = field(default_factory=list)
    #: Resource-accounting summary (``None`` unless the config set
    #: ``audit=True``); see :meth:`repro.audit.ResourceLedger.summary`.
    audit: Optional[dict[str, object]] = None

    @property
    def completed(self) -> bool:
        """True when every job completed without failing."""
        return all(r.completed for r in self.results)

    @property
    def makespan(self) -> float:
        """Finish time of the last job (0 for an empty run)."""
        if not self.results:
            return 0.0
        return max(r.metrics.finish_time for r in self.results)

    @property
    def mean_latency(self) -> float:
        """Average end-to-end job latency (0 for an empty run)."""
        if not self.results:
            return 0.0
        return sum(r.metrics.latency for r in self.results) / len(self.results)

    def job(self, job_id: str) -> JobResult:
        """The result of one job by id."""
        for result in self.results:
            if result.job_id == job_id:
                return result
        raise KeyError(f"no result for job {job_id!r}")


class Runtime:
    """Facade over :class:`~repro.core.runtime.SwiftRuntime` construction.

    Builds the cluster and runtime from one :class:`RuntimeConfig` and
    exposes the submit/run lifecycle.  The underlying runtime stays
    reachable as :attr:`inner` for advanced introspection.
    """

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = (config or RuntimeConfig()).validate()
        cluster = Cluster.build(
            self.config.n_machines,
            self.config.executors_per_machine,
            config=self.config.sim,
        )
        self.inner = SwiftRuntime(
            cluster,
            self.config.policy,
            config=self.config.sim,
            failure_plan=self.config.failure_plan,
            reference_duration=self.config.reference_duration,
            fast_path=self.config.fast_path,
            tracer=tracer,
            audit=self.config.audit,
            audit_strict=self.config.audit_strict,
        )

    @property
    def ledger(self) -> Optional["ResourceLedger"]:
        """The resource-accounting ledger (``None`` unless ``audit=True``)."""
        return self.inner.ledger

    @property
    def tracer(self) -> Tracer:
        """The tracer threaded through the runtime and engine."""
        return self.inner.tracer

    def submit(self, workload: Union[Job, Sequence[Job]]) -> None:
        """Queue a job — or a whole batch — at their submit times.

        This is the one documented submission path: ``Simulation.run`` and
        the :class:`Service` gateway both funnel through it.  Accepts a
        single :class:`~repro.core.dag.Job` or any sequence of jobs.
        """
        batch = [workload] if isinstance(workload, Job) else list(workload)
        self.inner.submit_all(batch)

    def submit_all(self, jobs: Sequence[Job]) -> None:
        """Deprecated alias for :meth:`submit` (which now takes batches)."""
        warnings.warn(
            "Runtime.submit_all is deprecated; Runtime.submit accepts a "
            "sequence of jobs directly",
            DeprecationWarning,
            stacklevel=2,
        )
        self.submit(jobs)

    def run(self, until: Optional[float] = None) -> list[JobResult]:
        """Run to completion (or ``until``); returns per-job results."""
        return self.inner.run(until=until)

    def execute(self, job: Job) -> JobResult:
        """Deprecated one-shot helper; use ``submit(job)`` + ``run()``."""
        warnings.warn(
            "Runtime.execute is deprecated; use submit(job) followed by "
            "run() and read the returned results",
            DeprecationWarning,
            stacklevel=2,
        )
        self.submit(job)
        self.run()
        for result in self.inner.results:
            if result.job_id == job.job_id:
                return result
        raise RuntimeError(f"job {job.job_id} did not complete")


class Simulation:
    """One-call simulation runner: jobs in, typed traced results out."""

    def __init__(self, config: Optional[RuntimeConfig] = None) -> None:
        self.config = (config or RuntimeConfig()).validate()

    def with_config(self, **overrides: object) -> "Simulation":
        """A new Simulation with top-level config fields replaced."""
        return Simulation(dataclasses.replace(self.config, **overrides))  # type: ignore[arg-type]

    def run(
        self,
        workload: Union[Job, Sequence[Job], None] = None,
        trace: TraceOption = None,
        until: Optional[float] = None,
        *,
        jobs: Union[Job, Sequence[Job], None] = None,
    ) -> SimulationResult:
        """Execute a workload (one job or a batch) on a fresh cluster.

        ``trace`` may be ``True`` (record in memory), a :class:`TraceConfig`
        (record and export), a ready :class:`~repro.obs.tracer.Tracer`, or
        ``None``/``False`` for the zero-overhead disabled path.  The
        ``jobs=`` keyword is a deprecated alias for ``workload``.
        """
        if jobs is not None:
            if workload is not None:
                raise TypeError("pass either workload or jobs=, not both")
            warnings.warn(
                "Simulation.run(jobs=...) is deprecated; pass the workload "
                "positionally or as workload=...",
                DeprecationWarning,
                stacklevel=2,
            )
            workload = jobs
        if workload is None:
            raise TypeError("Simulation.run needs a workload (a Job or a sequence)")
        tracer, trace_config = _resolve_tracer(trace)
        runtime = Runtime(self.config, tracer=tracer)
        runtime.submit(workload)
        results = runtime.run(until=until)
        outcome = SimulationResult(results=list(results))
        if runtime.ledger is not None:
            outcome.audit = runtime.ledger.summary()
        if isinstance(tracer, RecordingTracer):
            outcome.trace = list(tracer.records)
            outcome.metrics = tracer.metrics
        else:
            collect_jobs(outcome.metrics, (r.metrics for r in results))
        if trace_config is not None and isinstance(tracer, RecordingTracer):
            for path in trace_config.output_paths():
                if path.endswith(".jsonl"):
                    tracer.export_jsonl(path)
                else:
                    tracer.export_chrome(path)
                outcome.trace_files.append(path)
        return outcome
