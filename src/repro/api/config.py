"""Typed configuration for the public API.

:class:`RuntimeConfig` consolidates what used to be a spread of ad-hoc
``SwiftRuntime.__init__`` keyword arguments plus the
:class:`~repro.sim.config.SimConfig` knobs into one validated dataclass
with a ``to_dict``/``from_dict`` round trip, so experiment specs and CLI
invocations can be persisted and replayed exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Union

from ..core.partition import (
    BubblePartitioner,
    Partitioner,
    StagePartitioner,
    SwiftPartitioner,
    WholeJobPartitioner,
)
from ..core.policies import (
    ExecutionPolicy,
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
    swift_policy,
)
from ..core.shuffle import ShuffleScheme
from ..sim.config import (
    AdminConfig,
    CacheWorkerConfig,
    DiskConfig,
    ExecutorConfig,
    NetworkConfig,
    RetryConfig,
    ShuffleConfig,
    SimConfig,
)
from ..sim.failures import FailureKind, FailurePlan, FailureSpec

#: Partitioner registry used by the policy round trip.
_PARTITIONERS: dict[str, type] = {
    "swift": SwiftPartitioner,
    "whole_job": WholeJobPartitioner,
    "per_stage": StagePartitioner,
    "bubble": BubblePartitioner,
}

#: ``reference_duration`` accepts one global value or a per-job mapping.
ReferenceDuration = Union[float, dict[str, float]]


def _policy_to_dict(policy: ExecutionPolicy) -> dict[str, Any]:
    return {
        "name": policy.name,
        "partitioner": policy.partitioner.name,
        "submission": policy.submission.value,
        "shuffle": policy.shuffle.value,
        "cross_unit_shuffle": (
            None if policy.cross_unit_shuffle is None
            else policy.cross_unit_shuffle.value
        ),
        "launch": policy.launch.value,
        "recovery": policy.recovery.value,
        "pipelined_execution": policy.pipelined_execution,
        "gang": policy.gang,
    }


def _policy_from_dict(payload: Mapping[str, Any]) -> ExecutionPolicy:
    partitioner_name = str(payload.get("partitioner", "swift"))
    partitioner_cls = _PARTITIONERS.get(partitioner_name)
    if partitioner_cls is None:
        raise ValueError(f"unknown partitioner {partitioner_name!r}")
    partitioner: Partitioner = partitioner_cls()
    cross = payload.get("cross_unit_shuffle")
    return ExecutionPolicy(
        name=str(payload.get("name", "swift")),
        partitioner=partitioner,
        submission=SubmissionOrder(payload.get("submission", "conservative")),
        shuffle=ShuffleScheme(payload.get("shuffle", "adaptive")),
        cross_unit_shuffle=None if cross is None else ShuffleScheme(cross),
        launch=LaunchModel(payload.get("launch", "prelaunched")),
        recovery=FailureRecovery(payload.get("recovery", "fine_grained")),
        pipelined_execution=bool(payload.get("pipelined_execution", True)),
        gang=bool(payload.get("gang", True)),
    )


def _sim_config_to_dict(config: SimConfig) -> dict[str, Any]:
    payload = dataclasses.asdict(config)
    # Tuples JSON-serialize as lists; normalise here so the round trip is
    # exact after a json.dumps/json.loads cycle as well.
    payload["admin"]["heartbeat_intervals"] = [
        list(pair) for pair in config.admin.heartbeat_intervals
    ]
    return payload


def _sim_config_from_dict(payload: Mapping[str, Any]) -> SimConfig:
    admin_payload = dict(payload.get("admin", {}))
    if "heartbeat_intervals" in admin_payload:
        admin_payload["heartbeat_intervals"] = tuple(
            (int(limit), float(interval))
            for limit, interval in admin_payload["heartbeat_intervals"]
        )
    top = {
        key: payload[key]
        for key in ("executors_per_machine", "task_processing_rate",
                    "pipeline_flush_latency", "seed")
        if key in payload
    }
    return SimConfig(
        network=NetworkConfig(**payload.get("network", {})),
        disk=DiskConfig(**payload.get("disk", {})),
        cache_worker=CacheWorkerConfig(**payload.get("cache_worker", {})),
        shuffle=ShuffleConfig(**payload.get("shuffle", {})),
        admin=AdminConfig(**admin_payload),
        executor=ExecutorConfig(**payload.get("executor", {})),
        retry=RetryConfig(**payload.get("retry", {})),
        **top,
    )


def _failure_plan_to_list(plan: FailurePlan) -> list[dict[str, Any]]:
    return [
        {
            "kind": spec.kind.value,
            "stage": spec.stage,
            "task_index": spec.task_index,
            "machine_id": spec.machine_id,
            "at_time": spec.at_time,
            "at_fraction": spec.at_fraction,
            "job_id": spec.job_id,
            "duration": spec.duration,
        }
        for spec in plan.specs
    ]


def _failure_plan_from_list(items: list[Mapping[str, Any]]) -> FailurePlan:
    plan = FailurePlan()
    for item in items:
        plan.add(
            FailureSpec(
                kind=FailureKind(item.get("kind", "task_crash")),
                stage=item.get("stage"),
                task_index=item.get("task_index"),
                machine_id=item.get("machine_id"),
                at_time=item.get("at_time"),
                at_fraction=item.get("at_fraction"),
                job_id=item.get("job_id"),
                duration=item.get("duration"),
            )
        )
    return plan


@dataclass
class RuntimeConfig:
    """Everything needed to build a runnable cluster + runtime pair.

    Consolidates the cluster shape, the execution policy, the simulator
    calibration (:class:`~repro.sim.config.SimConfig`), the failure plan,
    and the runtime switches that used to be loose keyword arguments.
    """

    #: Cluster shape (the paper's testbed is 100 machines x 32 executors).
    n_machines: int = 100
    executors_per_machine: int = 32
    #: System under test; defaults to Swift's production bundle.
    policy: ExecutionPolicy = field(default_factory=swift_policy)
    #: Simulator calibration constants.
    sim: SimConfig = field(default_factory=SimConfig)
    #: Failures to inject (empty plan = failure-free run).
    failure_plan: FailurePlan = field(default_factory=FailurePlan)
    #: Non-failure job duration used to resolve ``at_fraction`` failures.
    reference_duration: ReferenceDuration = 100.0
    #: Use the finish-ledger fast path (results are byte-identical; see
    #: tests/test_determinism.py).
    fast_path: bool = True
    #: Wire a :class:`repro.audit.ResourceLedger` through the runtime so
    #: every register/release of connections, Cache Worker bytes, and
    #: executor slots is reconciled at checkpoints.
    audit: bool = False
    #: Strict audit raises :class:`repro.audit.AuditError` on the first
    #: violation; non-strict records violations and emits obs instants.
    audit_strict: bool = True

    def validate(self) -> "RuntimeConfig":
        """Validate every field; returns self so calls can chain."""
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.executors_per_machine < 1:
            raise ValueError("executors_per_machine must be >= 1")
        if isinstance(self.reference_duration, dict):
            if any(v <= 0 for v in self.reference_duration.values()):
                raise ValueError("reference durations must be positive")
        elif self.reference_duration <= 0:
            raise ValueError("reference_duration must be positive")
        self.sim.validate()
        return self

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a JSON-serializable document (see :meth:`from_dict`)."""
        return {
            "n_machines": self.n_machines,
            "executors_per_machine": self.executors_per_machine,
            "policy": _policy_to_dict(self.policy),
            "sim": _sim_config_to_dict(self.sim),
            "failure_plan": _failure_plan_to_list(self.failure_plan),
            "reference_duration": self.reference_duration,
            "fast_path": self.fast_path,
            "audit": self.audit,
            "audit_strict": self.audit_strict,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RuntimeConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        reference: ReferenceDuration
        raw_reference = payload.get("reference_duration", 100.0)
        if isinstance(raw_reference, Mapping):
            reference = {str(k): float(v) for k, v in raw_reference.items()}
        else:
            reference = float(raw_reference)
        config = cls(
            n_machines=int(payload.get("n_machines", 100)),
            executors_per_machine=int(payload.get("executors_per_machine", 32)),
            policy=_policy_from_dict(payload.get("policy", {})),
            sim=_sim_config_from_dict(payload.get("sim", {})),
            failure_plan=_failure_plan_from_list(
                list(payload.get("failure_plan", []))
            ),
            reference_duration=reference,
            fast_path=bool(payload.get("fast_path", True)),
            audit=bool(payload.get("audit", False)),
            audit_strict=bool(payload.get("audit_strict", True)),
        )
        return config.validate()
