"""repro.obs — structured tracing and metrics export.

Typed span/instant records (:mod:`~repro.obs.records`), a
zero-overhead-when-disabled :class:`~repro.obs.tracer.Tracer` hook threaded
through the simulator and runtime, exporters for JSON-lines and Chrome
``trace_event`` format (:mod:`~repro.obs.exporters`), and a metrics
registry (:mod:`~repro.obs.metrics`).

Most users reach this through the :mod:`repro.api` facade::

    from repro.api import Simulation, TraceConfig

    outcome = Simulation().run(jobs, trace=TraceConfig(path="run"))
"""

from .exporters import (
    read_jsonl,
    records_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DURATION_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_job,
    collect_jobs,
)
from .records import SCHEMA_VERSION, Category, RecordKind, TraceRecord, meta_record
from .tracer import NULL_TRACER, RecordingTracer, Tracer

__all__ = [
    "Category",
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RATIO_BUCKETS",
    "RecordKind",
    "RecordingTracer",
    "SCHEMA_VERSION",
    "TraceRecord",
    "Tracer",
    "collect_job",
    "collect_jobs",
    "meta_record",
    "read_jsonl",
    "records_to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
