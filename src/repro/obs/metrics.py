"""Metrics registry: counters, gauges, and histograms.

The registry subsumes the ad-hoc aggregation previously scattered over
:class:`~repro.core.metrics.TaskTiming` / ``PhaseBreakdown`` consumers: a
run traced through :class:`~repro.obs.tracer.RecordingTracer` accumulates
job/task counters, an IdleRatio histogram, and per-phase time totals that
the figure scripts can read instead of poking at private runtime fields.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.metrics import JobMetrics

#: Default bucket upper bounds for ratio-valued histograms (IdleRatio).
RATIO_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)

#: Default bucket upper bounds for duration-valued histograms (seconds).
DURATION_BUCKETS: tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-observed value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        if value > self.value:
            self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count for mean computation."""

    name: str
    bounds: tuple[float, ...] = DURATION_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        if not self.counts:
            # One slot per bound plus the overflow slot.
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def fraction_le(self, bound: float) -> float:
        """Fraction of samples at or below ``bound`` (bucket-resolution)."""
        if not self.count:
            return 0.0
        upto = bisect.bisect_right(self.bounds, bound)
        return sum(self.counts[:upto]) / self.count


class MetricsRegistry:
    """Named counters/gauges/histograms with create-on-first-use lookup."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (bounds fix on creation)."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, bounds)
        return found

    def to_dict(self) -> dict[str, Any]:
        """Flatten every instrument into one JSON-serializable document."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        """:meth:`to_dict` as an indented JSON string."""
        return json.dumps(self.to_dict(), indent=2)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def collect_job(registry: MetricsRegistry, metrics: "JobMetrics") -> None:
    """Fold one job's :class:`~repro.core.metrics.JobMetrics` into ``registry``.

    This is the registry-level replacement for the ad-hoc per-figure
    aggregation over ``TaskTiming`` lists: counters for job/task/failure
    totals, histograms for IdleRatio and latency, and per-phase time
    counters matching the 4-phase breakdown of Section V-C1.
    """
    registry.counter("jobs_completed").inc()
    registry.counter("failures_observed").inc(metrics.failures)
    registry.counter("job_restarts").inc(metrics.restarts)
    registry.histogram("job_latency_s").observe(metrics.latency)
    registry.histogram("job_run_time_s").observe(metrics.run_time)
    observe_idle = registry.histogram("task_idle_ratio", RATIO_BUCKETS).observe
    observe_duration = registry.histogram("task_duration_s").observe
    # Per-task scalars are accumulated locally and folded with one counter
    # update each: jobs routinely carry hundreds of tasks, and the per-task
    # registry lookups used to dominate the tracing overhead budget.
    reruns = 0
    launch = shuffle_read = processing = shuffle_write = 0.0
    for task in metrics.tasks:
        if task.attempt:
            reruns += 1
        observe_idle(task.idle_ratio)
        observe_duration(task.duration)
        launch += task.launch_time
        shuffle_read += task.shuffle_read_time
        processing += task.processing_time
        shuffle_write += task.shuffle_write_time
    if metrics.tasks:
        registry.counter("tasks_finished").inc(len(metrics.tasks))
        registry.counter("phase_launch_s").inc(launch)
        registry.counter("phase_shuffle_read_s").inc(shuffle_read)
        registry.counter("phase_processing_s").inc(processing)
        registry.counter("phase_shuffle_write_s").inc(shuffle_write)
    if reruns:
        registry.counter("task_reruns").inc(reruns)
    for scheme in metrics.shuffle_schemes.values():
        registry.counter(f"shuffle_scheme_{scheme}").inc()


def collect_jobs(registry: MetricsRegistry, all_metrics: Iterable["JobMetrics"]) -> None:
    """Fold many jobs' metrics into ``registry`` (see :func:`collect_job`)."""
    for metrics in all_metrics:
        collect_job(registry, metrics)
