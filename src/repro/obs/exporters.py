"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

The JSONL export is the stable machine-readable form (one record per line,
schema pinned by the golden-fixture test).  The Chrome export produces a
``traceEvents`` document loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: jobs map to processes, stages/lanes to threads, task
attempts to complete ("X") slices, and everything else to instants.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from .records import SCHEMA_VERSION, RecordKind, TraceRecord, meta_record

#: Simulated seconds -> trace microseconds (the unit Chrome expects).
_US = 1e6


def records_to_jsonl(records: Iterable[TraceRecord]) -> str:
    """Serialize records (with a meta header line) as JSON-lines text."""
    lines = [json.dumps(meta_record().to_dict(), separators=(", ", ": "))]
    lines.extend(
        json.dumps(record.to_dict(), separators=(", ", ": "))
        for record in records
        if record.kind is not RecordKind.META
    )
    return "\n".join(lines) + "\n"


def write_jsonl(records: Iterable[TraceRecord], path: str) -> None:
    """Write :func:`records_to_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records_to_jsonl(records))


def read_jsonl(path: str) -> list[TraceRecord]:
    """Load records from a JSONL export (validating the schema header)."""
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = TraceRecord.from_dict(json.loads(line))
            if i == 0 and record.kind is RecordKind.META:
                schema = record.args.get("schema")
                if schema != SCHEMA_VERSION:
                    raise ValueError(
                        f"trace schema {schema} != supported {SCHEMA_VERSION}"
                    )
                continue
            records.append(record)
    return records


def to_chrome_trace(records: Sequence[TraceRecord]) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from records.

    Process/thread ids are assigned in first-seen order so the export is
    deterministic for a deterministic record stream.
    """
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_of(job_id: str) -> int:
        label = job_id or "<cluster>"
        pid = pids.get(label)
        if pid is None:
            pid = pids[label] = len(pids) + 1
            events.append(
                {"ph": "M", "name": "process_name", "pid": pid,
                 "args": {"name": label}}
            )
        return pid

    def tid_of(job_id: str, lane: str) -> int:
        pid = pid_of(job_id)
        key = (job_id or "<cluster>", lane)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for k in tids if k[0] == key[0]) + 1
            events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": lane}}
            )
        return tid

    for record in records:
        if record.kind is RecordKind.META:
            continue
        lane = record.scope or record.cat
        pid = pid_of(record.job_id)
        tid = tid_of(record.job_id, lane)
        entry: dict[str, Any] = {
            "name": record.name,
            "cat": record.cat,
            "ts": record.ts * _US,
            "pid": pid,
            "tid": tid,
        }
        if record.args:
            entry["args"] = dict(record.args)
        if record.kind is RecordKind.SPAN:
            entry["ph"] = "X"
            entry["dur"] = (record.dur or 0.0) * _US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA_VERSION, "generator": "repro.obs"},
    }


def write_chrome_trace(records: Sequence[TraceRecord], path: str) -> None:
    """Write :func:`to_chrome_trace` output as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(records), handle)
        handle.write("\n")
