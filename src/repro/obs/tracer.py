"""Tracer hook: zero overhead when disabled, structured records when on.

The base :class:`Tracer` is a null object: every emit method is a no-op and
``enabled`` is ``False``, so the runtime's hot paths pay a single hoisted
boolean check per batch (not per record) when tracing is off — the
``BENCH_simulator.json`` terasort rate is the guarded regression budget.

:class:`RecordingTracer` collects :class:`~repro.obs.records.TraceRecord`
objects in memory and feeds a :class:`~repro.obs.metrics.MetricsRegistry`;
export helpers write JSON-lines or Chrome ``trace_event`` files (the latter
loads directly in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .metrics import MetricsRegistry, collect_job
from .records import Category, RecordKind, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a cycle
    from ..core.metrics import JobMetrics


class Tracer:
    """Null tracer: the disabled-by-default hook threaded through the runtime.

    Subclasses override :meth:`span` and :meth:`instant` (and optionally
    :meth:`on_engine_event`) and set ``enabled = True``.  Emitting must never
    mutate simulation state — tracers observe, they do not steer.
    """

    #: Hot paths check this once per batch and skip all emission when False.
    enabled: bool = False
    #: When True (and ``enabled``), the event engine reports every executed
    #: event via :meth:`on_engine_event`.  Extremely verbose; off by default.
    engine_events: bool = False

    def span(
        self,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Record an interval observation (no-op here)."""

    def instant(
        self,
        cat: str,
        name: str,
        ts: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Record a point observation (no-op here)."""

    def on_engine_event(
        self, ts: float, callback: Callable[..., Any], priority: int
    ) -> None:
        """Report one executed simulator event (no-op here)."""

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter in the tracer's metrics registry (no-op here)."""

    def gauge_max(self, name: str, value: float) -> None:
        """Track a running-maximum gauge (no-op here)."""

    def collect_job_metrics(self, metrics: "JobMetrics") -> None:
        """Fold one completed job's metrics into the registry (no-op here)."""


#: Shared null tracer; the runtime default.  Stateless, so one instance
#: serves every simulator.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """In-memory tracer: collects records and aggregates metrics."""

    enabled = True

    def __init__(
        self,
        engine_events: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.engine_events = engine_events
        self.records: list[TraceRecord] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def span(
        self,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Append one span record."""
        self.records.append(
            TraceRecord(RecordKind.SPAN, cat, name, ts, dur, job_id, scope, args)
        )

    def instant(
        self,
        cat: str,
        name: str,
        ts: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Append one instant record."""
        self.records.append(
            TraceRecord(RecordKind.INSTANT, cat, name, ts, None, job_id, scope, args)
        )

    def on_engine_event(
        self, ts: float, callback: Callable[..., Any], priority: int
    ) -> None:
        """Append one engine-level instant (only wired when opted in)."""
        name = getattr(callback, "__qualname__", repr(callback))
        self.records.append(
            TraceRecord(
                RecordKind.INSTANT, Category.ENGINE, name, ts, None, "", "",
                {"priority": priority},
            )
        )

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter in the metrics registry."""
        self.metrics.counter(name).inc(amount)

    def gauge_max(self, name: str, value: float) -> None:
        """Track a running maximum in the metrics registry."""
        self.metrics.gauge(name).max(value)

    def collect_job_metrics(self, metrics: "JobMetrics") -> None:
        """Fold one completed job's metrics into the registry."""
        collect_job(self.metrics, metrics)

    # ------------------------------------------------------------------
    # Queries and export
    # ------------------------------------------------------------------
    def of_category(self, cat: str) -> list[TraceRecord]:
        """All records of one category, in emission order."""
        return [r for r in self.records if r.cat == cat]

    def task_intervals(self) -> list[tuple[float, float]]:
        """(start, end) busy intervals of every task-attempt span.

        This is the record-level replacement for the runtime's private
        ``busy_intervals`` list; figure scripts consume this instead.  The
        exact ``finish`` arg (when present) avoids the ``ts + dur``
        floating-point round-off.
        """
        return [
            (r.ts, float(r.args["finish"]) if "finish" in r.args else r.end)
            for r in self.records
            if r.cat == Category.TASK and r.kind is RecordKind.SPAN
        ]

    def export_jsonl(self, path: str) -> str:
        """Write the JSON-lines export; returns the path written."""
        from .exporters import write_jsonl

        write_jsonl(self.records, path)
        return path

    def export_chrome(self, path: str) -> str:
        """Write the Chrome ``trace_event`` export; returns the path."""
        from .exporters import write_chrome_trace

        write_chrome_trace(self.records, path)
        return path

    def __len__(self) -> int:
        return len(self.records)
