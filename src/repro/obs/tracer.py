"""Tracer hook: zero overhead when disabled, structured records when on.

The base :class:`Tracer` is a null object: every emit method is a no-op and
``enabled`` is ``False``, so the runtime's hot paths pay a single hoisted
boolean check per batch (not per record) when tracing is off — the
``BENCH_simulator.json`` terasort rate is the guarded regression budget.

:class:`RecordingTracer` appends raw tuples to a preallocated ring buffer —
no :class:`~repro.obs.records.TraceRecord` is constructed on the hot path —
and materializes records lazily, once, at query/export time.  The
``BENCH_simulator.json`` ``tracing.recording_overhead_pct`` scenario is the
regression budget for the recording path.  Export helpers write JSON-lines
or Chrome ``trace_event`` files (the latter loads directly in Perfetto /
``chrome://tracing``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .metrics import MetricsRegistry, collect_job
from .records import Category, RecordKind, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a cycle
    from ..core.metrics import JobMetrics


class Tracer:
    """Null tracer: the disabled-by-default hook threaded through the runtime.

    Subclasses override :meth:`span` and :meth:`instant` (and optionally
    :meth:`on_engine_event`) and set ``enabled = True``.  Emitting must never
    mutate simulation state — tracers observe, they do not steer.
    """

    #: Hot paths check this once per batch and skip all emission when False.
    enabled: bool = False
    #: When True (and ``enabled``), the event engine reports every executed
    #: event via :meth:`on_engine_event`.  Extremely verbose; off by default.
    engine_events: bool = False

    def span(
        self,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Record an interval observation (no-op here)."""

    def instant(
        self,
        cat: str,
        name: str,
        ts: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Record a point observation (no-op here)."""

    def on_engine_event(
        self, ts: float, callback: Callable[..., Any], priority: int
    ) -> None:
        """Report one executed simulator event (no-op here)."""

    def task_span(
        self,
        stage: str,
        job_id: str,
        index: int,
        attempt: int,
        plan_arrive: float,
        data_arrive: float,
        finish: float,
        launch: float,
        read: float,
        proc: float,
        write: float,
    ) -> None:
        """Record one finished task attempt (no-op here).

        Specialized emit for the runtime's hottest record: positional raw
        fields, so recording tracers can defer the name formatting and args
        dict to materialization time.
        """

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter in the tracer's metrics registry (no-op here)."""

    def gauge_max(self, name: str, value: float) -> None:
        """Track a running-maximum gauge (no-op here)."""

    def collect_job_metrics(self, metrics: "JobMetrics") -> None:
        """Fold one completed job's metrics into the registry (no-op here)."""


#: Shared null tracer; the runtime default.  Stateless, so one instance
#: serves every simulator.
NULL_TRACER = Tracer()

#: Ring-entry tags (slot 0 of each raw tuple).
_SPAN = 0
_INSTANT = 1
_ENGINE = 2
_TASK = 3

#: Default ring capacity: ~1M records (must be a power of two).  Large
#: enough that every test/figure workload is retained in full; paper-scale
#: engine-event firehoses wrap and drop the oldest entries (``dropped``).
_DEFAULT_CAPACITY = 1 << 20


class RecordingTracer(Tracer):
    """In-memory tracer: ring buffer of raw tuples, lazily materialized.

    The emit methods store plain tuples into a preallocated ring
    (``buf[n & mask]``), deferring all ``TraceRecord`` construction — the
    dominant cost of the old eager tracer — to the first query or export
    after recording.  When more than ``capacity`` records are emitted the
    oldest are overwritten; :attr:`dropped` says how many were lost.
    """

    enabled = True

    def __init__(
        self,
        engine_events: bool = False,
        metrics: MetricsRegistry | None = None,
        capacity: int = _DEFAULT_CAPACITY,
    ) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        self.engine_events = engine_events
        self._registry = metrics if metrics is not None else MetricsRegistry()
        #: Completed jobs whose metrics have not been folded yet; folding
        #: happens lazily on the first :attr:`metrics` read (completed
        #: JobMetrics are never mutated again, so deferral is safe).
        self._pending_jobs: list["JobMetrics"] = []
        self._capacity = capacity
        self._mask = capacity - 1
        # Grown by appends until ``capacity`` entries exist, then treated as
        # a fixed ring (``buf[n & mask]``).  Constructing the tracer stays
        # O(1) — eagerly preallocating a million-slot list costs more than
        # small traced runs themselves.
        self._buf: list[tuple[Any, ...]] = []
        #: Total records ever emitted (monotonic; drops = _n - capacity).
        self._n = 0
        #: Materialization cache, valid while no new record was emitted.
        self._cache: list[TraceRecord] | None = None
        self._cache_n = -1
        #: Callback -> display name memo for engine events (satellite fix:
        #: the qualname getattr used to run once per executed event).
        self._name_memo: dict[Any, str] = {}

    # ------------------------------------------------------------------
    # Hot path: raw tuple appends, no record construction
    # ------------------------------------------------------------------
    def span(
        self,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Append one span entry to the ring."""
        n = self._n
        if n < self._capacity:
            self._buf.append((_SPAN, cat, name, ts, dur, job_id, scope, args))
        else:
            self._buf[n & self._mask] = (_SPAN, cat, name, ts, dur, job_id, scope, args)
        self._n = n + 1

    def instant(
        self,
        cat: str,
        name: str,
        ts: float,
        job_id: str = "",
        scope: str = "",
        **args: Any,
    ) -> None:
        """Append one instant entry to the ring."""
        n = self._n
        if n < self._capacity:
            self._buf.append((_INSTANT, cat, name, ts, job_id, scope, args))
        else:
            self._buf[n & self._mask] = (_INSTANT, cat, name, ts, job_id, scope, args)
        self._n = n + 1

    def on_engine_event(
        self, ts: float, callback: Callable[..., Any], priority: int
    ) -> None:
        """Append one engine-level entry (only wired when opted in).

        The raw callback is stored; its display name is resolved (and
        memoized per callback) at materialization time, not per event.
        """
        n = self._n
        if n < self._capacity:
            self._buf.append((_ENGINE, callback, ts, priority))
        else:
            self._buf[n & self._mask] = (_ENGINE, callback, ts, priority)
        self._n = n + 1

    def task_span(
        self,
        stage: str,
        job_id: str,
        index: int,
        attempt: int,
        plan_arrive: float,
        data_arrive: float,
        finish: float,
        launch: float,
        read: float,
        proc: float,
        write: float,
    ) -> None:
        """Append one task-attempt entry (raw fields; formatted lazily)."""
        n = self._n
        entry = (
            _TASK, stage, job_id, index, attempt, plan_arrive, data_arrive,
            finish, launch, read, proc, write,
        )
        if n < self._capacity:
            self._buf.append(entry)
        else:
            self._buf[n & self._mask] = entry
        self._n = n + 1

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter in the metrics registry."""
        self._registry.counter(name).inc(amount)

    def gauge_max(self, name: str, value: float) -> None:
        """Track a running maximum in the metrics registry."""
        self._registry.gauge(name).max(value)

    def collect_job_metrics(self, metrics: "JobMetrics") -> None:
        """Queue one completed job's metrics for lazy folding."""
        self._pending_jobs.append(metrics)

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry, with all queued job metrics folded in."""
        pending = self._pending_jobs
        if pending:
            for job_metrics in pending:
                collect_job(self._registry, job_metrics)
            pending.clear()
        return self._registry

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[TraceRecord]:
        """The retained records in emission order (materialized lazily).

        The result is cached until the next emit, so repeated queries and
        exports pay the construction cost once.  Callers must not mutate
        the returned list.
        """
        if self._cache is None or self._cache_n != self._n:
            self._cache = self._materialize()
            self._cache_n = self._n
        return self._cache

    @property
    def dropped(self) -> int:
        """Records overwritten because the ring wrapped (oldest first)."""
        return max(0, self._n - self._capacity)

    def _materialize(self) -> list[TraceRecord]:
        """Build TraceRecords for the live window of the ring."""
        n = self._n
        buf = self._buf
        mask = self._mask
        memo = self._name_memo
        out: list[TraceRecord] = []
        for i in range(max(0, n - self._capacity), n):
            entry = buf[i & mask]
            tag = entry[0]
            if tag == _TASK:
                (_, stage, job_id, index, attempt, plan_arrive, data_arrive,
                 finish, launch, read, proc, write) = entry
                idle = min(data_arrive, finish) - plan_arrive
                out.append(TraceRecord(
                    RecordKind.SPAN, Category.TASK, f"{stage}[{index}]",
                    plan_arrive, finish - plan_arrive, job_id, stage,
                    {
                        # ts + dur can round away from the exact finish
                        # time; consumers that need the precise interval
                        # (task_intervals) read this.
                        "finish": finish,
                        "attempt": attempt,
                        "idle": idle if idle > 0 else 0.0,
                        "launch": launch,
                        "read": read,
                        "proc": proc,
                        "write": write,
                    },
                ))
            elif tag == _SPAN:
                out.append(TraceRecord(
                    RecordKind.SPAN, entry[1], entry[2], entry[3], entry[4],
                    entry[5], entry[6], entry[7],
                ))
            elif tag == _INSTANT:
                out.append(TraceRecord(
                    RecordKind.INSTANT, entry[1], entry[2], entry[3], None,
                    entry[4], entry[5], entry[6],
                ))
            else:
                callback = entry[1]
                name = memo.get(callback)
                if name is None:
                    name = getattr(callback, "__qualname__", None) or repr(callback)
                    memo[callback] = name
                out.append(TraceRecord(
                    RecordKind.INSTANT, Category.ENGINE, name, entry[2], None,
                    "", "", {"priority": entry[3]},
                ))
        return out

    # ------------------------------------------------------------------
    # Queries and export
    # ------------------------------------------------------------------
    def of_category(self, cat: str) -> list[TraceRecord]:
        """All records of one category, in emission order."""
        return [r for r in self.records if r.cat == cat]

    def task_intervals(self) -> list[tuple[float, float]]:
        """(start, end) busy intervals of every task-attempt span.

        This is the record-level replacement for the runtime's private
        ``busy_intervals`` list; figure scripts consume this instead.  The
        exact ``finish`` arg (when present) avoids the ``ts + dur``
        floating-point round-off.
        """
        return [
            (r.ts, float(r.args["finish"]) if "finish" in r.args else r.end)
            for r in self.records
            if r.cat == Category.TASK and r.kind is RecordKind.SPAN
        ]

    def export_jsonl(self, path: str) -> str:
        """Write the JSON-lines export; returns the path written."""
        from .exporters import write_jsonl

        write_jsonl(self.records, path)
        return path

    def export_chrome(self, path: str) -> str:
        """Write the Chrome ``trace_event`` export; returns the path."""
        from .exporters import write_chrome_trace

        write_chrome_trace(self.records, path)
        return path

    def __len__(self) -> int:
        return min(self._n, self._capacity)
