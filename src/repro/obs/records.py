"""Typed trace records: the stable wire schema of the observability layer.

Every signal the runtime emits — job/unit/stage/task spans, shuffle-scheme
decisions, Cache Worker spills, heartbeat-driven failure detection, recovery
actions — is one :class:`TraceRecord`.  The record is a flat, versioned
structure so exported JSON-lines files stay readable across releases; the
golden-fixture test (``tests/test_trace_schema.py``) pins the exact layout.

Record kinds
------------
``span``
    An interval: ``ts`` is the start in simulated seconds, ``dur`` the
    length.  Task attempts, stages, units, and jobs are spans.
``instant``
    A point event: ``dur`` is ``None``.  Scheme decisions, spills,
    failure detection, and recovery actions are instants.
``meta``
    Stream metadata (schema version, generator); written by the exporters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Version of the record layout.  Bump only with a migration note in
#: README's Observability section; the golden fixture pins this.
SCHEMA_VERSION = 1


class RecordKind(enum.Enum):
    """Shape of one trace record."""

    SPAN = "span"
    INSTANT = "instant"
    META = "meta"


class Category:
    """Well-known record categories (``cat`` values).

    Plain string constants rather than an enum so user tracers can add
    their own categories without touching this module.
    """

    JOB = "job"
    UNIT = "unit"
    STAGE = "stage"
    TASK = "task"
    SHUFFLE = "shuffle"
    CACHE = "cache"
    FAILURE = "failure"
    RECOVERY = "recovery"
    #: Resource-accounting audit violations (:mod:`repro.audit`).
    AUDIT = "audit"
    #: Per-tenant service events (:mod:`repro.service` registrations/quotas).
    TENANT = "tenant"
    #: Gateway queue lifecycle: arrivals, admission verdicts, dispatches.
    QUEUE = "queue"
    ENGINE = "engine"
    META = "meta"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One observation; immutable so records can be shared freely."""

    kind: RecordKind
    #: Category lane, one of :class:`Category` (or user-defined).
    cat: str
    #: Human-readable name, e.g. ``"M1[3]"`` or ``"shuffle.scheme"``.
    name: str
    #: Simulated time of the observation (span start), in seconds.
    ts: float
    #: Span length in seconds; ``None`` for instants and meta records.
    dur: float | None = None
    #: Owning job, or ``""`` for cluster-level records.
    job_id: str = ""
    #: Sub-scope within the job (stage name, unit id, edge key).
    scope: str = ""
    #: Free-form attributes; values must be JSON-serializable.
    args: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flatten to the stable JSONL layout (fixed key order)."""
        out: dict[str, Any] = {
            "kind": self.kind.value,
            "cat": self.cat,
            "name": self.name,
            "ts": self.ts,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.job_id:
            out["job"] = self.job_id
        if self.scope:
            out["scope"] = self.scope
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            kind=RecordKind(payload["kind"]),
            cat=str(payload["cat"]),
            name=str(payload["name"]),
            ts=float(payload["ts"]),
            dur=None if payload.get("dur") is None else float(payload["dur"]),
            job_id=str(payload.get("job", "")),
            scope=str(payload.get("scope", "")),
            args=dict(payload.get("args", {})),
        )

    @property
    def end(self) -> float:
        """Span end time (``ts`` for instants)."""
        return self.ts + (self.dur or 0.0)


def meta_record(generator: str = "repro.obs") -> TraceRecord:
    """The stream-header record the exporters prepend."""
    return TraceRecord(
        kind=RecordKind.META,
        cat=Category.META,
        name="trace",
        ts=0.0,
        args={"schema": SCHEMA_VERSION, "generator": generator},
    )
