"""Workloads: TPC-H query DAGs, Terasort, and trace-calibrated generators."""

from . import terasort, tpch, tpch_sql, traces
from .terasort import TABLE1_SIZES, terasort_dag, terasort_job
from .tpch import ALL_QUERIES, Q9_CRITICAL_STAGES, Q13_DETAILS, query_dag, query_job
from .tpch_sql import TPCH_SQL, query_sql, runnable_queries
from .traces import (
    CLUSTER_PROFILES,
    SHUFFLE_CLASSES,
    TraceConfig,
    cluster_profile_jobs,
    generate_job,
    generate_trace,
    paper_scale_trace,
    shuffle_class_jobs,
    tenant_arrival_trace,
    trace_statistics,
)

__all__ = [
    "ALL_QUERIES",
    "CLUSTER_PROFILES",
    "Q13_DETAILS",
    "Q9_CRITICAL_STAGES",
    "SHUFFLE_CLASSES",
    "TABLE1_SIZES",
    "TPCH_SQL",
    "TraceConfig",
    "cluster_profile_jobs",
    "generate_job",
    "generate_trace",
    "paper_scale_trace",
    "query_dag",
    "query_job",
    "shuffle_class_jobs",
    "tenant_arrival_trace",
    "terasort",
    "terasort_dag",
    "terasort_job",
    "query_sql",
    "runnable_queries",
    "tpch",
    "tpch_sql",
    "trace_statistics",
    "traces",
]
