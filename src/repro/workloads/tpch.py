"""TPC-H workload: the 22 query DAGs at a nominal 1 TB scale.

The runtime consumes DAGs (stage/task structure plus data volumes), not
tuples, so each query is encoded as its physical-plan DAG.  Q9 reproduces
the exact stage/task structure of the paper's Fig. 4 (M1=956, M2=220, M3=3,
M5=403, M7=220, M8=20 tasks, four graphlets); Q13 reproduces Fig. 13
(M1=498, M2=72 tasks and the J3/R4/R5/R6 chain with its per-task record
counts).  The remaining twenty queries are derived from their well-known
query shapes (which tables are scanned, how many joins/aggregates/sorts).

Data volumes assume the standard 1 TB (SF=1000) table sizes; ``scale``
rescales everything for laptop-sized runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.dag import Edge, EdgeMode, Job, JobDAG, Stage  # noqa: F401 (EdgeMode re-exported)
from ..core.operators import Operator, OperatorKind as K, ops

GB = 1e9
MB = 1e6

#: Approximate on-disk table sizes at SF=1000 (1 TB total), bytes.
TABLE_BYTES_1TB: dict[str, float] = {
    "lineitem": 750.0 * GB,
    "orders": 170.0 * GB,
    "partsupp": 115.0 * GB,
    "customer": 23.0 * GB,
    "part": 23.0 * GB,
    "supplier": 1.4 * GB,
    "nation": 2.2e3,
    "region": 4.0e2,
}

#: Bytes of input one scan task handles; 956 lineitem tasks at 1 TB matches
#: Fig. 4's M1.
SCAN_SPLIT_BYTES = TABLE_BYTES_1TB["lineitem"] / 956


def scan_task_count(table: str, scale: float = 1.0) -> int:
    """Number of scan tasks for ``table`` at ``scale`` x 1 TB."""
    size = TABLE_BYTES_1TB[table] * scale
    return max(1, math.ceil(size / SCAN_SPLIT_BYTES))


@dataclass
class _Builder:
    """Tiny DSL for assembling query DAGs."""

    job_id: str
    scale: float = 1.0
    stages: list[Stage] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    _counter: int = 0

    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def scan(
        self,
        table: str,
        selectivity: float = 0.5,
        tasks: int | None = None,
        name: str | None = None,
    ) -> str:
        """Add a table-scan (M) stage; returns its name."""
        size = TABLE_BYTES_1TB[table] * self.scale
        n = tasks if tasks is not None else scan_task_count(table, self.scale)
        name = name or self._next_name("M")
        self.stages.append(
            Stage(
                name=name,
                task_count=n,
                operators=ops(K.TABLE_SCAN, K.FILTER, K.SHUFFLE_WRITE),
                scan_bytes_per_task=size / n,
                output_bytes_per_task=size * selectivity / n,
            )
        )
        return name

    def join(
        self,
        inputs: list[str],
        tasks: int,
        out_bytes: float,
        blocking: bool = True,
        name: str | None = None,
        edge_modes: dict[str, EdgeMode] | None = None,
    ) -> str:
        """Add a join (J) stage fed by ``inputs``; returns its name."""
        name = name or self._next_name("J")
        operators = [Operator(K.SHUFFLE_READ)]
        operators.append(Operator(K.MERGE_JOIN if blocking else K.HASH_JOIN))
        if blocking:
            operators.append(Operator(K.MERGE_SORT))
        operators.append(Operator(K.SHUFFLE_WRITE))
        self.stages.append(
            Stage(
                name=name,
                task_count=tasks,
                operators=tuple(operators),
                output_bytes_per_task=out_bytes * self.scale / tasks,
            )
        )
        modes = edge_modes or {}
        for src in inputs:
            self.edges.append(Edge(src, name, mode=modes.get(src)))
        return name

    def agg(
        self,
        inputs: list[str],
        tasks: int,
        out_bytes: float,
        blocking: bool = True,
        name: str | None = None,
    ) -> str:
        """Add an aggregation (R) stage; returns its name."""
        name = name or self._next_name("R")
        operators = [Operator(K.SHUFFLE_READ)]
        operators.append(
            Operator(K.STREAMED_AGGREGATE if blocking else K.HASH_AGGREGATE)
        )
        operators.append(Operator(K.SHUFFLE_WRITE))
        self.stages.append(
            Stage(
                name=name,
                task_count=tasks,
                operators=tuple(operators),
                output_bytes_per_task=out_bytes * self.scale / tasks,
            )
        )
        for src in inputs:
            self.edges.append(Edge(src, name))
        return name

    def sort(
        self, inputs: list[str], tasks: int, out_bytes: float, name: str | None = None
    ) -> str:
        """Add an order-by (R, blocking) stage; returns its name."""
        name = name or self._next_name("R")
        self.stages.append(
            Stage(
                name=name,
                task_count=tasks,
                operators=ops(K.SHUFFLE_READ, K.SORT_BY, K.SHUFFLE_WRITE),
                output_bytes_per_task=out_bytes * self.scale / tasks,
            )
        )
        for src in inputs:
            self.edges.append(Edge(src, name))
        return name

    def sink(self, inputs: list[str], out_bytes: float = 1 * MB, name: str | None = None) -> str:
        """Add the final ad-hoc sink stage; returns its name."""
        name = name or self._next_name("R")
        self.stages.append(
            Stage(
                name=name,
                task_count=1,
                operators=ops(K.SHUFFLE_READ, K.LIMIT, K.ADHOC_SINK),
                output_bytes_per_task=out_bytes * self.scale,
            )
        )
        for src in inputs:
            self.edges.append(Edge(src, name))
        return name

    def build(self) -> JobDAG:
        """Assemble and validate the query DAG."""
        dag = JobDAG(self.job_id, self.stages, self.edges)
        dag.validate()
        return dag


def _q1(b: _Builder) -> None:
    m1 = b.scan("lineitem", selectivity=0.35)
    r2 = b.agg([m1], tasks=96, out_bytes=8 * MB)
    r3 = b.sort([r2], tasks=4, out_bytes=1 * MB)
    b.sink([r3])


def _q2(b: _Builder) -> None:
    m_p = b.scan("part", selectivity=0.05)
    m_ps = b.scan("partsupp", selectivity=0.4)
    m_s = b.scan("supplier", selectivity=0.6)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_ps, m_s, m_n], tasks=128, out_bytes=30 * GB)
    j2 = b.join([j1, m_p], tasks=96, out_bytes=2 * GB)
    r_min = b.agg([j2], tasks=48, out_bytes=400 * MB)
    r = b.sort([r_min], tasks=8, out_bytes=10 * MB)
    b.sink([r])


def _q3(b: _Builder) -> None:
    m_c = b.scan("customer", selectivity=0.2)
    m_o = b.scan("orders", selectivity=0.5)
    m_l = b.scan("lineitem", selectivity=0.55)
    j1 = b.join([m_c, m_o], tasks=160, out_bytes=50 * GB)
    j2 = b.join([j1, m_l], tasks=220, out_bytes=20 * GB)
    r = b.agg([j2], tasks=64, out_bytes=100 * MB)
    b.sink([r])


def _q4(b: _Builder) -> None:
    m_o = b.scan("orders", selectivity=0.4)
    m_l = b.scan("lineitem", selectivity=0.3)
    j1 = b.join([m_o, m_l], tasks=200, out_bytes=10 * GB)
    r = b.agg([j1], tasks=16, out_bytes=1 * MB)
    b.sink([r])


def _q5(b: _Builder) -> None:
    m_c = b.scan("customer", selectivity=0.8)
    m_o = b.scan("orders", selectivity=0.3)
    m_l = b.scan("lineitem", selectivity=0.7)
    m_s = b.scan("supplier", selectivity=0.9)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_c, m_o], tasks=160, out_bytes=40 * GB)
    j2 = b.join([j1, m_l], tasks=260, out_bytes=45 * GB)
    j3 = b.join([j2, m_s, m_n], tasks=120, out_bytes=5 * GB)
    r = b.agg([j3], tasks=16, out_bytes=2 * MB)
    b.sink([r])


def _q6(b: _Builder) -> None:
    m1 = b.scan("lineitem", selectivity=0.02)
    r = b.agg([m1], tasks=12, out_bytes=1 * MB, blocking=False)
    b.sink([r])


def _q7(b: _Builder) -> None:
    m_s = b.scan("supplier", selectivity=0.9)
    m_l = b.scan("lineitem", selectivity=0.35)
    m_o = b.scan("orders", selectivity=0.9)
    m_c = b.scan("customer", selectivity=0.9)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_s, m_l, m_n], tasks=240, out_bytes=70 * GB)
    j2 = b.join([j1, m_o], tasks=200, out_bytes=30 * GB)
    j3 = b.join([j2, m_c], tasks=120, out_bytes=4 * GB)
    r = b.agg([j3], tasks=24, out_bytes=2 * MB)
    b.sink([r])


def _q8(b: _Builder) -> None:
    m_p = b.scan("part", selectivity=0.02)
    m_l = b.scan("lineitem", selectivity=0.6)
    m_s = b.scan("supplier", selectivity=0.95)
    m_o = b.scan("orders", selectivity=0.35)
    m_c = b.scan("customer", selectivity=0.9)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_p, m_l], tasks=220, out_bytes=15 * GB)
    j2 = b.join([j1, m_s, m_o], tasks=160, out_bytes=8 * GB)
    j3 = b.join([j2, m_c, m_n], tasks=96, out_bytes=1 * GB)
    r = b.agg([j3], tasks=16, out_bytes=1 * MB)
    b.sink([r])


def _q9(b: _Builder) -> None:
    """Fig. 4's exact structure: four graphlets with the published task
    counts.  M1 scans lineitem, M2 partsupp, M3 supplier, M5 orders, M7
    part, M8 nation; J4/J6/J10 contain MergeSort, so their outgoing edges
    are barriers."""
    m1 = b.scan("lineitem", selectivity=0.6, tasks=956, name="M1")
    m2 = b.scan("partsupp", selectivity=0.5, tasks=220, name="M2")
    m3 = b.scan("supplier", selectivity=0.9, tasks=3, name="M3")
    j4 = b.join([m1, m2, m3], tasks=256, out_bytes=180 * GB, name="J4")
    m5 = b.scan("orders", selectivity=0.7, tasks=403, name="M5")
    j6 = b.join([j4, m5], tasks=256, out_bytes=120 * GB, name="J6")
    m7 = b.scan("part", selectivity=0.055, tasks=220, name="M7")
    m8 = b.scan("nation", selectivity=1.0, tasks=20, name="M8")
    r9 = b.agg([m7, m8], tasks=64, out_bytes=1 * GB, blocking=False, name="R9")
    j10 = b.join([j6, r9], tasks=128, out_bytes=4 * GB, name="J10")
    # R11 streams into the sink (graphlet 4 of Fig. 4 is {R11, R12}).
    r11 = b.agg([j10], tasks=32, out_bytes=60 * MB, blocking=False, name="R11")
    b.sink([r11], name="R12")


def _q10(b: _Builder) -> None:
    m_c = b.scan("customer", selectivity=0.9)
    m_o = b.scan("orders", selectivity=0.12)
    m_l = b.scan("lineitem", selectivity=0.25)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_c, m_o], tasks=160, out_bytes=20 * GB)
    j2 = b.join([j1, m_l, m_n], tasks=180, out_bytes=15 * GB)
    r = b.agg([j2], tasks=48, out_bytes=500 * MB)
    b.sink([r])


def _q11(b: _Builder) -> None:
    m_ps = b.scan("partsupp", selectivity=0.6)
    m_s = b.scan("supplier", selectivity=0.9)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_ps, m_s, m_n], tasks=140, out_bytes=25 * GB)
    r_sum = b.agg([j1], tasks=64, out_bytes=3 * GB)
    r_total = b.agg([r_sum], tasks=8, out_bytes=1 * MB)
    r = b.sort([r_total], tasks=4, out_bytes=1 * MB)
    b.sink([r])


def _q12(b: _Builder) -> None:
    m_o = b.scan("orders", selectivity=0.9)
    m_l = b.scan("lineitem", selectivity=0.01)
    j1 = b.join([m_o, m_l], tasks=140, out_bytes=3 * GB)
    r = b.agg([j1], tasks=8, out_bytes=1 * MB)
    b.sink([r])


def _q13(b: _Builder) -> None:
    """Fig. 13's exact structure.  M1 scans orders (498 tasks, 3,012,048
    records / 76 MB each after column pruning), M2 scans customer (72
    tasks, 26 MB each); the J3 -> R4 -> R5 -> R6 chain carries the
    published per-task record counts.

    Stage work is set so the timeline matches the paper's Fig. 14
    narrative: M2 finishes early (its failure at t=20 is a no-op because
    its output has been received), while J3 — "on the critical job path
    and ... of the large input data size" — is still running at t=40 and
    expensive to re-run.
    """
    b.stages.append(
        Stage(
            name="M1", task_count=498,
            operators=ops(K.TABLE_SCAN, K.FILTER, K.SHUFFLE_WRITE),
            scan_bytes_per_task=76 * MB * b.scale,
            output_bytes_per_task=60 * MB * b.scale,
            work_seconds_per_task=22.0,
        )
    )
    b.stages.append(
        Stage(
            name="M2", task_count=72,
            operators=ops(K.TABLE_SCAN, K.FILTER, K.SHUFFLE_WRITE),
            scan_bytes_per_task=26 * MB * b.scale,
            output_bytes_per_task=20 * MB * b.scale,
            work_seconds_per_task=1.5,
        )
    )
    b.stages.append(
        Stage(
            name="J3", task_count=144,
            operators=ops(K.SHUFFLE_READ, K.MERGE_JOIN, K.MERGE_SORT, K.SHUFFLE_WRITE),
            output_bytes_per_task=5 * MB * b.scale,
            work_seconds_per_task=10.0,
        )
    )
    b.stages.append(
        Stage(
            name="R4", task_count=144,
            operators=ops(K.SHUFFLE_READ, K.STREAMED_AGGREGATE, K.SHUFFLE_WRITE),
            output_bytes_per_task=2 * MB * b.scale,
            work_seconds_per_task=4.0,
        )
    )
    b.stages.append(
        Stage(
            name="R5", task_count=28,
            operators=ops(K.SHUFFLE_READ, K.STREAMED_AGGREGATE, K.SHUFFLE_WRITE),
            output_bytes_per_task=1.1e3 * b.scale,
            work_seconds_per_task=2.0,
        )
    )
    b.stages.append(
        Stage(
            name="R6", task_count=1,
            operators=ops(K.SHUFFLE_READ, K.SORT_BY, K.ADHOC_SINK),
            output_bytes_per_task=1.3e3 * b.scale,
            work_seconds_per_task=1.5,
        )
    )
    b.edges.extend(
        [Edge("M1", "J3"), Edge("M2", "J3"), Edge("J3", "R4"),
         Edge("R4", "R5"), Edge("R5", "R6")]
    )


def _q14(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.015)
    m_p = b.scan("part", selectivity=0.9)
    j1 = b.join([m_l, m_p], tasks=120, out_bytes=2 * GB)
    r = b.agg([j1], tasks=8, out_bytes=1 * MB, blocking=False)
    b.sink([r])


def _q15(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.04)
    r_rev = b.agg([m_l], tasks=96, out_bytes=2 * GB)
    r_max = b.agg([r_rev], tasks=8, out_bytes=1 * MB)
    m_s = b.scan("supplier", selectivity=1.0)
    j1 = b.join([m_s, r_rev, r_max], tasks=32, out_bytes=10 * MB)
    b.sink([j1])


def _q16(b: _Builder) -> None:
    m_ps = b.scan("partsupp", selectivity=0.8)
    m_p = b.scan("part", selectivity=0.9)
    m_s = b.scan("supplier", selectivity=0.02)
    j1 = b.join([m_ps, m_p, m_s], tasks=160, out_bytes=30 * GB)
    r_d = b.agg([j1], tasks=96, out_bytes=4 * GB)
    r = b.sort([r_d], tasks=16, out_bytes=50 * MB)
    b.sink([r])


def _q17(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.3)
    m_p = b.scan("part", selectivity=0.001)
    r_avg = b.agg([m_l], tasks=128, out_bytes=5 * GB)
    j1 = b.join([m_l, m_p, r_avg], tasks=96, out_bytes=500 * MB)
    r = b.agg([j1], tasks=4, out_bytes=1 * MB, blocking=False)
    b.sink([r])


def _q18(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.45)
    r_g = b.agg([m_l], tasks=256, out_bytes=40 * GB)
    m_c = b.scan("customer", selectivity=0.95)
    m_o = b.scan("orders", selectivity=0.9)
    j1 = b.join([m_o, r_g], tasks=200, out_bytes=10 * GB)
    j2 = b.join([j1, m_c], tasks=96, out_bytes=500 * MB)
    r = b.sort([j2], tasks=16, out_bytes=10 * MB)
    b.sink([r])


def _q19(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.12)
    m_p = b.scan("part", selectivity=0.08)
    j1 = b.join([m_l, m_p], tasks=140, out_bytes=1 * GB)
    r = b.agg([j1], tasks=4, out_bytes=1 * MB, blocking=False)
    b.sink([r])


def _q20(b: _Builder) -> None:
    m_l = b.scan("lineitem", selectivity=0.05)
    r_sum = b.agg([m_l], tasks=128, out_bytes=8 * GB)
    m_ps = b.scan("partsupp", selectivity=0.6)
    m_p = b.scan("part", selectivity=0.01)
    j1 = b.join([m_ps, m_p, r_sum], tasks=96, out_bytes=3 * GB)
    m_s = b.scan("supplier", selectivity=0.9)
    m_n = b.scan("nation", selectivity=1.0)
    j2 = b.join([j1, m_s, m_n], tasks=48, out_bytes=50 * MB)
    r = b.sort([j2], tasks=8, out_bytes=10 * MB)
    b.sink([r])


def _q21(b: _Builder) -> None:
    m_s = b.scan("supplier", selectivity=0.9)
    m_l1 = b.scan("lineitem", selectivity=0.5)
    m_o = b.scan("orders", selectivity=0.45)
    m_n = b.scan("nation", selectivity=1.0)
    j1 = b.join([m_s, m_l1, m_n], tasks=260, out_bytes=60 * GB)
    j2 = b.join([j1, m_o], tasks=220, out_bytes=25 * GB)
    r_exists = b.agg([j2], tasks=128, out_bytes=5 * GB)
    r = b.sort([r_exists], tasks=16, out_bytes=10 * MB)
    b.sink([r])


def _q22(b: _Builder) -> None:
    m_c = b.scan("customer", selectivity=0.25)
    m_o = b.scan("orders", selectivity=0.35)
    r_avg = b.agg([m_c], tasks=32, out_bytes=500 * MB)
    j1 = b.join([m_c, m_o, r_avg], tasks=64, out_bytes=300 * MB)
    r = b.agg([j1], tasks=8, out_bytes=1 * MB)
    b.sink([r])


_QUERY_BUILDERS = {
    1: _q1, 2: _q2, 3: _q3, 4: _q4, 5: _q5, 6: _q6, 7: _q7, 8: _q8,
    9: _q9, 10: _q10, 11: _q11, 12: _q12, 13: _q13, 14: _q14, 15: _q15,
    16: _q16, 17: _q17, 18: _q18, 19: _q19, 20: _q20, 21: _q21, 22: _q22,
}

ALL_QUERIES = tuple(sorted(_QUERY_BUILDERS))


def query_dag(query: int, scale: float = 1.0, job_id: str | None = None) -> JobDAG:
    """Build the physical-plan DAG for TPC-H query ``query``.

    ``scale`` multiplies all data volumes (1.0 = the paper's 1 TB run).
    """
    if query not in _QUERY_BUILDERS:
        raise ValueError(f"TPC-H has queries 1..22, not {query}")
    builder = _Builder(job_id=job_id or f"tpch_q{query}", scale=scale)
    _QUERY_BUILDERS[query](builder)
    return builder.build()


def query_job(query: int, scale: float = 1.0, submit_time: float = 0.0) -> Job:
    """Build a submission-ready :class:`Job` for a TPC-H query."""
    return Job(dag=query_dag(query, scale=scale), submit_time=submit_time)


#: Stage rows of Fig. 13 (records and bytes per task) for the Q13 detail
#: bench.  Values are straight from the paper's table.
Q13_DETAILS: tuple[dict[str, object], ...] = (
    {"stage": "M1", "tasks": 498, "input_records_per_task": 3_012_048, "input_size_per_task": "76MB"},
    {"stage": "M2", "tasks": 72, "input_records_per_task": 2_861_350, "input_size_per_task": "26MB"},
    {"stage": "J3", "tasks": 144, "input_records_per_task": 262_697, "input_size_per_task": "5MB"},
    {"stage": "R4", "tasks": 144, "input_records_per_task": 262_698, "input_size_per_task": "2MB"},
    {"stage": "R5", "tasks": 28, "input_records_per_task": 28, "input_size_per_task": "1.1KB"},
    {"stage": "R6", "tasks": 1, "input_records_per_task": 30, "input_size_per_task": "1.3KB"},
)

#: The critical stages of Q9 whose 4-phase breakdown Fig. 9(b) reports.
Q9_CRITICAL_STAGES = ("M1", "M5", "J4", "J6", "J10", "R11", "R12")
