"""TPC-H query texts in the Swift SQL dialect.

A representative subset of TPC-H, written in the language of the paper's
Fig. 1, that both the physical planner (SQL -> job DAG) and the row-level
executor can handle end to end.  Queries are lightly adapted to the
dialect: no correlated subqueries (Q2/Q17-style inner queries are
flattened or omitted), date arithmetic replaced with string prefixes.

``TPCH_SQL`` maps query number -> SQL text; ``runnable_queries()`` lists
them in order.
"""

from __future__ import annotations

TPCH_SQL: dict[int, str] = {
    1: """
        select l_returnflag, l_linestatus,
            sum(l_quantity) as sum_qty,
            sum(l_extendedprice) as sum_base_price,
            sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
            sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
            avg(l_quantity) as avg_qty,
            avg(l_extendedprice) as avg_price,
            avg(l_discount) as avg_disc,
            count(*) as count_order
        from tpch_lineitem
        where l_shipdate <= '1998-09-02'
        group by l_returnflag, l_linestatus
        order by l_returnflag, l_linestatus;
    """,
    3: """
        select l_orderkey,
            sum(l_extendedprice * (1 - l_discount)) as revenue,
            o_orderdate, o_shippriority
        from tpch_customer c
        join tpch_orders o on c.c_custkey = o.o_custkey
        join tpch_lineitem l on l.l_orderkey = o.o_orderkey
        where c_mktsegment = 'BUILDING'
            and o_orderdate < '1995-03-15'
            and l_shipdate > '1995-03-15'
        group by l_orderkey, o_orderdate, o_shippriority
        order by revenue desc, o_orderdate
        limit 10;
    """,
    5: """
        select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
        from tpch_customer c
        join tpch_orders o on c.c_custkey = o.o_custkey
        join tpch_lineitem l on l.l_orderkey = o.o_orderkey
        join tpch_supplier s on l.l_suppkey = s.s_suppkey
        join tpch_nation n on s.s_nationkey = n.n_nationkey
        join tpch_region r on n.n_regionkey = r.r_regionkey
        where r_name = 'ASIA'
            and o_orderdate >= '1994-01-01' and o_orderdate < '1995-01-01'
        group by n_name
        order by revenue desc;
    """,
    6: """
        select sum(l_extendedprice * l_discount) as revenue
        from tpch_lineitem
        where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
            and l_discount between 0.05 and 0.07
            and l_quantity < 24;
    """,
    9: """
        select nation, o_year, sum(amount) as sum_profit
        from (
            select n_name as nation, substr(o_orderdate, 1, 4) as o_year,
                l_extendedprice * (1 - l_discount)
                    - ps_supplycost * l_quantity as amount
            from tpch_supplier s
            join tpch_lineitem l on s.s_suppkey = l.l_suppkey
            join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey
                and ps.ps_partkey = l.l_partkey
            join tpch_part p on p.p_partkey = l.l_partkey
            join tpch_orders o on o.o_orderkey = l.l_orderkey
            join tpch_nation n on s.s_nationkey = n.n_nationkey
            where p_name like '%green%'
        )
        group by nation, o_year
        order by nation, o_year desc
        limit 999999;
    """,
    10: """
        select c_custkey, c_name,
            sum(l_extendedprice * (1 - l_discount)) as revenue,
            c_acctbal, n_name
        from tpch_customer c
        join tpch_orders o on c.c_custkey = o.o_custkey
        join tpch_lineitem l on l.l_orderkey = o.o_orderkey
        join tpch_nation n on c.c_nationkey = n.n_nationkey
        where o_orderdate >= '1993-10-01' and o_orderdate < '1994-10-01'
            and l_returnflag = 'R'
        group by c_custkey, c_name, c_acctbal, n_name
        order by revenue desc
        limit 20;
    """,
    12: """
        select l_shipmode,
            sum(case when o_orderpriority = '1-URGENT'
                    or o_orderpriority = '2-HIGH'
                then 1 else 0 end) as high_line_count,
            sum(case when o_orderpriority <> '1-URGENT'
                    and o_orderpriority <> '2-HIGH'
                then 1 else 0 end) as low_line_count
        from tpch_orders o
        join tpch_lineitem l on o.o_orderkey = l.l_orderkey
        where l_shipmode in ('MAIL', 'SHIP', 'AIR')
            and l_receiptdate >= '1994-01-01' and l_receiptdate < '1995-01-01'
        group by l_shipmode
        order by l_shipmode;
    """,
    13: """
        select c_count, count(*) as custdist
        from (
            select c.c_custkey as c_custkey, count(o_orderkey) as c_count
            from tpch_customer c
            left join tpch_orders o on c.c_custkey = o.o_custkey
            group by c.c_custkey
        )
        group by c_count
        order by custdist desc, c_count desc;
    """,
    14: """
        select 100.00 * sum(case when p_type like 'PROMO%'
                then l_extendedprice * (1 - l_discount) else 0 end)
            / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
        from tpch_lineitem l
        join tpch_part p on l.l_partkey = p.p_partkey
        where l_shipdate >= '1995-09-01' and l_shipdate < '1995-10-01';
    """,
    19: """
        select sum(l_extendedprice * (1 - l_discount)) as revenue
        from tpch_lineitem l
        join tpch_part p on p.p_partkey = l.l_partkey
        where p_size between 1 and 15
            and l_shipmode in ('AIR', 'RAIL')
            and l_quantity >= 1 and l_quantity <= 30;
    """,
}


def runnable_queries() -> tuple[int, ...]:
    """Query numbers with a Swift-dialect text available."""
    return tuple(sorted(TPCH_SQL))


def query_sql(query: int) -> str:
    """The Swift-dialect SQL text for ``query``."""
    if query not in TPCH_SQL:
        raise KeyError(
            f"no Swift-dialect text for Q{query}; available: {runnable_queries()}"
        )
    return TPCH_SQL[query]


def run_tpch_query(query: int, database, engine: str = "auto", **kwargs):
    """Execute TPC-H ``query`` over ``database`` via the engine dispatcher.

    ``engine`` is ``"auto"`` (columnar when supported), ``"row"``, or
    ``"columnar"``; extra keyword arguments (``batch_size``, ``tracer``,
    ``metrics``) pass through to :func:`repro.sql.dispatch.run_query`.
    """
    from ..sql.dispatch import run_query

    return run_query(query_sql(query), database, engine=engine, **kwargs)
