"""Terasort workload: M map tasks x N reduce tasks (Table I).

Each map task reads and sorts 200 MB of input ("each Terasort Map task
processes 200MB data"), partitions it over the N reducers, and the reduce
stage merges sorted runs — a global sort, so the map->reduce edge is a
barrier edge and Swift splits the job into two graphlets.
"""

from __future__ import annotations

from ..core.dag import Edge, Job, JobDAG, Stage
from ..core.operators import OperatorKind as K, ops

MAP_INPUT_BYTES = 200e6

#: The M x N grid of Table I.
TABLE1_SIZES: tuple[tuple[int, int], ...] = (
    (250, 250),
    (500, 500),
    (1000, 1000),
    (1500, 1500),
)


def terasort_dag(
    n_maps: int,
    n_reduces: int,
    map_input_bytes: float = MAP_INPUT_BYTES,
    job_id: str | None = None,
) -> JobDAG:
    """Build a Terasort job DAG of ``n_maps`` x ``n_reduces`` tasks."""
    if n_maps < 1 or n_reduces < 1:
        raise ValueError("terasort needs at least one map and one reduce task")
    maps = Stage(
        name="map",
        task_count=n_maps,
        # The map side performs the partition sort, making the shuffle edge
        # a barrier: reducers merge complete sorted runs.
        operators=ops(K.TABLE_SCAN, K.SORT_BY, K.SHUFFLE_WRITE),
        scan_bytes_per_task=map_input_bytes,
        output_bytes_per_task=map_input_bytes,
    )
    reduces = Stage(
        name="reduce",
        task_count=n_reduces,
        operators=ops(K.SHUFFLE_READ, K.MERGE_SORT, K.ADHOC_SINK),
        output_bytes_per_task=map_input_bytes * n_maps / n_reduces,
    )
    dag = JobDAG(
        job_id or f"terasort_{n_maps}x{n_reduces}",
        [maps, reduces],
        [Edge("map", "reduce")],
    )
    dag.validate()
    return dag


def terasort_job(n_maps: int, n_reduces: int, submit_time: float = 0.0) -> Job:
    """Submission-ready Terasort job."""
    return Job(dag=terasort_dag(n_maps, n_reduces), submit_time=submit_time)
