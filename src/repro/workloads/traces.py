"""Production-trace workload generator, calibrated to Fig. 8.

The paper replays 2,000 production jobs whose marginals Fig. 8 shows: the
average job run time is 30 s, more than 90% of jobs complete within 120 s,
and more than 80% of jobs have at most 80 tasks and at most 4 stages.  The
generator samples job shapes from distributions fitted to those quantiles;
:func:`trace_statistics` lets tests verify the calibration.

It also provides the specialised samplers the other experiments need:

* :func:`cluster_profile_jobs` — four workload mixes with increasing DAG
  depth, reproducing the four production clusters of Fig. 3;
* :func:`shuffle_class_jobs` — small / medium / large shuffle-edge-size
  classes for the Fig. 12 ablation.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

from ..core.dag import Edge, Job, JobDAG, Stage
from ..core.operators import Operator, OperatorKind as K, ops

MB = 1e6

#: Lognormal parameters for job *work* duration: median ~18 s gives a mean
#: of ~30 s and P90 < 120 s once DAG structure is added.
_RUNTIME_MU = math.log(16.0)
_RUNTIME_SIGMA = 0.95

#: Stage-count distribution: P(<=4 stages) ~ 0.84 (Fig. 8(b)).
_STAGE_COUNT_WEIGHTS: tuple[tuple[int, float], ...] = (
    (1, 0.30),
    (2, 0.22),
    (3, 0.18),
    (4, 0.14),
    (5, 0.07),
    (6, 0.05),
    (7, 0.03),
    (8, 0.01),
)


def _sample_stage_count(rng: random.Random) -> int:
    u = rng.random()
    acc = 0.0
    for count, weight in _STAGE_COUNT_WEIGHTS:
        acc += weight
        if u <= acc:
            return count
    return _STAGE_COUNT_WEIGHTS[-1][0]


def _sample_task_count(
    rng: random.Random, n_stages: int, large: bool, cap: int = 700
) -> int:
    """Per-stage task count.

    Small jobs keep >80% of jobs at <= 80 total tasks; the ~12% large-job
    class reaches into the hundreds of tasks per stage (Fig. 8(b)'s axis
    extends to 2,000 tasks) — these are the jobs whose whole-job gangs
    cause JetScope's head-of-line blocking.
    """
    if large:
        value = rng.lognormvariate(math.log(180.0), 0.6)
        return max(min(40, cap), min(cap, int(value)))
    budget = 80 / max(1, n_stages)
    value = rng.lognormvariate(math.log(max(2.0, budget / 3.0)), 0.8)
    return max(1, min(80, cap, int(value)))


@dataclass
class TraceConfig:
    """Knobs of the trace generator."""

    n_jobs: int = 2000
    #: Mean inter-arrival gap in seconds (Poisson arrivals).
    mean_interarrival: float = 0.25
    #: Probability a stage contains a global-sort operator, making its
    #: outgoing edge a barrier.
    blocking_probability: float = 0.45
    #: Mean bytes shuffled per stage output (lognormal).
    shuffle_bytes_median: float = 80 * MB
    shuffle_bytes_sigma: float = 1.2
    #: Fraction of jobs in the large class (hundreds of tasks per stage).
    large_job_fraction: float = 0.12
    #: Hard cap on tasks per stage; lower it when replaying on clusters too
    #: small to gang-schedule the large-job class.
    max_stage_tasks: int = 700
    #: Truncation of the per-job work tail: Fig. 8(a) has >90% of jobs
    #: finishing within 120 s.
    max_total_work: float = 140.0
    seed: int = 7


def _stage_ops(blocking: bool, is_scan: bool, is_sink: bool) -> tuple[Operator, ...]:
    kinds: list[K] = []
    kinds.append(K.TABLE_SCAN if is_scan else K.SHUFFLE_READ)
    if blocking:
        kinds.append(K.MERGE_SORT)
    else:
        kinds.append(K.HASH_AGGREGATE)
    kinds.append(K.ADHOC_SINK if is_sink else K.SHUFFLE_WRITE)
    return ops(*kinds)


def generate_job(
    rng: random.Random,
    job_id: str,
    config: TraceConfig,
    submit_time: float = 0.0,
    n_stages: int | None = None,
) -> Job:
    """Sample one trace job: a mostly-chain DAG with occasional fan-in."""
    n = n_stages if n_stages is not None else _sample_stage_count(rng)
    total_work = min(
        rng.lognormvariate(_RUNTIME_MU, _RUNTIME_SIGMA), config.max_total_work
    )
    large = rng.random() < config.large_job_fraction
    work_per_stage = total_work / n
    stages: list[Stage] = []
    edges: list[Edge] = []
    for i in range(n):
        is_scan = i == 0 or (i == 1 and n >= 3 and rng.random() < 0.25)
        is_sink = i == n - 1
        blocking = (not is_sink) and rng.random() < config.blocking_probability
        tasks = _sample_task_count(rng, n, large, cap=config.max_stage_tasks)
        out_bytes = rng.lognormvariate(
            math.log(config.shuffle_bytes_median), config.shuffle_bytes_sigma
        )
        stage = Stage(
            name=f"S{i + 1}",
            task_count=tasks,
            operators=_stage_ops(blocking, is_scan, is_sink),
            scan_bytes_per_task=(out_bytes * 2 / tasks) if is_scan else 0.0,
            output_bytes_per_task=0.0 if is_sink else out_bytes / tasks,
            work_seconds_per_task=work_per_stage * rng.uniform(0.6, 1.4),
        )
        stages.append(stage)
        if i > 0 and not (is_scan and i == 1):
            edges.append(Edge(f"S{i}", f"S{i + 1}"))
        elif i == 1 and is_scan and n >= 3:
            # Side scan feeding the join at stage 3.
            edges.append(Edge("S2", "S3"))
            edges.append(Edge("S1", "S3"))
    # Ensure connectivity when the side-scan shape was drawn.
    dag = JobDAG(job_id, stages, _dedupe(edges))
    dag.validate()
    return Job(dag=dag, submit_time=submit_time)


def _dedupe(edges: list[Edge]) -> list[Edge]:
    seen: set[tuple[str, str]] = set()
    result: list[Edge] = []
    for edge in edges:
        key = (edge.src, edge.dst)
        if key not in seen:
            seen.add(key)
            result.append(edge)
    return result


def generate_trace(config: TraceConfig | None = None) -> list[Job]:
    """Generate the full replay trace with Poisson arrivals."""
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    jobs: list[Job] = []
    t = 0.0
    for i in range(config.n_jobs):
        jobs.append(generate_job(rng, f"trace_{i:05d}", config, submit_time=t))
        t += rng.expovariate(1.0 / config.mean_interarrival)
    return jobs


def trace_statistics(jobs: list[Job]) -> dict[str, float]:
    """Structural statistics used to validate Fig. 8 calibration."""
    if not jobs:
        raise ValueError("no jobs")
    task_counts = sorted(j.dag.total_tasks() for j in jobs)
    stage_counts = sorted(len(j.dag) for j in jobs)

    def frac_at_most(values: list[int], limit: int) -> float:
        """Fraction of values at or below ``limit``."""
        return sum(1 for v in values if v <= limit) / len(values)

    return {
        "jobs": float(len(jobs)),
        "frac_tasks_le_80": frac_at_most(task_counts, 80),
        "frac_stages_le_4": frac_at_most(stage_counts, 4),
        "max_tasks": float(task_counts[-1]),
        "max_stages": float(stage_counts[-1]),
    }


# ----------------------------------------------------------------------
# Paper-scale replay (the `repro bench --suite scale` workload)
# ----------------------------------------------------------------------

#: Cluster size of the production evaluation (Section V: ~2,000 machines).
PAPER_SCALE_MACHINES = 2000

#: Executor slots per machine for the scale replay.  Small on purpose: the
#: paper's clusters run many more slots, but the bench measures *scheduling*
#: throughput, and free-slot pressure is what exercises the gang scheduler.
PAPER_SCALE_EXECUTORS = 4


def paper_scale_config(
    n_jobs: int = 2000, seed: int = 7, max_stage_tasks: int = 700
) -> TraceConfig:
    """Trace knobs for the 2,000-machine calibrated replay.

    Same Fig. 8 marginals as :class:`TraceConfig`, with arrivals compressed
    so a 2,000-machine cluster stays busy: the paper replays one day of
    production load, the bench replays the same shape in simulated minutes.
    ``max_stage_tasks`` caps the large-job class so reduced (quick/CI)
    replays on small clusters can still gang-schedule every graphlet.
    """
    return TraceConfig(
        n_jobs=n_jobs,
        mean_interarrival=0.05,
        max_stage_tasks=max_stage_tasks,
        seed=seed,
    )


def paper_scale_trace(
    n_jobs: int = 2000, seed: int = 7, max_stage_tasks: int = 700
) -> list[Job]:
    """The calibrated trace the scale bench replays (Fig. 8 marginals)."""
    return generate_trace(
        paper_scale_config(n_jobs=n_jobs, seed=seed, max_stage_tasks=max_stage_tasks)
    )


# ----------------------------------------------------------------------
# Multi-tenant arrival traces (the `repro serve` / service-bench workload)
# ----------------------------------------------------------------------


def tenant_arrival_trace(
    n_tenants: int = 1000,
    n_jobs: int = 2000,
    mean_interarrival: float = 0.05,
    rate_skew: float = 1.0,
    deadline_slack: float = 4.0,
    deadline_fraction: float = 0.9,
    seed: int = 7,
    max_stage_tasks: int = 700,
) -> list[Job]:
    """Per-tenant Poisson arrivals with deadline/SLO annotations.

    Each tenant ``t0000..`` runs an independent Poisson arrival process
    with rate proportional to ``1 / (rank + 1) ** rate_skew`` (a Zipf-like
    skew: a few heavy tenants, a long tail — the production shape of
    PAPER.md §VI).  The merged stream is generated directly through the
    superposition property: global exponential gaps at the summed rate
    (``1 / mean_interarrival``), each arrival labeled tenant *i* with
    probability proportional to its rate — statistically identical to
    merging the per-tenant processes, and cheaper to sample.

    Job DAGs reuse the Fig. 8-calibrated :func:`generate_job` marginals.
    A ``deadline_fraction`` share of jobs carries an absolute deadline of
    ``arrival + slack * estimated_work`` (jittered ±25%), where estimated
    work is the serial per-stage work sum — tight enough that overloaded
    replays show real overruns, loose enough that an idle cluster meets
    most SLOs.
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    config = paper_scale_config(
        n_jobs=n_jobs, seed=seed, max_stage_tasks=max_stage_tasks
    )
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** rate_skew for i in range(n_tenants)]
    cum_weights = list(itertools.accumulate(weights))
    tenant_ids = list(range(n_tenants))
    jobs: list[Job] = []
    t = 0.0
    for i in range(n_jobs):
        tid = rng.choices(tenant_ids, cum_weights=cum_weights)[0]
        job = generate_job(rng, f"t{tid:04d}_j{i:05d}", config, submit_time=t)
        job.tenant = f"t{tid:04d}"
        if rng.random() < deadline_fraction:
            estimated = sum(
                (s.work_seconds_per_task or 0.0) for s in job.dag.stages.values()
            )
            slack = deadline_slack * estimated * rng.uniform(0.75, 1.25)
            job.deadline = t + max(2.0, slack)
        jobs.append(job)
        t += rng.expovariate(1.0 / mean_interarrival)
    return jobs


# ----------------------------------------------------------------------
# Fig. 3: four production-cluster workload mixes
# ----------------------------------------------------------------------

#: Per-cluster generator bias: (min stages, blocking probability).  Cluster
#: #1 runs mostly shallow jobs (low IdleRatio under gang scheduling);
#: clusters #2..#4 run progressively deeper, more barrier-heavy DAGs.
CLUSTER_PROFILES: tuple[dict[str, float], ...] = (
    {"single_stage_frac": 0.55, "blocking_probability": 0.40},
    {"single_stage_frac": 0.20, "blocking_probability": 0.55},
    {"single_stage_frac": 0.15, "blocking_probability": 0.60},
    {"single_stage_frac": 0.10, "blocking_probability": 0.65},
)


def cluster_profile_jobs(
    profile_index: int, n_jobs: int = 200, seed: int = 11
) -> list[Job]:
    """Jobs matching one of the four Fig. 3 production-cluster profiles."""
    if not 0 <= profile_index < len(CLUSTER_PROFILES):
        raise ValueError("profile_index must be 0..3")
    profile = CLUSTER_PROFILES[profile_index]
    config = TraceConfig(
        n_jobs=n_jobs,
        blocking_probability=profile["blocking_probability"],
        seed=seed + profile_index,
    )
    rng = random.Random(config.seed)
    jobs: list[Job] = []
    t = 0.0
    for i in range(n_jobs):
        if rng.random() < profile["single_stage_frac"]:
            n_stages = 1
        else:
            n_stages = max(2, _sample_stage_count(rng))
        jobs.append(
            generate_job(
                rng,
                f"cluster{profile_index}_{i:04d}",
                config,
                submit_time=t,
                n_stages=n_stages,
            )
        )
        t += rng.expovariate(1.0 / config.mean_interarrival)
    return jobs


# ----------------------------------------------------------------------
# Fig. 12: shuffle-edge-size classes
# ----------------------------------------------------------------------

#: (class name, producer tasks, consumer tasks) chosen so the edge size
#: M x N falls below 10,000 / between the thresholds / above 90,000.
SHUFFLE_CLASSES: dict[str, tuple[int, int]] = {
    "small": (60, 60),       # 3,600 edges
    "medium": (200, 200),    # 40,000 edges
    "large": (400, 400),     # 160,000 edges
}


def shuffle_class_jobs(
    category: str,
    n_jobs: int = 20,
    bytes_per_edge: float = 20e9,
    seed: int = 13,
) -> list[Job]:
    """Two-stage shuffle jobs of one Fig. 12 size class.

    Data volume is held constant across classes so the comparison isolates
    the connection-count effects of the shuffle scheme.
    """
    if category not in SHUFFLE_CLASSES:
        raise ValueError(f"category must be one of {sorted(SHUFFLE_CLASSES)}")
    m, n = SHUFFLE_CLASSES[category]
    rng = random.Random(seed)
    jobs: list[Job] = []
    t = 0.0
    for i in range(n_jobs):
        producer = Stage(
            name="src",
            task_count=m,
            operators=ops(K.TABLE_SCAN, K.SORT_BY, K.SHUFFLE_WRITE),
            scan_bytes_per_task=bytes_per_edge / m,
            output_bytes_per_task=bytes_per_edge / m,
        )
        consumer = Stage(
            name="dst",
            task_count=n,
            operators=ops(K.SHUFFLE_READ, K.MERGE_SORT, K.ADHOC_SINK),
        )
        dag = JobDAG(f"{category}_{i:03d}", [producer, consumer], [Edge("src", "dst")])
        jobs.append(Job(dag=dag, submit_time=t, tags={"shuffle_class": category}))
        # A few seconds between arrivals: two or three jobs shuffle
        # concurrently, as in a busy-but-not-saturated production replay.
        t += rng.expovariate(0.25)
    return jobs
