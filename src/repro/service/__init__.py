"""repro.service — the multi-tenant job-submission gateway.

Sits between workload generators and :class:`repro.core.SwiftRuntime`:
Poisson / trace-driven arrivals, per-tenant quotas and weighted fair
share, admission control under pool pressure, and earliest-deadline-first
dispatch.  The stable entry point is :class:`repro.api.Service`; this
package holds the engine pieces.
"""

from .gateway import JobEntry, JobGateway, RejectReason
from .policy import (
    AdmissionPolicy,
    PolicyValidationError,
    QueuePolicy,
    TenantSpec,
    default_tenant_template,
)
from .stats import TenantReport, build_reports, distribution, percentile, queue_csv

__all__ = [
    "AdmissionPolicy",
    "JobEntry",
    "JobGateway",
    "PolicyValidationError",
    "QueuePolicy",
    "RejectReason",
    "TenantReport",
    "TenantSpec",
    "build_reports",
    "default_tenant_template",
    "distribution",
    "percentile",
    "queue_csv",
]
