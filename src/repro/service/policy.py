"""Tenant, admission, and queueing policy dataclasses for the gateway.

All three round-trip through ``to_dict``/``from_dict`` in the same style as
:class:`repro.api.RuntimeConfig`, so a whole service configuration can be
checked into JSON and replayed deterministically.

The model follows the multi-tenant queueing shape of cloud data services
(PAPER.md §I/§VI; "Scheduling Storms and Streams in the Cloud"): every
arrival belongs to a *tenant* carrying quotas and a fair-share weight;
admission control sheds load when executor-pool pressure crosses a
threshold (the NOT_ENOUGH_SLOTS response); queued work is ordered
earliest-deadline-first inside each tenant and weighted-fair across
tenants, with strict priority tiers on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


class PolicyValidationError(ValueError):
    """A service policy dataclass failed validation."""


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant quotas and scheduling weight."""

    #: Tenant identifier; gateway queues and reports are keyed by it.
    name: str
    #: Max jobs a tenant may have dispatched-but-unfinished (0 = unlimited).
    max_concurrent_jobs: int = 0
    #: Max executor slots its running jobs may claim, measured as each
    #: job's largest gang request (0 = unlimited).
    max_executor_slots: int = 0
    #: Weighted fair-share weight; dispatch charges ``slots / weight``
    #: virtual time, so a weight-2 tenant drains twice as fast as weight-1.
    weight: float = 1.0
    #: Strict-priority tier; higher tiers always dispatch first when
    #: :attr:`QueuePolicy.strict_priority` is on.
    priority: int = 0

    def validate(self) -> "TenantSpec":
        """Raise :class:`PolicyValidationError` on bad values; return self."""
        if not self.name:
            raise PolicyValidationError("TenantSpec.name must be non-empty")
        if self.max_concurrent_jobs < 0:
            raise PolicyValidationError("max_concurrent_jobs must be >= 0")
        if self.max_executor_slots < 0:
            raise PolicyValidationError("max_executor_slots must be >= 0")
        if self.weight <= 0:
            raise PolicyValidationError("weight must be > 0")
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_executor_slots": self.max_executor_slots,
            "weight": self.weight,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantSpec":
        """Build from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise PolicyValidationError(f"unknown TenantSpec keys: {sorted(extra)}")
        return cls(**dict(payload)).validate()

    def renamed(self, name: str) -> "TenantSpec":
        """A copy with a different :attr:`name` (auto-registration template)."""
        return TenantSpec(
            name=name,
            max_concurrent_jobs=self.max_concurrent_jobs,
            max_executor_slots=self.max_executor_slots,
            weight=self.weight,
            priority=self.priority,
        )


#: Admission verdicts when pool pressure exceeds the policy threshold.
ON_PRESSURE_REJECT = "reject"
ON_PRESSURE_QUEUE = "queue"


@dataclass(frozen=True)
class AdmissionPolicy:
    """When the gateway rejects an arrival instead of queueing it.

    Jobs whose largest gang request can never fit — it exceeds cluster
    capacity or the tenant's ``max_executor_slots`` — are always rejected
    (reason ``oversize``): queueing them would deadlock the tenant queue.
    """

    #: Max jobs waiting in one tenant's queue before ``queue_full``
    #: rejections (0 = unlimited).
    max_pending_per_tenant: int = 0
    #: Pool-pressure threshold (demand / total executors, see
    #: :meth:`repro.core.scheduler.ResourceScheduler.pool_pressure`) above
    #: which arrivals get the ``not_enough_slots`` treatment (0 = disabled).
    max_pool_pressure: float = 0.0
    #: What the ``not_enough_slots`` treatment is: ``"reject"`` sheds the
    #: arrival, ``"queue"`` admits it but lets it wait out the pressure.
    on_pressure: str = ON_PRESSURE_REJECT

    def validate(self) -> "AdmissionPolicy":
        """Raise :class:`PolicyValidationError` on bad values; return self."""
        if self.max_pending_per_tenant < 0:
            raise PolicyValidationError("max_pending_per_tenant must be >= 0")
        if self.max_pool_pressure < 0:
            raise PolicyValidationError("max_pool_pressure must be >= 0")
        if self.on_pressure not in (ON_PRESSURE_REJECT, ON_PRESSURE_QUEUE):
            raise PolicyValidationError(
                f"on_pressure must be 'reject' or 'queue', got {self.on_pressure!r}"
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation; inverse of :meth:`from_dict`."""
        return {
            "max_pending_per_tenant": self.max_pending_per_tenant,
            "max_pool_pressure": self.max_pool_pressure,
            "on_pressure": self.on_pressure,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdmissionPolicy":
        """Build from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise PolicyValidationError(f"unknown AdmissionPolicy keys: {sorted(extra)}")
        return cls(**dict(payload)).validate()


@dataclass(frozen=True)
class QueuePolicy:
    """How queued arrivals are ordered for dispatch."""

    #: Weighted fair share across tenants (False = FIFO by global arrival).
    fair_share: bool = True
    #: Higher :attr:`TenantSpec.priority` tiers always dispatch first.
    strict_priority: bool = True
    #: Earliest-deadline-first inside each tenant queue (False = FIFO;
    #: deadline-less jobs sort last either way).
    deadline_first: bool = True

    def validate(self) -> "QueuePolicy":
        """No invalid combinations today; kept for config-surface symmetry."""
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation; inverse of :meth:`from_dict`."""
        return {
            "fair_share": self.fair_share,
            "strict_priority": self.strict_priority,
            "deadline_first": self.deadline_first,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueuePolicy":
        """Build from :meth:`to_dict` output; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise PolicyValidationError(f"unknown QueuePolicy keys: {sorted(extra)}")
        return cls(**dict(payload)).validate()


def default_tenant_template() -> TenantSpec:
    """The template used when unknown tenants are auto-registered."""
    return TenantSpec(name="default")


__all__ = [
    "ON_PRESSURE_QUEUE",
    "ON_PRESSURE_REJECT",
    "AdmissionPolicy",
    "PolicyValidationError",
    "QueuePolicy",
    "TenantSpec",
    "default_tenant_template",
]
