"""The job-submission gateway: arrivals, admission, deadline dispatch.

:class:`JobGateway` sits between workload generators and
:class:`~repro.core.runtime.SwiftRuntime`, entirely driven by simulator
events (PAPER.md §I/§VI — Swift as the engine behind a multi-tenant
interactive service).  It owns three things the runtime deliberately does
not:

* **arrival processes** — jobs enter at their trace arrival times via
  kernel events (``submit`` / ``submit_trace``), not pre-loaded batches;
* **per-tenant state** — quotas (max concurrent jobs / executor slots),
  weighted fair-share virtual time, strict-priority tiers, and pending
  queues ordered earliest-deadline-first;
* **admission control** — arrivals are rejected (the NOT_ENOUGH_SLOTS
  shape) or held when executor-pool pressure crosses the policy
  threshold, with obs counters for every verdict.

Dispatch feeds admitted jobs into the runtime through the ordinary
``submit_all`` path, so the gateway adds queueing semantics without
forking the execution model.  Executor-slot demand is accounted as a
job's *largest gang request* (the peak single-unit allocation the
scheduler must satisfy at once), which makes quota checks deterministic
and keeps dispatch deadlock-free: any job that passed the oversize check
eventually fits once enough claims drain.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..core.dag import Job
from ..core.runtime import JobResult, SwiftRuntime
from ..obs.records import Category
from .policy import (
    ON_PRESSURE_REJECT,
    AdmissionPolicy,
    QueuePolicy,
    TenantSpec,
    default_tenant_template,
)
from .stats import TenantReport, build_reports, queue_csv


class RejectReason:
    """Admission-rejection reason strings (CSV / obs counter suffixes)."""

    #: Pool pressure above :attr:`AdmissionPolicy.max_pool_pressure`.
    NOT_ENOUGH_SLOTS = "not_enough_slots"
    #: Tenant queue above :attr:`AdmissionPolicy.max_pending_per_tenant`.
    QUEUE_FULL = "queue_full"
    #: Largest gang can never fit (cluster capacity or tenant slot quota).
    OVERSIZE = "oversize"
    #: Tenant not registered and auto-registration disabled.
    UNKNOWN_TENANT = "unknown_tenant"


@dataclass
class JobEntry:
    """One arrival's lifecycle through the gateway (the audit ledger row)."""

    seq: int
    job: Job
    tenant: str
    deadline: Optional[float]
    #: Executor-slot demand: the job's largest gang request.
    slots: int
    arrival: float
    #: ``pending`` (pre-arrival) -> ``queued`` -> ``running`` ->
    #: ``completed``/``failed``; or ``rejected`` straight from arrival.
    status: str = "pending"
    reject_reason: str = ""
    dispatch: float = math.nan
    finish: float = math.nan

    @property
    def job_id(self) -> str:
        """The underlying job's identifier."""
        return self.job.job_id

    @property
    def queue_time(self) -> float:
        """Seconds spent queued at the gateway (nan until dispatched)."""
        return self.dispatch - self.arrival

    @property
    def makespan(self) -> float:
        """Arrival-to-finish seconds (nan until finished)."""
        return self.finish - self.arrival

    @property
    def overrun(self) -> float:
        """Seconds finished past the deadline; 0 when met or no deadline."""
        if self.deadline is None or math.isnan(self.finish):
            return 0.0
        return max(0.0, self.finish - self.deadline)


class _TenantState:
    """Mutable gateway-side bookkeeping for one tenant."""

    __slots__ = (
        "spec",
        "index",
        "heap",
        "running_jobs",
        "running_slots",
        "vtime",
        "peak_concurrent_jobs",
        "peak_executor_slots",
    )

    def __init__(self, spec: TenantSpec, index: int) -> None:
        self.spec = spec
        #: Registration order; the deterministic tie-break for dispatch.
        self.index = index
        #: (order_key, seq, entry) min-heap of queued arrivals.
        self.heap: list[tuple[float, int, JobEntry]] = []
        self.running_jobs = 0
        self.running_slots = 0
        #: Weighted fair-share virtual time; dispatch charges slots/weight.
        self.vtime = 0.0
        self.peak_concurrent_jobs = 0
        self.peak_executor_slots = 0

    def peek(self) -> Optional[JobEntry]:
        return self.heap[0][2] if self.heap else None

    def pop(self) -> JobEntry:
        return heapq.heappop(self.heap)[2]


class JobGateway:
    """Multi-tenant admission + dispatch front end for one runtime.

    The gateway installs itself as the runtime's ``on_job_done`` hook; a
    runtime serves at most one gateway.  Typical use goes through the
    :class:`repro.api.Service` facade; direct construction is for tests
    and custom harnesses::

        gateway = JobGateway(runtime, admission=AdmissionPolicy(...))
        gateway.submit_trace(tenant_arrival_trace(...))
        runtime.run()
        reports = gateway.reports()
    """

    def __init__(
        self,
        runtime: SwiftRuntime,
        *,
        tenants: Iterable[TenantSpec] = (),
        admission: Optional[AdmissionPolicy] = None,
        queue_policy: Optional[QueuePolicy] = None,
        default_tenant: Optional[TenantSpec] = None,
        auto_register: bool = True,
    ) -> None:
        if runtime.on_job_done is not None:
            raise ValueError("runtime already has an on_job_done hook installed")
        self.runtime = runtime
        self.admission = (admission or AdmissionPolicy()).validate()
        self.queue_policy = (queue_policy or QueuePolicy()).validate()
        self.default_tenant = (default_tenant or default_tenant_template()).validate()
        self.auto_register = auto_register
        self.entries: list[JobEntry] = []
        self._by_job_id: dict[str, JobEntry] = {}
        self._tenants: dict[str, _TenantState] = {}
        self._tenant_order: list[_TenantState] = []
        #: Executor slots claimed by dispatched-but-unfinished jobs.
        self.claimed_slots = 0
        #: Executor slots demanded by jobs still queued at the gateway.
        self.backlog_slots = 0
        #: Fair-share virtual clock: vtime of the last dispatched tenant,
        #: used to re-anchor tenants that wake from idle (no credit hoard).
        self._vclock = 0.0
        #: Timestamp of the pending deduped dispatch event, if any.
        self._dispatch_at: Optional[float] = None
        self._seq = 0
        for spec in tenants:
            self.register(spec)
        runtime.on_job_done = self._on_job_done

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------
    def register(self, spec: TenantSpec) -> None:
        """Register (or replace the spec of) a tenant."""
        spec.validate()
        state = self._tenants.get(spec.name)
        if state is not None:
            state.spec = spec
            return
        state = _TenantState(spec, len(self._tenant_order))
        self._tenants[spec.name] = state
        self._tenant_order.append(state)
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.instant(
                Category.TENANT,
                "tenant.registered",
                self.runtime.event_now(),
                scope=spec.name,
                weight=spec.weight,
                priority=spec.priority,
            )

    def tenant_names(self) -> list[str]:
        """Registered tenants in registration order."""
        return [state.spec.name for state in self._tenant_order]

    # ------------------------------------------------------------------
    # Submission (arrival scheduling)
    # ------------------------------------------------------------------
    def submit(
        self,
        job: Job,
        *,
        tenant: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> JobEntry:
        """Schedule one arrival at ``job.submit_time``; returns its entry.

        ``tenant``/``deadline`` override the job's own fields; the job is
        stamped with the resolved values so runtime metrics carry them.
        """
        entry = self._make_entry(job, tenant, deadline)
        self.runtime.sim.schedule_at(entry.arrival, self._on_arrival, entry)
        return entry

    def submit_trace(self, jobs: Sequence[Job]) -> list[JobEntry]:
        """Bulk-schedule an arrival trace (one ``schedule_batch`` call)."""
        entries = [self._make_entry(job, None, None) for job in jobs]
        now = self.runtime.sim.now
        self.runtime.sim.schedule_batch(
            [(entry.arrival - now, self._on_arrival, (entry,)) for entry in entries]
        )
        return entries

    def _make_entry(
        self, job: Job, tenant: Optional[str], deadline: Optional[float]
    ) -> JobEntry:
        resolved_tenant = tenant if tenant is not None else (job.tenant or "default")
        resolved_deadline = deadline if deadline is not None else job.deadline
        job.tenant = resolved_tenant
        job.deadline = resolved_deadline
        arrival = max(job.submit_time, self.runtime.event_now())
        self._seq += 1
        entry = JobEntry(
            seq=self._seq,
            job=job,
            tenant=resolved_tenant,
            deadline=resolved_deadline,
            slots=self._gang_slots(job),
            arrival=arrival,
        )
        self.entries.append(entry)
        self._by_job_id[job.job_id] = entry
        return entry

    def _gang_slots(self, job: Job) -> int:
        """Peak single-gang executor demand under the runtime's partitioner."""
        graphlets = self.runtime.policy.partitioner.partition(job.dag)
        return max(g.task_count(job.dag) for g in graphlets.graphlets)

    # ------------------------------------------------------------------
    # Arrival + admission
    # ------------------------------------------------------------------
    def _on_arrival(self, entry: JobEntry) -> None:
        # Observe exact cluster state: catch up deferred fast-path finishes
        # strictly before this arrival (mirrors _on_job_submitted).
        self.runtime._flush_finishes(strict=True)
        now = self.runtime.event_now()
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.count("gateway_arrivals")
            tracer.instant(
                Category.QUEUE,
                "gateway.arrived",
                now,
                entry.job_id,
                scope=entry.tenant,
                slots=entry.slots,
            )
        state = self._tenants.get(entry.tenant)
        if state is None:
            if not self.auto_register:
                self._reject(entry, RejectReason.UNKNOWN_TENANT, now)
                return
            self.register(self.default_tenant.renamed(entry.tenant))
            state = self._tenants[entry.tenant]
        spec = state.spec
        total = self.runtime.cluster.total_executors()
        if entry.slots > total or (
            0 < spec.max_executor_slots < entry.slots
        ):
            self._reject(entry, RejectReason.OVERSIZE, now)
            return
        policy = self.admission
        if 0 < policy.max_pending_per_tenant <= len(state.heap):
            self._reject(entry, RejectReason.QUEUE_FULL, now)
            return
        if policy.max_pool_pressure > 0:
            pressure = self.runtime.scheduler.pool_pressure(
                extra_demand=self.backlog_slots + entry.slots
            )
            if pressure > policy.max_pool_pressure:
                if policy.on_pressure == ON_PRESSURE_REJECT:
                    self._reject(entry, RejectReason.NOT_ENOUGH_SLOTS, now)
                    return
                if tracer.enabled:
                    tracer.count("gateway_pressure_queued")
                    tracer.instant(
                        Category.QUEUE,
                        "gateway.pressure_queued",
                        now,
                        entry.job_id,
                        scope=entry.tenant,
                        pressure=pressure,
                    )
        self._enqueue(state, entry, now)
        self._dispatch()

    def _enqueue(self, state: _TenantState, entry: JobEntry, now: float) -> None:
        entry.status = "queued"
        if not state.heap:
            # Waking from idle: re-anchor fair-share credit to the virtual
            # clock so an idle tenant cannot hoard bandwidth.
            state.vtime = max(state.vtime, self._vclock)
        if self.queue_policy.deadline_first and entry.deadline is not None:
            order_key = entry.deadline
        else:
            order_key = math.inf
        heapq.heappush(state.heap, (order_key, entry.seq, entry))
        self.backlog_slots += entry.slots
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.count("gateway_admitted")
            tracer.instant(
                Category.QUEUE,
                "gateway.admitted",
                now,
                entry.job_id,
                scope=entry.tenant,
                backlog=len(state.heap),
            )

    def _reject(self, entry: JobEntry, reason: str, now: float) -> None:
        entry.status = "rejected"
        entry.reject_reason = reason
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.count("gateway_rejections")
            tracer.count(f"gateway_rejections_{reason}")
            tracer.instant(
                Category.QUEUE,
                "gateway.rejected",
                now,
                entry.job_id,
                scope=entry.tenant,
                reason=reason,
            )

    # ------------------------------------------------------------------
    # Dispatch (EDF within weighted fair share, strict priority on top)
    # ------------------------------------------------------------------
    def _eligible(self, state: _TenantState, entry: JobEntry, budget: int) -> bool:
        spec = state.spec
        if 0 < spec.max_concurrent_jobs <= state.running_jobs:
            return False
        if 0 < spec.max_executor_slots < state.running_slots + entry.slots:
            return False
        return entry.slots <= budget

    def _pick_tenant(self, budget: int) -> Optional[_TenantState]:
        qp = self.queue_policy
        best: Optional[_TenantState] = None
        best_key: tuple[float, float, int] = (0.0, 0.0, 0)
        for state in self._tenant_order:
            entry = state.peek()
            if entry is None or not self._eligible(state, entry, budget):
                continue
            key = (
                -float(state.spec.priority) if qp.strict_priority else 0.0,
                state.vtime if qp.fair_share else float(entry.seq),
                state.index,
            )
            if best is None or key < best_key:
                best, best_key = state, key
        return best

    def _dispatch(self) -> None:
        now = self.runtime.event_now()
        budget = self.runtime.cluster.total_executors() - self.claimed_slots
        batch: list[Job] = []
        tracer = self.runtime.tracer
        while True:
            state = self._pick_tenant(budget)
            if state is None:
                break
            entry = state.pop()
            entry.status = "running"
            entry.dispatch = now
            entry.job.submit_time = now
            state.running_jobs += 1
            state.running_slots += entry.slots
            state.peak_concurrent_jobs = max(state.peak_concurrent_jobs, state.running_jobs)
            state.peak_executor_slots = max(state.peak_executor_slots, state.running_slots)
            state.vtime += entry.slots / state.spec.weight
            self._vclock = state.vtime
            self.backlog_slots -= entry.slots
            self.claimed_slots += entry.slots
            budget -= entry.slots
            batch.append(entry.job)
            if tracer.enabled:
                tracer.count("gateway_dispatched")
                tracer.instant(
                    Category.QUEUE,
                    "gateway.dispatched",
                    now,
                    entry.job_id,
                    scope=entry.tenant,
                    queue_time=entry.queue_time,
                    slots=entry.slots,
                )
        if batch:
            self.runtime.submit_all(batch)

    def _schedule_dispatch(self) -> None:
        """Queue a deduped dispatch event at the safe current time."""
        at = self.runtime.event_now()
        if self._dispatch_at is not None and self._dispatch_at <= at:
            return
        self._dispatch_at = at
        self.runtime.sim.schedule_at(at, self._dispatch_event)

    def _dispatch_event(self) -> None:
        self._dispatch_at = None
        self._dispatch()

    # ------------------------------------------------------------------
    # Completion hook
    # ------------------------------------------------------------------
    def _on_job_done(self, result: JobResult) -> None:
        entry = self._by_job_id.get(result.job_id)
        if entry is None or entry.status not in ("running",):
            return
        entry.status = "completed" if result.completed else "failed"
        entry.finish = result.metrics.finish_time
        state = self._tenants[entry.tenant]
        state.running_jobs -= 1
        state.running_slots -= entry.slots
        self.claimed_slots -= entry.slots
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.count("gateway_completions")
            if entry.overrun > 0:
                tracer.count("gateway_deadline_overruns")
            tracer.instant(
                Category.QUEUE,
                "gateway.finished",
                entry.finish,
                entry.job_id,
                scope=entry.tenant,
                status=entry.status,
                makespan=entry.makespan,
                overrun=entry.overrun,
            )
        if self.backlog_slots > 0:
            self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reports(self) -> dict[str, TenantReport]:
        """Per-tenant percentile reports over the entry ledger."""
        reports = build_reports(self.entries)
        for name, report in reports.items():
            state = self._tenants.get(name)
            if state is not None:
                report.peak_concurrent_jobs = state.peak_concurrent_jobs
                report.peak_executor_slots = state.peak_executor_slots
        return reports

    def queue_csv(self) -> str:
        """The per-job queue-time table as a deterministic CSV string."""
        return queue_csv(self.entries)

    def quota_violations(self) -> list[str]:
        """Quota invariants that were breached (always empty by design).

        ``repro serve --check`` asserts this stays empty: the dispatcher
        must never let a tenant's high-water marks exceed its quotas, and
        claimed slots must never exceed cluster capacity.
        """
        problems: list[str] = []
        total = self.runtime.cluster.total_executors()
        for state in self._tenant_order:
            spec = state.spec
            if 0 < spec.max_concurrent_jobs < state.peak_concurrent_jobs:
                problems.append(
                    f"{spec.name}: peak_concurrent_jobs {state.peak_concurrent_jobs}"
                    f" > quota {spec.max_concurrent_jobs}"
                )
            if 0 < spec.max_executor_slots < state.peak_executor_slots:
                problems.append(
                    f"{spec.name}: peak_executor_slots {state.peak_executor_slots}"
                    f" > quota {spec.max_executor_slots}"
                )
            if state.peak_executor_slots > total:
                problems.append(
                    f"{spec.name}: peak_executor_slots {state.peak_executor_slots}"
                    f" > cluster capacity {total}"
                )
        if self.claimed_slots != 0 and not any(
            e.status in ("queued", "running", "pending") for e in self.entries
        ):
            problems.append(f"claimed_slots {self.claimed_slots} != 0 after drain")
        return problems


__all__ = ["JobEntry", "JobGateway", "RejectReason"]
