"""Per-tenant queueing statistics: percentiles, reports, CSV export.

Everything here is pure post-processing over the gateway's
:class:`~repro.service.gateway.JobEntry` ledger, so reports and CSVs are
byte-reproducible for a given arrival trace + policy configuration (the
seeded-determinism test relies on this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .gateway import JobEntry


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``q`` is in [0, 100]; returns ``nan`` for an empty sequence. Nearest
    rank keeps reports exactly reproducible (no interpolation drift).
    """
    if not sorted_values:
        return math.nan
    if q <= 0:
        return sorted_values[0]
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


def distribution(values: Iterable[float]) -> dict[str, float]:
    """n/mean/p50/p95/p99/max summary of a sample (nan-free when empty)."""
    data = sorted(values)
    if not data:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "n": len(data),
        "mean": sum(data) / len(data),
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "p99": percentile(data, 99),
        "max": data[-1],
    }


@dataclass
class TenantReport:
    """Aggregated queueing outcomes for one tenant."""

    tenant: str
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    #: Rejections broken down by reason (``not_enough_slots`` etc).
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    #: Admitted but still queued/running when the run stopped.
    unfinished: int = 0
    #: Time-in-queue distribution (arrival -> dispatch), seconds.
    queue_time: dict[str, float] = field(default_factory=dict)
    #: Makespan distribution (arrival -> finish), seconds.
    makespan: dict[str, float] = field(default_factory=dict)
    #: Jobs that finished past their deadline.
    deadline_overruns: int = 0
    #: Overrun distribution over jobs *with* deadlines (met jobs count 0).
    overrun: dict[str, float] = field(default_factory=dict)
    #: High-water mark of concurrently dispatched jobs.
    peak_concurrent_jobs: int = 0
    #: High-water mark of claimed executor slots (largest-gang accounting).
    peak_executor_slots: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (summary.json rows)."""
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "completed": self.completed,
            "failed": self.failed,
            "unfinished": self.unfinished,
            "queue_time": self.queue_time,
            "makespan": self.makespan,
            "deadline_overruns": self.deadline_overruns,
            "overrun": self.overrun,
            "peak_concurrent_jobs": self.peak_concurrent_jobs,
            "peak_executor_slots": self.peak_executor_slots,
        }


def build_reports(entries: Sequence["JobEntry"]) -> dict[str, TenantReport]:
    """Fold the gateway's entry ledger into per-tenant reports."""
    reports: dict[str, TenantReport] = {}
    samples: dict[str, tuple[list[float], list[float], list[float]]] = {}
    for entry in entries:
        report = reports.get(entry.tenant)
        if report is None:
            report = reports[entry.tenant] = TenantReport(tenant=entry.tenant)
            samples[entry.tenant] = ([], [], [])
        queue_times, makespans, overruns = samples[entry.tenant]
        report.submitted += 1
        if entry.status == "rejected":
            report.rejected += 1
            reason = entry.reject_reason or "unknown"
            report.rejected_by_reason[reason] = report.rejected_by_reason.get(reason, 0) + 1
            continue
        report.admitted += 1
        if entry.status == "completed":
            report.completed += 1
        elif entry.status == "failed":
            report.failed += 1
        else:
            report.unfinished += 1
            continue
        queue_times.append(entry.queue_time)
        makespans.append(entry.makespan)
        if entry.deadline is not None:
            overruns.append(entry.overrun)
            if entry.overrun > 0:
                report.deadline_overruns += 1
    for tenant, report in reports.items():
        queue_times, makespans, overruns = samples[tenant]
        report.queue_time = distribution(queue_times)
        report.makespan = distribution(makespans)
        report.overrun = distribution(overruns)
    return dict(sorted(reports.items()))


#: Columns of the queue-time CSV, in order.
CSV_HEADER = (
    "seq,tenant,job_id,status,reject_reason,arrival,dispatch,finish,"
    "queue_time,makespan,deadline,overrun"
)


def _fmt(value: float) -> str:
    """Fixed-point field formatting; empty for unset (nan) values."""
    if math.isnan(value):
        return ""
    return f"{value:.6f}"


def queue_csv(entries: Sequence["JobEntry"]) -> str:
    """The per-job queue-time table as a deterministic CSV string."""
    lines = [CSV_HEADER]
    for entry in entries:
        deadline = "" if entry.deadline is None else f"{entry.deadline:.6f}"
        overrun = "" if entry.deadline is None else _fmt(entry.overrun)
        lines.append(
            f"{entry.seq},{entry.tenant},{entry.job_id},{entry.status},"
            f"{entry.reject_reason},{_fmt(entry.arrival)},{_fmt(entry.dispatch)},"
            f"{_fmt(entry.finish)},{_fmt(entry.queue_time)},{_fmt(entry.makespan)},"
            f"{deadline},{overrun}"
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "CSV_HEADER",
    "TenantReport",
    "build_reports",
    "distribution",
    "percentile",
    "queue_csv",
]
