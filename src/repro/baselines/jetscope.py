"""JetScope baseline (Figs. 10-11 comparator).

JetScope treats "a whole job as the basic unit for scheduling and failure
recovery" (Section I-B): the entire DAG is gang-scheduled at once on
pre-launched executors, so no job starts until the cluster can hold all of
its tasks — the source of the resource fragmentation and executor idling
that Fig. 3 quantifies and Fig. 10's fluctuating executor counts show.
Shuffle is in-memory (JetScope is an interactive engine), and failure
recovery restarts the whole job.
"""

from __future__ import annotations

from ..core.partition import WholeJobPartitioner
from ..core.policies import (
    ExecutionPolicy,
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
)
from ..core.shuffle import ShuffleScheme


def jetscope_policy(**overrides: object) -> ExecutionPolicy:
    """Build the JetScope baseline policy."""
    policy = ExecutionPolicy(
        name="jetscope",
        partitioner=WholeJobPartitioner(),
        submission=SubmissionOrder.CONSERVATIVE,
        shuffle=ShuffleScheme.DIRECT,
        launch=LaunchModel.PRELAUNCHED,
        recovery=FailureRecovery.JOB_RESTART,
        pipelined_execution=True,
        gang=True,
    )
    for key, value in overrides.items():
        if not hasattr(policy, key):
            raise AttributeError(f"ExecutionPolicy has no field {key!r}")
        setattr(policy, key, value)
    return policy
