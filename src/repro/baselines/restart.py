"""Job-restart recovery baseline (Figs. 14-15 comparator).

Identical to Swift in every respect except failure handling: any failure
restarts the whole job ("the most straightforward way to handle failures is
to re-run the whole job", Section IV).
"""

from __future__ import annotations

from ..core.policies import ExecutionPolicy, FailureRecovery, swift_policy


def restart_policy(**overrides: object) -> ExecutionPolicy:
    """Swift's configuration with whole-job-restart failure recovery."""
    policy = swift_policy(name="swift_restart", recovery=FailureRecovery.JOB_RESTART)
    for key, value in overrides.items():
        if not hasattr(policy, key):
            raise AttributeError(f"ExecutionPolicy has no field {key!r}")
        setattr(policy, key, value)
    return policy
