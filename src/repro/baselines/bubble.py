"""Bubble Execution baseline (Figs. 10-11 comparator).

Bubble Execution "partitions a job DAG according to the shuffle data size"
into memory-bounded bubbles, gang-schedules each bubble, and materialises
inter-bubble data to disk.  Section V-D attributes Swift's edge over it to:
(1) partitioning by data size causes long waits — executors are assigned
when the bubble is submitted and idle until inputs are ready (we model this
with EAGER submission), and (2) disk-based shuffle between bubbles versus
Swift's in-memory Cache Workers (DISK on cross-unit edges here).
"""

from __future__ import annotations

from ..core.partition import BubblePartitioner
from ..core.policies import (
    ExecutionPolicy,
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
)
from ..core.shuffle import ShuffleScheme


def bubble_policy(
    memory_budget_bytes: float = 64 * 1024 ** 3, **overrides: object
) -> ExecutionPolicy:
    """Build the Bubble Execution baseline policy."""
    policy = ExecutionPolicy(
        name="bubble",
        partitioner=BubblePartitioner(memory_budget_bytes=memory_budget_bytes),
        submission=SubmissionOrder.EAGER,
        shuffle=ShuffleScheme.DIRECT,
        cross_unit_shuffle=ShuffleScheme.DISK,
        launch=LaunchModel.PRELAUNCHED,
        recovery=FailureRecovery.FINE_GRAINED,
        pipelined_execution=True,
        gang=True,
    )
    for key, value in overrides.items():
        if not hasattr(policy, key):
            raise AttributeError(f"ExecutionPolicy has no field {key!r}")
        setattr(policy, key, value)
    return policy
