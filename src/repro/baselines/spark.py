"""Spark baseline (the Fig. 9 / Table I comparator).

Section V-C attributes Spark's gap to two mechanisms, both modelled here:

1. per-job executor launching — "launching all the critical tasks takes
   over 71s" for Q9 (package download + JVM start), i.e. the COLDSTART
   launch model; and
2. disk-based shuffle — "saving and loading shuffle data to/from disks in
   Spark take 137.8s and 133.9s" for Q9, i.e. the DISK shuffle scheme on
   every edge.

Spark schedules stage-at-a-time (each stage is its own unit, submitted when
its shuffle dependencies complete) and runs tasks in waves as slots free up
rather than gang-scheduling, hence ``gang=False``.  Stage boundaries mean
no cross-stage pipelining.
"""

from __future__ import annotations

from ..core.partition import StagePartitioner
from ..core.policies import (
    ExecutionPolicy,
    FailureRecovery,
    LaunchModel,
    SubmissionOrder,
)
from ..core.shuffle import ShuffleScheme


def spark_policy(**overrides: object) -> ExecutionPolicy:
    """Build the Spark baseline policy."""
    policy = ExecutionPolicy(
        name="spark",
        partitioner=StagePartitioner(),
        submission=SubmissionOrder.CONSERVATIVE,
        shuffle=ShuffleScheme.DISK,
        launch=LaunchModel.COLDSTART,
        recovery=FailureRecovery.FINE_GRAINED,
        pipelined_execution=False,
        gang=False,
    )
    for key, value in overrides.items():
        if not hasattr(policy, key):
            raise AttributeError(f"ExecutionPolicy has no field {key!r}")
        setattr(policy, key, value)
    return policy
