"""Baseline system models: Spark, JetScope, Bubble Execution, job restart.

Every baseline is an :class:`~repro.core.policies.ExecutionPolicy` over the
same simulator, so comparisons against Swift isolate exactly the design
choices the paper attributes the differences to.
"""

from .bubble import bubble_policy
from .jetscope import jetscope_policy
from .restart import restart_policy
from .spark import spark_policy

__all__ = ["bubble_policy", "jetscope_policy", "restart_policy", "spark_policy"]
