"""Calibration constants for the cluster simulator.

Every physical quantity used by the discrete-event substrate lives here so
that experiments can be re-calibrated in one place.  The defaults are chosen
to match the hardware described in Section V-A of the paper (100-node and
2,000-node clusters, 10 GbE NICs, SATA spindles) and the execution-log
observations of Section V-E (TCP connection setup of hundreds of milliseconds
under congestion, retransmission rates of up to 3% for Direct Shuffle).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping


GiB = 1024 ** 3
MiB = 1024 ** 2
KiB = 1024


@dataclass
class NetworkConfig:
    """Parameters of the network transfer and TCP connection model."""

    #: Usable per-NIC bandwidth in bytes/second (10 GbE with protocol overhead).
    nic_bandwidth: float = 1.1e9
    #: Baseline latency to establish one TCP connection on an idle network.
    conn_setup_base: float = 0.0008
    #: Connection-setup latency under heavy congestion ("hundreds of
    #: milliseconds in a congested network", Section V-E).
    conn_setup_congested: float = 0.35
    #: Number of concurrent connections at which setup latency reaches the
    #: midpoint between base and congested values.  This and
    #: ``retx_saturation`` are calibrated for a cluster of
    #: ``reference_machines`` machines; the network model scales them
    #: linearly with cluster size, since incast congestion is a per-NIC,
    #: not a global, phenomenon.
    conn_congestion_midpoint: float = 150_000.0
    #: Cluster size the congestion thresholds are calibrated at.
    reference_machines: int = 100
    #: How many connection handshakes a single task can run in parallel.
    conn_parallelism: int = 24
    #: Connection count at which the retransmission rate saturates at
    #: ``retx_cap``.  The rate grows quadratically up to that point —
    #: incast collapse is superlinear in connection count — so Direct
    #: Shuffle at ~160k connections hits the cap (~3%, Section V-E) while
    #: cache-mediated schemes at a few thousand connections stay below
    #: 0.02%, matching the paper's measurements.
    retx_saturation: float = 160_000.0
    #: Upper bound on the modelled retransmission rate.
    retx_cap: float = 0.03
    #: Effective-throughput penalty per unit of retransmission rate: goodput
    #: is scaled by ``1 / (1 + penalty * retx_rate)``.  TCP collapses far
    #: more than proportionally under incast, hence a large multiplier (a 3%
    #: retransmission rate roughly triples transfer times).
    retx_throughput_penalty: float = 65.0
    #: One-way propagation latency between two machines.
    rtt: float = 0.0002
    #: Serialization factor of Remote Shuffle's per-Cache-Worker pulls: a
    #: reader issues its Y fragment requests mostly sequentially, and each
    #: pull queues behind the other readers at the serving Cache Worker.
    remote_pull_serialization: float = 2.0
    #: Effective bandwidth of a Cache-Worker memory copy (bytes/second).
    #: This is an end-to-end IPC path — serialize, cross a process
    #: boundary, deserialize — not a raw memcpy, hence well below DRAM
    #: bandwidth.  It prices the "additional memory copies" that make
    #: Local/Remote Shuffle lose to Direct on small shuffles (Fig. 12).
    memory_bandwidth: float = 1.5e9

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.nic_bandwidth <= 0:
            raise ValueError("nic_bandwidth must be positive")
        if self.conn_setup_base < 0 or self.conn_setup_congested < self.conn_setup_base:
            raise ValueError("connection setup latencies must satisfy 0 <= base <= congested")
        if not 0 <= self.retx_cap <= 1:
            raise ValueError("retx_cap must be a rate in [0, 1]")
        if self.conn_parallelism < 1:
            raise ValueError("conn_parallelism must be >= 1")


@dataclass
class DiskConfig:
    """Parameters of the spinning-disk model used for disk shuffle and spill."""

    #: Effective sequential throughput of one spindle in bytes/second.
    sequential_bandwidth: float = 120e6
    #: Number of spindles per machine (the 100-node cluster has 12).
    disks_per_machine: int = 12
    #: Fixed per-file overhead (open/seek/close) in seconds.  Disk shuffle
    #: materialises one partition file per (map task, reduce partition) pair,
    #: so this term dominates for wide shuffles.
    per_file_overhead: float = 0.0025
    #: Penalty factor for small random reads relative to sequential access.
    random_penalty: float = 1.8

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.sequential_bandwidth <= 0:
            raise ValueError("sequential_bandwidth must be positive")
        if self.disks_per_machine < 1:
            raise ValueError("disks_per_machine must be >= 1")


@dataclass
class CacheWorkerConfig:
    """Parameters of the per-machine Cache Worker (Section III-B)."""

    #: Bytes of RAM each Cache Worker may use for shuffle data.
    memory_capacity: int = 48 * GiB
    #: Chunk size used when the LRU policy swaps data to disk.  Large chunks
    #: keep the spill sequential ("this can be done in large data chunk").
    spill_chunk_bytes: int = 64 * MiB
    #: Latency of the Cache-Worker coordination round that collects a
    #: partition and notifies the reader tasks (Local Shuffle's push path).
    notify_latency: float = 0.15

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")
        if self.spill_chunk_bytes <= 0:
            raise ValueError("spill_chunk_bytes must be positive")


@dataclass
class ShuffleConfig:
    """Adaptive shuffle selection thresholds and v2 resilience knobs.

    The shuffle *size* is the number of edges between all source-stage tasks
    and sink-stage tasks, i.e. M x N.  The production thresholds reported in
    the paper are 10,000 and 90,000 (Section III-B).  The v2 fields follow
    the FuxiShuffle direction: mid-job mode switching from observed memory
    and connection pressure, Cache Worker replication so a single worker
    loss fails over instead of re-running producers, and push-based merging
    of small-partition storms.
    """

    direct_threshold: int = 10_000
    local_threshold: int = 90_000
    #: Copies of every cache-mediated shuffle entry (1 = v1 behaviour: a
    #: single Cache Worker loss forces producer re-runs; 2 = one surviving
    #: replica per entry serves failover reads).
    replication_factor: int = 2
    #: Allow the per-edge mode controller to re-resolve schemes for
    #: not-yet-started stages from observed pressure.  Scheme choice only
    #: affects timing, never results (differentially tested).
    mode_switching: bool = True
    #: Cache Worker memory utilization above which the controller demotes
    #: borderline cache-mediated edges to Direct Shuffle.
    pressure_demote_utilization: float = 0.85
    #: Connection-setup latency (seconds) above which the controller
    #: promotes borderline Direct edges to a cache-mediated scheme.
    setup_promote_latency: float = 0.05
    #: How far past a threshold (as a fraction of it) an edge still counts
    #: as "borderline" for a pressure-driven switch.
    switch_margin: float = 0.5
    #: Minimum number of tiny cross-unit in-edges before push-based
    #: partition merging collapses them into one merged transfer.
    merge_min_edges: int = 4
    #: An in-edge is "tiny" (merge-eligible) when its total bytes are at
    #: or below this bound.
    merge_max_bytes: float = 8 * MiB

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if not 0 < self.direct_threshold < self.local_threshold:
            raise ValueError("thresholds must satisfy 0 < direct < local")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if not 0 < self.pressure_demote_utilization <= 1:
            raise ValueError("pressure_demote_utilization must be in (0, 1]")
        if self.setup_promote_latency <= 0:
            raise ValueError("setup_promote_latency must be positive")
        if self.switch_margin < 0:
            raise ValueError("switch_margin must be non-negative")
        if self.merge_min_edges < 2:
            raise ValueError("merge_min_edges must be >= 2")
        if self.merge_max_bytes <= 0:
            raise ValueError("merge_max_bytes must be positive")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of every knob (round-trips via
        :meth:`from_dict`); how deployments pin non-default thresholds."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShuffleConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown shuffle config field(s): {unknown}")
        out = cls(**dict(payload))
        out.validate()
        return out


@dataclass
class AdminConfig:
    """Parameters of the Swift Admin controller model."""

    #: Serialized controller work to process one scheduling event (plan
    #: generation + dispatch bookkeeping).  This term bounds scalability.
    event_processing_time: float = 12e-6
    #: One-way latency from Admin to an Executor for plan dispatch.
    dispatch_latency: float = 0.002
    #: Latency for an Executor to self-report a state change (Section IV-A).
    self_report_latency: float = 0.05
    #: Heartbeat interval by cluster scale: (max machines, interval seconds).
    #: "5s, 10s, 15s for small, medium, large cluster respectively".
    heartbeat_intervals: tuple[tuple[int, float], ...] = (
        (500, 5.0),
        (5_000, 10.0),
        (1 << 62, 15.0),
    )
    #: Number of failed tasks within ``unhealthy_window`` seconds that marks
    #: a machine read-only.
    unhealthy_task_failures: int = 8
    unhealthy_window: float = 30.0

    def heartbeat_interval(self, n_machines: int) -> float:
        """Return the heartbeat interval for a cluster of ``n_machines``."""
        for limit, interval in self.heartbeat_intervals:
            if n_machines <= limit:
                return interval
        return self.heartbeat_intervals[-1][1]

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.event_processing_time < 0:
            raise ValueError("event_processing_time must be non-negative")
        if not self.heartbeat_intervals:
            raise ValueError("heartbeat_intervals must not be empty")


@dataclass
class RetryConfig:
    """Budgeted task re-runs with exponential backoff.

    Failure recovery re-runs a failed task at most ``max_task_retries``
    times; the next failure of the same task escalates to a job failure
    with an explicit reason instead of retrying forever.  Each re-run
    waits ``backoff_base * backoff_factor**(attempt-1)`` seconds (capped
    at ``backoff_cap``) plus a deterministic jitter drawn from the
    simulation RNG, so hot recovery loops spread out reproducibly.
    """

    #: Attempts beyond the first run before the job is failed.
    max_task_retries: int = 4
    #: Backoff before the first re-run, seconds.
    backoff_base: float = 0.2
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff wait, seconds.
    backoff_cap: float = 20.0
    #: Jitter as a fraction of the backoff (uniform in [0, frac * wait]).
    jitter_frac: float = 0.25

    def backoff(self, attempt: int) -> float:
        """Deterministic (pre-jitter) backoff before re-run ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1))

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.max_task_retries < 1:
            raise ValueError("max_task_retries must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("backoff must satisfy 0 <= base <= cap")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not 0 <= self.jitter_frac <= 1:
            raise ValueError("jitter_frac must be in [0, 1]")


@dataclass
class ExecutorConfig:
    """Executor launch model.

    Swift pre-launches long-running executors, so launch overhead is near
    zero.  Spark-style baselines pay package download + JVM start per job
    (Fig. 9(b): launching the critical tasks of Q9 takes over 71s).
    """

    #: Plan-arrival-to-run latency for a pre-launched executor.
    prelaunched_overhead: float = 0.05
    #: Mean cold-start overhead (package download + process launch).
    coldstart_mean: float = 3.5
    #: Half-width of the uniform jitter applied to cold starts.
    coldstart_jitter: float = 1.2

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range values."""
        if self.prelaunched_overhead < 0 or self.coldstart_mean < 0:
            raise ValueError("launch overheads must be non-negative")
        if self.coldstart_jitter < 0 or self.coldstart_jitter > self.coldstart_mean:
            raise ValueError("coldstart_jitter must be in [0, coldstart_mean]")


@dataclass
class SimConfig:
    """Top-level simulator configuration."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cache_worker: CacheWorkerConfig = field(default_factory=CacheWorkerConfig)
    shuffle: ShuffleConfig = field(default_factory=ShuffleConfig)
    admin: AdminConfig = field(default_factory=AdminConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    retry: RetryConfig = field(default_factory=RetryConfig)
    #: Default executors per machine ("dozens or hundreds ... on each machine").
    executors_per_machine: int = 32
    #: Processing throughput of one task in bytes/second of input consumed.
    task_processing_rate: float = 55e6
    #: Extra latency a pipeline edge adds to the consumer's completion (the
    #: final flush of streamed rows).
    pipeline_flush_latency: float = 0.08
    #: Random seed for all stochastic components.
    seed: int = 2021

    def validate(self) -> None:
        """Validate every nested section; raise ``ValueError`` on bad values."""
        self.network.validate()
        self.disk.validate()
        self.cache_worker.validate()
        self.shuffle.validate()
        self.admin.validate()
        self.executor.validate()
        self.retry.validate()
        if self.executors_per_machine < 1:
            raise ValueError("executors_per_machine must be >= 1")
        if self.task_processing_rate <= 0:
            raise ValueError("task_processing_rate must be positive")

    def copy(self, **overrides: object) -> "SimConfig":
        """Return a deep copy, optionally replacing top-level fields."""
        clone = dataclasses.replace(
            self,
            network=dataclasses.replace(self.network),
            disk=dataclasses.replace(self.disk),
            cache_worker=dataclasses.replace(self.cache_worker),
            shuffle=dataclasses.replace(self.shuffle),
            admin=dataclasses.replace(self.admin),
            executor=dataclasses.replace(self.executor),
            retry=dataclasses.replace(self.retry),
        )
        for key, value in overrides.items():
            if not hasattr(clone, key):
                raise AttributeError(f"SimConfig has no field {key!r}")
            setattr(clone, key, value)
        return clone


DEFAULT_CONFIG = SimConfig()
