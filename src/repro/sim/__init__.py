"""Cluster simulation substrate: event engine, machines, network, disk, faults."""

from .cluster import Cluster, Executor, ExecutorState, Machine, MachineState
from .config import (
    DEFAULT_CONFIG,
    AdminConfig,
    CacheWorkerConfig,
    DiskConfig,
    ExecutorConfig,
    NetworkConfig,
    ShuffleConfig,
    SimConfig,
    GiB,
    KiB,
    MiB,
)
from .disk import DiskModel
from .engine import (
    Event,
    LegacyEvent,
    LegacySimulator,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
)
from .failures import (
    FailureKind,
    FailurePlan,
    FailureSpec,
    sample_failure_time,
    sample_trace_failures,
)
from .network import NetworkModel, TransferEstimate

__all__ = [
    "AdminConfig",
    "CacheWorkerConfig",
    "Cluster",
    "DEFAULT_CONFIG",
    "DiskConfig",
    "DiskModel",
    "Event",
    "Executor",
    "ExecutorConfig",
    "ExecutorState",
    "FailureKind",
    "FailurePlan",
    "FailureSpec",
    "GiB",
    "KiB",
    "LegacyEvent",
    "LegacySimulator",
    "Machine",
    "MachineState",
    "MiB",
    "NetworkConfig",
    "NetworkModel",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ShuffleConfig",
    "SimConfig",
    "SimulationError",
    "Simulator",
    "TransferEstimate",
    "sample_failure_time",
    "sample_trace_failures",
]
