"""Analytic network model: TCP connection setup, incast, and transfers.

The model is *fluid-analytic*: rather than simulating packets, it computes
transfer durations from bandwidth sharing and adds TCP costs that grow with
the number of concurrent connections.  This reproduces the two effects that
Section V-E attributes the shuffle-scheme crossovers to:

* connection-establishment latency of "hundreds of milliseconds in a
  congested network", so a task with hundreds of peers spends "dozens of
  seconds" building connections, and
* a retransmission rate that climbs with connection count (up to ~3% for
  Direct Shuffle on large jobs vs below 0.02% for cache-mediated schemes),
  which collapses effective throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .config import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a cycle
    from ..audit.ledger import ResourceLedger


@dataclass(frozen=True)
class TransferEstimate:
    """Breakdown of one modelled transfer (all values in seconds/rates)."""

    setup_time: float
    transfer_time: float
    retx_rate: float

    @property
    def total(self) -> float:
        """Setup plus transfer time."""
        return self.setup_time + self.transfer_time


class NetworkModel:
    """Shared network state plus cost estimators.

    The model tracks the number of connections currently open across the
    cluster (``open_connections``); shuffles register their connection count
    for the duration of the transfer so concurrent shuffles see each other's
    congestion.
    """

    def __init__(self, config: NetworkConfig, n_machines: int = 100) -> None:
        config.validate()
        self.config = config
        self.open_connections = 0
        #: Optional resource-accounting ledger (:mod:`repro.audit`); when
        #: set, every register/release is shadowed and unbalanced releases
        #: are flagged instead of silently clamped away.
        self.ledger: Optional["ResourceLedger"] = None
        scale = max(1, n_machines) / max(1, config.reference_machines)
        #: Congestion thresholds scaled to this cluster's size.
        self.congestion_midpoint = config.conn_congestion_midpoint * scale
        self.retx_saturation = config.retx_saturation * scale

    # ------------------------------------------------------------------
    # Connection bookkeeping
    # ------------------------------------------------------------------
    def register_connections(self, count: int) -> None:
        """Record ``count`` connections as open (call on shuffle start)."""
        if count < 0:
            raise ValueError("connection count must be non-negative")
        self.open_connections += count
        if self.ledger is not None:
            self.ledger.conn_registered(count)

    def release_connections(self, count: int) -> None:
        """Release ``count`` connections (call on shuffle completion).

        Production keeps the non-negative clamp (a congestion counter gone
        negative would corrupt every later cost estimate), but the clamp
        must not *hide* unbalanced register/release pairs: the audit ledger,
        when wired, flags any release exceeding outstanding registrations.
        """
        if count < 0:
            raise ValueError("connection count must be non-negative")
        if self.ledger is not None:
            self.ledger.conn_released(count, self.open_connections)
        self.open_connections = max(0, self.open_connections - count)

    # ------------------------------------------------------------------
    # Cost estimators
    # ------------------------------------------------------------------
    def connection_setup_time(self, concurrent_connections: int | None = None) -> float:
        """Latency to establish a single TCP connection.

        Uses a saturating (Michaelis-Menten) curve between the idle and
        congested latencies: latency grows with the number of concurrent
        connections in flight across the cluster.
        """
        cfg = self.config
        n = self.open_connections if concurrent_connections is None else concurrent_connections
        if n < 0:
            raise ValueError("concurrent_connections must be non-negative")
        span = cfg.conn_setup_congested - cfg.conn_setup_base
        return cfg.conn_setup_base + span * (n / (n + self.congestion_midpoint))

    def setup_time_for(self, connections_per_task: int, concurrent_connections: int | None = None) -> float:
        """Time for one task to establish ``connections_per_task`` connections.

        Handshakes proceed with bounded parallelism (``conn_parallelism``),
        so the cost is roughly ``ceil(k / parallelism)`` serial rounds.
        """
        if connections_per_task < 0:
            raise ValueError("connections_per_task must be non-negative")
        if connections_per_task == 0:
            return 0.0
        per_conn = self.connection_setup_time(concurrent_connections)
        rounds = -(-connections_per_task // self.config.conn_parallelism)
        return rounds * per_conn

    def retransmission_rate(self, concurrent_connections: int | None = None) -> float:
        """Modelled TCP retransmission rate given cluster-wide congestion.

        Quadratic in connection count up to ``retx_saturation`` (incast
        collapse is superlinear), capped at ``retx_cap``.
        """
        n = self.open_connections if concurrent_connections is None else concurrent_connections
        fraction = min(1.0, n / self.retx_saturation)
        return self.config.retx_cap * fraction * fraction

    def effective_bandwidth(
        self,
        flows_sharing_nic: int,
        concurrent_connections: int | None = None,
    ) -> float:
        """Per-flow throughput on a NIC shared by ``flows_sharing_nic`` flows.

        Retransmissions reduce goodput super-linearly (incast collapse), so
        the NIC bandwidth is additionally scaled by
        ``1 / (1 + penalty * retx_rate)``.
        """
        if flows_sharing_nic < 1:
            raise ValueError("flows_sharing_nic must be >= 1")
        retx = self.retransmission_rate(concurrent_connections)
        degraded = self.config.nic_bandwidth / (1.0 + self.config.retx_throughput_penalty * retx)
        return degraded / flows_sharing_nic

    def transfer_estimate(
        self,
        bytes_to_move: float,
        flows_sharing_nic: int,
        connections_per_task: int,
        concurrent_connections: int | None = None,
    ) -> TransferEstimate:
        """Full estimate for one task's network read: setup + transfer."""
        if bytes_to_move < 0:
            raise ValueError("bytes_to_move must be non-negative")
        setup = self.setup_time_for(connections_per_task, concurrent_connections)
        bandwidth = self.effective_bandwidth(flows_sharing_nic, concurrent_connections)
        transfer = bytes_to_move / bandwidth + self.config.rtt
        return TransferEstimate(
            setup_time=setup,
            transfer_time=transfer,
            retx_rate=self.retransmission_rate(concurrent_connections),
        )

    def memory_copy_time(self, bytes_to_copy: float, copies: int = 1) -> float:
        """Time for ``copies`` sequential memory copies of a buffer."""
        if bytes_to_copy < 0 or copies < 0:
            raise ValueError("bytes and copies must be non-negative")
        return copies * bytes_to_copy / self.config.memory_bandwidth
