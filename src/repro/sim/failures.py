"""Fault injection: deterministic schedules and trace-calibrated sampling.

Two usage modes match the paper's two fault-tolerance experiments:

* Fig. 14 injects one failure per run into a named stage at a fixed point of
  normalized job progress — :class:`FailureSpec` with ``stage`` and
  ``at_fraction``.
* Fig. 15 replays traces with failures "regenerated according to the
  production traces": about 50% of failures occur within 30s and 90% within
  200s of job start.  :func:`sample_trace_failures` draws failure times from
  a distribution fitted to those two quantiles.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Optional


class FailureKind(enum.Enum):
    """The failure classes of Section IV (plus chaos-only hostile events)."""
    #: A task process crashes; recoverable by re-running the task.
    TASK_CRASH = "task_crash"
    #: An executor process dies and is re-launched; detected by self-report.
    PROCESS_RESTART = "process_restart"
    #: A whole machine dies; detected by missed heartbeats.
    MACHINE_CRASH = "machine_crash"
    #: Application-logic failure (memory access violation, missing table);
    #: re-running does not help (Section IV-C).
    APPLICATION_ERROR = "application_error"
    #: The Admin marks a machine read-only (Section IV-A): running tasks
    #: drain, no new tasks land there.  ``duration`` schedules recovery.
    MACHINE_QUARANTINE = "machine_quarantine"
    #: A Cache Worker process dies, losing all shuffle data it held; the
    #: producers of in-flight edges must re-generate and re-write it.
    CACHE_WORKER_LOSS = "cache_worker_loss"


@dataclass
class FailureSpec:
    """One planned failure.

    ``at_time`` is absolute simulated seconds; alternatively ``at_fraction``
    positions the failure at a fraction of a reference job duration (the
    normalization used by Fig. 14, where the non-failure execution time is
    100).  Exactly one of the two must be set.
    """

    kind: FailureKind = FailureKind.TASK_CRASH
    #: Stage name for task-level failures (e.g. "J3" of TPC-H Q13).
    stage: Optional[str] = None
    #: Task index within the stage; ``None`` picks the first running task.
    task_index: Optional[int] = None
    #: Machine id for MACHINE_CRASH / PROCESS_RESTART failures.
    machine_id: Optional[int] = None
    at_time: Optional[float] = None
    at_fraction: Optional[float] = None
    #: Job id for multi-job replays; ``None`` targets the only job.
    job_id: Optional[str] = None
    #: For MACHINE_QUARANTINE: seconds until the machine recovers (``None``
    #: keeps it quarantined for the rest of the run).
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FailureSpec":
        """Raise a loud ``ValueError`` for a mis-specified failure.

        Exactly one of ``at_time`` / ``at_fraction`` must be set.  This is
        checked at construction, but specs are mutable — re-validate after
        editing fields in place (``FailurePlan.add`` does so for you).
        """
        if self.at_time is None and self.at_fraction is None:
            raise ValueError(
                f"FailureSpec({self.kind.value}): neither at_time nor "
                "at_fraction is set; exactly one is required"
            )
        if self.at_time is not None and self.at_fraction is not None:
            raise ValueError(
                f"FailureSpec({self.kind.value}): both at_time={self.at_time} "
                f"and at_fraction={self.at_fraction} are set; exactly one is "
                "allowed"
            )
        if self.at_fraction is not None and self.at_fraction < 0:
            raise ValueError("at_fraction must be non-negative")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive when set")
        return self

    def resolve_time(self, reference_duration: float) -> float:
        """Return the absolute injection time given a reference duration."""
        self.validate()
        if self.at_time is not None:
            return self.at_time
        assert self.at_fraction is not None
        if reference_duration <= 0:
            raise ValueError("reference_duration must be positive")
        return self.at_fraction * reference_duration


@dataclass
class FailurePlan:
    """A set of failures to inject during one simulation run."""

    specs: list[FailureSpec] = field(default_factory=list)

    def add(self, spec: FailureSpec) -> "FailurePlan":
        """Append one failure (re-validated); returns self for chaining."""
        self.specs.append(spec.validate())
        return self

    def for_job(self, job_id: str) -> list[FailureSpec]:
        """Failures targeting ``job_id`` (or any job)."""
        return [s for s in self.specs if s.job_id is None or s.job_id == job_id]

    def __len__(self) -> int:
        return len(self.specs)


def _weibull_from_quantiles(q1: float, t1: float, q2: float, t2: float) -> tuple[float, float]:
    """Fit a Weibull(shape k, scale lam) to two quantiles.

    Solves ``1 - exp(-(t/lam)^k) = q`` for both (t1, q1) and (t2, q2).
    """
    if not (0 < q1 < q2 < 1 and 0 < t1 < t2):
        raise ValueError("quantiles must be ordered and in (0, 1)")
    a1 = -math.log(1 - q1)
    a2 = -math.log(1 - q2)
    k = math.log(a2 / a1) / math.log(t2 / t1)
    lam = t1 / a1 ** (1 / k)
    return k, lam


#: Weibull parameters fitted so that P(t < 30s) = 0.5 and P(t < 200s) = 0.9
#: (Section V-F: "about 50% failures occur within 30s and 90% within 200s").
TRACE_FAILURE_SHAPE, TRACE_FAILURE_SCALE = _weibull_from_quantiles(0.5, 30.0, 0.9, 200.0)


def sample_failure_time(rng: random.Random) -> float:
    """Sample one failure time (seconds since job start) from the trace fit."""
    u = rng.random()
    return TRACE_FAILURE_SCALE * (-math.log(1 - u)) ** (1 / TRACE_FAILURE_SHAPE)


def sample_trace_failures(
    job_ids: list[str],
    failure_rate: float,
    rng: random.Random,
    kinds: tuple[FailureKind, ...] = (FailureKind.TASK_CRASH,),
) -> FailurePlan:
    """Build a failure plan for a trace replay.

    Each job independently suffers a failure with probability
    ``failure_rate``; failed jobs get one failure at a Weibull-sampled
    fraction-of-runtime offset (expressed via ``at_fraction`` relative to a
    nominal 100-unit duration so the runtime can rescale it).
    """
    if not 0 <= failure_rate <= 1:
        raise ValueError("failure_rate must be in [0, 1]")
    plan = FailurePlan()
    for job_id in job_ids:
        if rng.random() >= failure_rate:
            continue
        kind = kinds[rng.randrange(len(kinds))]
        offset = sample_failure_time(rng)
        # The Weibull fit is expressed in seconds of a nominal 100s job;
        # ``at_fraction`` makes it a fraction of each job's own runtime
        # (the runtime resolves it against a per-job reference), so short
        # trace jobs see proportionally early failures.
        plan.add(
            FailureSpec(
                kind=kind,
                at_fraction=min(offset / 100.0, 0.95),
                job_id=job_id,
            )
        )
    return plan
