"""Discrete-event simulation kernel.

A minimal, deterministic event engine: events are ``(time, priority, seq)``
ordered, callbacks run in that order, and a shared :class:`random.Random`
instance seeded from the configuration makes every run reproducible.  The
engine is intentionally independent of the cluster model so that it can be
unit-tested and reused (the fault injector and the trace replayer both drive
it directly).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.  Cancellable; compares by (time, priority, seq)."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} p={self.priority} {name}{state}>"


#: Priority used for resource-assignment events.  The Event Processor handles
#: them "in high priority" (Section II-C), i.e. before same-time events.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_LOW = 20


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        #: Count of events executed; used by scalability experiments to model
        #: controller load.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event loops in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
            if until is not None and self._now < until and not self._queue:
                self._now = until
            return self._now
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)
