"""Discrete-event simulation kernel.

A minimal, deterministic event engine: events are ``(time, priority, seq)``
ordered, callbacks run in that order, and a shared :class:`random.Random`
instance seeded from the configuration makes every run reproducible.  The
engine is intentionally independent of the cluster model so that it can be
unit-tested and reused (the fault injector and the trace replayer both drive
it directly).

Cancelled events use lazy deletion: :meth:`Event.cancel` only marks the
entry, and the engine drops it when it reaches the top of the heap.  A live
counter keeps :meth:`Simulator.pending_events` O(1), and when more than half
of a large heap is dead the queue is compacted in one pass so replays that
cancel many recovery events cannot bloat the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

import random

from ..obs.tracer import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.  Cancellable; compares by (time, priority, seq)."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator; set by ``schedule_at`` so cancellation can keep
        #: the live-event counter exact.  ``None`` for free-standing events.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} p={self.priority} {name}{state}>"


#: Priority used for resource-assignment events.  The Event Processor handles
#: them "in high priority" (Section II-C), i.e. before same-time events.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_LOW = 20

#: Below this queue size compaction is never worth the rebuild.
_COMPACT_MIN_QUEUE = 64


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Not-yet-cancelled events currently in the queue.
        self._live = 0
        self.rng = random.Random(seed)
        #: Count of events executed; used by scalability experiments to model
        #: controller load.
        self.events_processed = 0
        #: Observability hook.  The null tracer keeps the run loop on a
        #: pre-hoisted no-hook branch, so a disabled tracer costs nothing
        #: per event.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args)
        event._sim = self
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        """Account for one cancellation; compact the heap when mostly dead."""
        self._live -= 1
        queue = self._queue
        if len(queue) > _COMPACT_MIN_QUEUE and len(queue) - self._live > self._live:
            self._queue = [event for event in queue if not event.cancelled]
            heapq.heapify(self._queue)

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        tracer = self.tracer
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            self._now = event.time
            self.events_processed += 1
            if tracer.enabled and tracer.engine_events:
                tracer.on_engine_event(event.time, event.callback, event.priority)
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event loops in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        tracer = self.tracer
        # Hoisted once per run: with tracing disabled the loop takes the
        # no-hook branch with zero per-event work.
        on_event = (
            tracer.on_engine_event
            if tracer.enabled and tracer.engine_events
            else None
        )
        try:
            executed = 0
            # self._queue is re-read every iteration: compaction (triggered
            # by Event.cancel inside a callback) rebinds it to a fresh list.
            while self._queue:
                # Single pop per iteration: the head is inspected in place
                # (skipping dead entries) instead of the old peek+step pair
                # that walked the heap top twice per event.
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._live -= 1
                self._now = event.time
                self.events_processed += 1
                if on_event is not None:
                    on_event(event.time, event.callback, event.priority)
                event.callback(*event.args)
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
            if until is not None and self._now < until and not self._queue:
                self._now = until
            return self._now
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    def clear_pending(self) -> int:
        """Cancel every queued event; returns how many were still live.

        Used by watchdogs (``repro.chaos``) that abandon a run after a
        deadline: the queue is emptied so the simulator can be inspected or
        discarded without draining stale callbacks.
        """
        abandoned = self._live
        self._queue.clear()
        self._live = 0
        return abandoned
