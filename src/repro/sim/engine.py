"""Discrete-event simulation kernel.

A minimal, deterministic event engine: events are ``(time, priority, seq)``
ordered, callbacks run in that order, and a shared :class:`random.Random`
instance seeded from the configuration makes every run reproducible.  The
engine is intentionally independent of the cluster model so that it can be
unit-tested and reused (the fault injector and the trace replayer both drive
it directly).

Two kernels share the same interface:

* :class:`Simulator` — the array-backed production kernel.  The heap is a
  flat array of ``(time, priority, seq, slot)`` rows, so heap sifting uses
  C-level tuple comparison instead of a Python ``__lt__``.  ``slot`` indexes
  struct-of-arrays storage (a seq validity array keyed into a callback+args
  table); cancellation is a bitmask over slots, and slots are recycled
  through a free stack.  ``schedule_batch`` amortises heap maintenance for
  bulk producers (trace replay, the runtime's finish ledger).
* :class:`LegacySimulator` — the original per-``Event``-object heap, kept as
  a differential oracle (``tests/test_determinism.py`` drives random
  interleavings through both and asserts identical behaviour) and as the
  baseline for ``repro bench --suite scale``.

Cancelled events use lazy deletion: :meth:`Event.cancel` only marks the
entry, and the engine drops it when it reaches the top of the heap.  A live
counter keeps :meth:`Simulator.pending_events` O(1), and when more than half
of a large heap is dead the queue is compacted in one pass so replays that
cancel many recovery events cannot bloat the heap.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from array import array
from math import inf
from typing import Any, Callable, Iterable, Optional, Tuple

import random

from ..obs.tracer import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


#: Priority used for resource-assignment events.  The Event Processor handles
#: them "in high priority" (Section II-C), i.e. before same-time events.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_LOW = 20

#: Below this queue size compaction is never worth the rebuild.
_COMPACT_MIN_QUEUE = 64

#: One batched schedule item: ``(delay, callback, args)``.
BatchItem = Tuple[float, Callable[..., Any], tuple]


class Event:
    """Handle for a scheduled callback in the array-backed kernel.

    The handle does not own the callback — it only remembers which slot/seq
    pair it named, so :meth:`cancel` after the event executed (or after
    ``clear_pending`` wiped the queue) is a safe no-op: the seq check fails
    and nothing is touched.
    """

    __slots__ = ("time", "priority", "seq", "cancelled", "_sim", "_slot")

    def __init__(
        self, sim: "Simulator", slot: int, time: float, priority: int, seq: int
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.cancelled = False
        self._sim = sim
        self._slot = slot

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        self._sim._cancel_slot(self._slot, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} p={self.priority} seq={self.seq}{state}>"


class Simulator:
    """Deterministic discrete-event simulator (array-backed kernel).

    State layout: ``_heap`` is a heap of ``(time, priority, seq, slot)``
    rows — the time/priority/seq columns live in the heap entries themselves,
    compared at C speed.  ``slot`` keys the parallel per-slot storage:
    ``_seqs`` (validity), ``_callbacks``/``_cbargs`` (the callback table),
    ``_dead`` (cancellation bitmask), and ``_free`` (recycled-slot stack).
    A slot is live while its heap entry exists; it is released when that
    entry is popped (executed or found dead) or filtered out by compaction.
    Seqs start at 1 and never repeat, so ``_seqs[slot] == handle.seq`` is
    the validity test for stale handles.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self._heap: list[tuple[float, int, int, int]] = []
        # Struct-of-arrays slot storage.
        self._seqs = array("q")
        self._callbacks: list[Optional[Callable[..., Any]]] = []
        self._cbargs: list[tuple] = []
        self._dead = bytearray()
        self._free: list[int] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Not-yet-cancelled events currently in the queue.
        self._live = 0
        #: High-water mark of the live queue; the scale bench reports it.
        self.peak_pending = 0
        self.rng = random.Random(seed)
        #: Count of events executed; used by scalability experiments to model
        #: controller load.
        self.events_processed = 0
        #: Observability hook.  The null tracer keeps the run loop on a
        #: pre-hoisted no-hook branch, so a disabled tracer costs nothing
        #: per event.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, priority, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(time, priority, callback, args)

    def _push(
        self, time: float, priority: int, callback: Callable[..., Any], args: tuple
    ) -> Event:
        """Allocate a slot, push a heap row, build the handle (hot path)."""
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._seqs[slot] = seq
            self._callbacks[slot] = callback
            self._cbargs[slot] = args
            self._dead[slot] = 0
        else:
            slot = len(self._seqs)
            self._seqs.append(seq)
            self._callbacks.append(callback)
            self._cbargs.append(args)
            self._dead.append(0)
        heappush(self._heap, (time, priority, seq, slot))
        self._live = live = self._live + 1
        if live > self.peak_pending:
            self.peak_pending = live
        # Event.__new__ + direct attribute stores: skips the __init__ frame,
        # which is measurable at millions of schedules per replay.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.cancelled = False
        event._sim = self
        event._slot = slot
        return event

    def schedule_batch(
        self,
        items: Iterable[BatchItem],
        *,
        priority: int = PRIORITY_NORMAL,
    ) -> int:
        """Bulk-schedule ``(delay, callback, args)`` triples; returns count.

        No handles are returned — batched events cannot be cancelled
        individually, which is exactly the contract bulk producers (trace
        arrivals, finish ledgers) want.  Heap maintenance is amortised: for
        large batches the entries are appended and the heap rebuilt once
        (O(n + k)) instead of k pushes (O(k log n)).
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        appended = 0
        entries: list[tuple[float, int, int, int]] = []
        for delay, callback, args in items:
            if delay < 0:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            seq += 1
            slot = self._alloc_slot(seq, callback, args)
            entries.append((now + delay, priority, seq, slot))
            appended += 1
        self._seq = seq
        if not appended:
            return 0
        if appended > max(len(heap) // 8, 8):
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        self._live += appended
        if self._live > self.peak_pending:
            self.peak_pending = self._live
        return appended

    def _alloc_slot(
        self, seq: int, callback: Callable[..., Any], args: tuple
    ) -> int:
        """Claim a slot (recycled or fresh) and fill its parallel arrays."""
        free = self._free
        if free:
            slot = free.pop()
            self._seqs[slot] = seq
            self._callbacks[slot] = callback
            self._cbargs[slot] = args
            self._dead[slot] = 0
        else:
            slot = len(self._seqs)
            self._seqs.append(seq)
            self._callbacks.append(callback)
            self._cbargs.append(args)
            self._dead.append(0)
        return slot

    def _release_slot(self, slot: int) -> None:
        """Return a slot to the free stack and drop its object references."""
        self._seqs[slot] = 0
        self._callbacks[slot] = None
        self._cbargs[slot] = ()
        self._dead[slot] = 0
        self._free.append(slot)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def _cancel_slot(self, slot: int, seq: int) -> None:
        """Cancel the event in ``slot`` iff the handle's seq still owns it.

        Stale handles (event executed, queue cleared, slot recycled) fail
        the bounds or seq check and are ignored, which keeps ``_live``
        exact — the accounting bug behind the old ``clear_pending`` leak.
        """
        seqs = self._seqs
        if slot >= len(seqs) or seqs[slot] != seq or self._dead[slot]:
            return
        self._dead[slot] = 1
        self._live -= 1
        heap = self._heap
        if len(heap) > _COMPACT_MIN_QUEUE and len(heap) - self._live > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop dead heap entries in one pass and recycle their slots.

        Rebuilds in place (slice assignment) so the run loop's local heap
        binding stays valid when a callback's cancel triggers compaction.
        """
        heap = self._heap
        dead = self._dead
        kept: list[tuple[float, int, int, int]] = []
        for entry in heap:
            if dead[entry[3]]:
                self._release_slot(entry[3])
            else:
                kept.append(entry)
        heap[:] = kept
        heapify(heap)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if idle."""
        heap = self._heap
        dead = self._dead
        while heap and dead[heap[0][3]]:
            self._release_slot(heappop(heap)[3])
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        tracer = self.tracer
        heap = self._heap
        dead = self._dead
        while heap:
            time, priority, seq, slot = heappop(heap)
            if dead[slot]:
                self._release_slot(slot)
                continue
            callback = self._callbacks[slot]
            args = self._cbargs[slot]
            self._release_slot(slot)
            self._live -= 1
            self._now = time
            self.events_processed += 1
            if tracer.enabled and tracer.engine_events:
                tracer.on_engine_event(time, callback, priority)
            callback(*args)  # type: ignore[misc]
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event loops in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        tracer = self.tracer
        # Hoisted once per run: with tracing disabled the loop takes the
        # no-hook branch with zero per-event work.
        on_event = (
            tracer.on_engine_event
            if tracer.enabled and tracer.engine_events
            else None
        )
        # Local bindings survive callbacks: compaction rebuilds the heap in
        # place and clear_pending empties every container in place, so the
        # object identities are stable for the whole run.
        heap = self._heap
        dead = self._dead
        seqs = self._seqs
        callbacks = self._callbacks
        cbargs = self._cbargs
        free_slot = self._free.append
        pop = heappop
        limit = inf if until is None else until
        executed = 0
        try:
            while heap:
                # Single pop per iteration: the head is inspected in place
                # (skipping dead entries) instead of a peek+step pair that
                # walks the heap top twice per event.
                head = heap[0]
                slot = head[3]
                if dead[slot]:
                    pop(heap)
                    self._release_slot(slot)
                    continue
                time = head[0]
                if time > limit:
                    self._now = limit
                    break
                pop(heap)
                callback = callbacks[slot]
                args = cbargs[slot]
                # Inlined slot release: only the seq is invalidated here (it
                # is what stale handles are checked against); the callback
                # and args references are overwritten when the slot is
                # reused, or dropped by clear_pending.
                seqs[slot] = 0
                free_slot(slot)
                self._live -= 1
                self._now = time
                executed += 1
                if on_event is not None:
                    on_event(time, callback, head[1])
                callback(*args)  # type: ignore[misc]
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
            if until is not None and self._now < until and not heap:
                self._now = until
            return self._now
        finally:
            self.events_processed += executed
            self._running = False

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    def clear_pending(self) -> int:
        """Cancel every queued event; returns how many were still live.

        Used by watchdogs (``repro.chaos``) that abandon a run after a
        deadline: the queue is emptied so the simulator can be inspected or
        discarded without draining stale callbacks.  All slot storage is
        wiped, so handles to cleared events fail their seq check and a late
        ``Event.cancel`` is a no-op instead of driving ``_live`` negative.
        """
        abandoned = self._live
        self._heap.clear()
        del self._seqs[:]
        self._callbacks.clear()
        self._cbargs.clear()
        self._dead[:] = b""
        self._free.clear()
        self._live = 0
        return abandoned


class LegacyEvent:
    """A scheduled callback.  Cancellable; compares by (time, priority, seq)."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator; set by ``schedule_at`` so cancellation can keep
        #: the live-event counter exact.  ``None`` for free-standing events.
        self._sim: Optional["LegacySimulator"] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()

    def __lt__(self, other: "LegacyEvent") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<LegacyEvent t={self.time:.6f} p={self.priority} {name}{state}>"


class LegacySimulator(Simulator):
    """The original object-heap kernel, kept as a differential oracle.

    Same observable semantics as :class:`Simulator`; every event is a
    :class:`LegacyEvent` on a heap ordered by a Python-level ``__lt__``.
    ``repro bench --suite scale`` uses it as the speedup baseline and the
    determinism suite replays random interleavings through both kernels.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self._queue: list[LegacyEvent] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._live = 0
        self.peak_pending = 0
        self.rng = random.Random(seed)
        self.events_processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> LegacyEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> LegacyEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        event = LegacyEvent(time, priority, self._seq, callback, args)
        event._sim = self
        heappush(self._queue, event)
        self._live += 1
        if self._live > self.peak_pending:
            self.peak_pending = self._live
        return event

    def schedule_batch(
        self,
        items: Iterable[BatchItem],
        *,
        priority: int = PRIORITY_NORMAL,
    ) -> int:
        """Bulk-schedule ``(delay, callback, args)`` triples; returns count."""
        appended = 0
        for delay, callback, args in items:
            self.schedule(delay, callback, *args, priority=priority)
            appended += 1
        return appended

    def _on_cancel(self) -> None:
        """Account for one cancellation; compact the heap when mostly dead."""
        self._live -= 1
        queue = self._queue
        if len(queue) > _COMPACT_MIN_QUEUE and len(queue) - self._live > self._live:
            self._queue = [event for event in queue if not event.cancelled]
            heapify(self._queue)

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        tracer = self.tracer
        while self._queue:
            event = heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            # Detach so a late cancel() on the executed event's handle
            # cannot decrement the live counter a second time.
            event._sim = None
            self._now = event.time
            self.events_processed += 1
            if tracer.enabled and tracer.engine_events:
                tracer.on_engine_event(event.time, event.callback, event.priority)
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time passes ``until``."""
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        tracer = self.tracer
        on_event = (
            tracer.on_engine_event
            if tracer.enabled and tracer.engine_events
            else None
        )
        try:
            executed = 0
            # self._queue is re-read every iteration: compaction (triggered
            # by LegacyEvent.cancel inside a callback) rebinds it.
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heappop(self._queue)
                self._live -= 1
                event._sim = None
                self._now = event.time
                self.events_processed += 1
                if on_event is not None:
                    on_event(event.time, event.callback, event.priority)
                event.callback(*event.args)
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
            if until is not None and self._now < until and not self._queue:
                self._now = until
            return self._now
        finally:
            self._running = False

    def clear_pending(self) -> int:
        """Cancel every queued event; returns how many were still live.

        Each event is detached (``cancelled=True``, ``_sim=None``) before the
        queue is dropped, so a handle cancelled *after* the clear is a no-op
        instead of decrementing ``_live`` below zero and triggering bogus
        compaction.
        """
        abandoned = self._live
        for event in self._queue:
            event.cancelled = True
            event._sim = None
        self._queue.clear()
        self._live = 0
        return abandoned
