"""Simulated cluster: machines, executors, and health states.

Executors are pre-launched slots ("the worker machine provides computing
resources for tasks in terms of Swift Executors, which are pre-launched when
Swift starts", Section II-B).  Machines carry the health state machine used
by failure detection (Section IV-A): HEALTHY -> UNHEALTHY -> READ_ONLY, or
directly to DEAD on a machine crash.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from .config import SimConfig
from .disk import DiskModel
from .network import NetworkModel


class MachineState(enum.Enum):
    """Machine health states of Section IV-A."""
    HEALTHY = "healthy"
    #: Flagged by the health monitor; still running but suspect.
    UNHEALTHY = "unhealthy"
    #: No new tasks scheduled; existing tasks drain (Section IV-A).
    READ_ONLY = "read_only"
    DEAD = "dead"


class ExecutorState(enum.Enum):
    """Lifecycle of one pre-launched executor slot."""
    IDLE = "idle"
    ASSIGNED = "assigned"
    RUNNING = "running"
    REVOKED = "revoked"


class Executor:
    """One pre-launched executor slot on a machine."""

    __slots__ = ("executor_id", "machine", "state", "current_task", "pid")

    def __init__(self, executor_id: int, machine: "Machine") -> None:
        self.executor_id = executor_id
        self.machine = machine
        self.state = ExecutorState.IDLE
        #: Opaque handle to the task instance currently assigned/running.
        self.current_task: Optional[object] = None
        #: Simulated process id; bumped on every (re)launch so the Admin can
        #: detect restarts from the self-report (Section IV-A).
        self.pid = executor_id + 10_000

    @property
    def is_free(self) -> bool:
        """True when idle on a machine that accepts tasks."""
        return self.state == ExecutorState.IDLE and self.machine.accepts_tasks

    def _transition(self, new_state: ExecutorState) -> None:
        """Move to ``new_state``, keeping the machine's idle bookkeeping
        (count and free stack) exact."""
        was_idle = self.state == ExecutorState.IDLE
        now_idle = new_state == ExecutorState.IDLE
        self.state = new_state
        if was_idle and not now_idle:
            self.machine._adjust_idle(-1)
            stack = self.machine._free_stack
            # Grants consume each machine's stack from the top, so the
            # common case is a pop; the remove() fallback covers arbitrary
            # interleavings (revocation, locality overlap).
            if stack and stack[-1] is self:
                stack.pop()
            else:
                stack.remove(self)
        elif now_idle and not was_idle:
            self.machine._adjust_idle(+1)
            self.machine._free_stack.append(self)

    def assign(self, task: object) -> None:
        """Reserve this executor for a task (must be idle)."""
        if self.state != ExecutorState.IDLE:
            raise RuntimeError(f"executor {self.executor_id} is not idle ({self.state})")
        self._transition(ExecutorState.ASSIGNED)
        self.current_task = task

    def start(self) -> None:
        """Move an assigned executor to running."""
        if self.state != ExecutorState.ASSIGNED:
            raise RuntimeError(f"executor {self.executor_id} has no assigned task")
        self._transition(ExecutorState.RUNNING)

    def release(self) -> None:
        """Return the executor to the idle pool."""
        self.current_task = None
        if self.state != ExecutorState.REVOKED:
            self._transition(ExecutorState.IDLE)

    def relaunch(self) -> None:
        """Simulate a process restart: new PID, back to idle."""
        self.pid += 1_000_000
        self.current_task = None
        self._transition(ExecutorState.IDLE)

    def revoke(self) -> None:
        """Withdraw the executor permanently (machine death)."""
        self._transition(ExecutorState.REVOKED)
        self.current_task = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Executor {self.executor_id} m{self.machine.machine_id} {self.state.value}>"


class Machine:
    """One worker machine with a NIC, disks, executors, and a Cache Worker."""

    def __init__(self, machine_id: int, n_executors: int) -> None:
        self.machine_id = machine_id
        self.state = MachineState.HEALTHY
        #: Backref set by Cluster so idle counts aggregate in O(1).
        self._cluster: Optional["Cluster"] = None
        self.idle_count = n_executors
        self.executors = [
            Executor(machine_id * 10_000 + i, self) for i in range(n_executors)
        ]
        #: Exact stack of idle executors, maintained by every state
        #: transition; lets the scheduler grab free slots without scanning
        #: the executor list (O(grant) instead of O(executors)).
        self._free_stack: list[Executor] = list(self.executors)
        #: Attached by the runtime (a ``repro.core.cache_worker.CacheWorker``).
        self.cache_worker: Optional[object] = None
        #: Running count of tasks currently in a network/disk-heavy phase;
        #: used for contention estimates.
        self.active_transfers = 0
        #: Recent task failures, used by the health monitor.
        self.recent_failures: list[float] = []

    @property
    def accepts_tasks(self) -> bool:
        """True when the scheduler may place new tasks here."""
        return self.state == MachineState.HEALTHY

    @property
    def alive(self) -> bool:
        """True unless the machine is dead."""
        return self.state != MachineState.DEAD

    def _adjust_idle(self, delta: int) -> None:
        self.idle_count += delta
        if self._cluster is not None and self.accepts_tasks:
            self._cluster._free_count += delta

    def free_executors(self) -> list[Executor]:
        """Idle executors, empty when the machine is quarantined."""
        if not self.accepts_tasks:
            return []
        return list(self._free_stack)

    def busy_count(self) -> int:
        """Executors currently assigned or running."""
        return len(self.executors) - self.idle_count

    def load(self) -> float:
        """Fraction of executors occupied; the machine-load signal used by
        the Resource Scheduler to avoid scheduling flock (Section III-A2)."""
        if not self.executors:
            return 1.0
        return self.busy_count() / len(self.executors)

    def _withdraw_from_pool(self) -> None:
        """Remove this machine's idle executors from the cluster's pool
        (called when the machine stops accepting tasks)."""
        if self._cluster is not None and self.accepts_tasks:
            self._cluster._free_count -= self.idle_count

    def mark_read_only(self) -> None:
        """Quarantine: drain existing tasks, accept no new ones."""
        if self.state == MachineState.HEALTHY or self.state == MachineState.UNHEALTHY:
            self._withdraw_from_pool()
            self.state = MachineState.READ_ONLY
            if self._cluster is not None:
                self._cluster._schedulable_cache = None

    def mark_healthy(self) -> None:
        """Recover a quarantined/unhealthy machine: accept tasks again and
        return its idle executors to the cluster pool."""
        if self.state in (MachineState.READ_ONLY, MachineState.UNHEALTHY):
            self.state = MachineState.HEALTHY
            if self._cluster is not None:
                self._cluster._free_count += self.idle_count
                self._cluster._schedulable_cache = None

    def mark_dead(self) -> None:
        """Kill the machine and revoke all of its executors."""
        if self.state != MachineState.DEAD:
            self._withdraw_from_pool()
            self.state = MachineState.DEAD
            if self._cluster is not None:
                self._cluster._schedulable_cache = None
            for executor in self.executors:
                executor.revoke()

    def record_failure(self, now: float, window: float) -> int:
        """Record a task failure; return the count within ``window`` seconds."""
        self.recent_failures.append(now)
        cutoff = now - window
        self.recent_failures = [t for t in self.recent_failures if t >= cutoff]
        return len(self.recent_failures)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.machine_id} {self.state.value} {self.busy_count()}/{len(self.executors)}>"


class Cluster:
    """A collection of machines plus the shared network and disk models."""

    def __init__(self, machines: list[Machine], config: SimConfig) -> None:
        if not machines:
            raise ValueError("a cluster needs at least one machine")
        config.validate()
        self.machines = machines
        self.config = config
        self.network = NetworkModel(config.network, n_machines=len(machines))
        self.disk = DiskModel(config.disk)
        self._free_count = 0
        for machine in machines:
            machine._cluster = self
            if machine.accepts_tasks:
                self._free_count += machine.idle_count
        #: Machine membership is fixed after construction, so the slot total
        #: is a constant (queried on every request validation).
        self._total_executors = sum(len(m.executors) for m in machines)
        #: Cache of :meth:`schedulable_machines`, invalidated by the
        #: ``mark_*`` health transitions.  Callers must not mutate it.
        self._schedulable_cache: Optional[list[Machine]] = None

    @classmethod
    def build(
        cls,
        n_machines: int,
        executors_per_machine: Optional[int] = None,
        config: Optional[SimConfig] = None,
    ) -> "Cluster":
        """Construct a homogeneous cluster."""
        config = config or SimConfig()
        per_machine = (
            config.executors_per_machine
            if executors_per_machine is None
            else executors_per_machine
        )
        if n_machines < 1 or per_machine < 1:
            raise ValueError("cluster dimensions must be positive")
        machines = [Machine(i, per_machine) for i in range(n_machines)]
        return cls(machines, config)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        """Number of machines in the cluster."""
        return len(self.machines)

    def alive_machines(self) -> list[Machine]:
        """Machines that have not died."""
        return [m for m in self.machines if m.alive]

    def schedulable_machines(self) -> list[Machine]:
        """Machines accepting new tasks (healthy only).

        The list is cached between health transitions; callers must treat
        it as read-only.
        """
        cached = self._schedulable_cache
        if cached is None:
            cached = self._schedulable_cache = [
                m for m in self.machines if m.accepts_tasks
            ]
        return cached

    def total_executors(self) -> int:
        """Executor slots across all machines (fixed after construction)."""
        return self._total_executors

    def free_executor_count(self) -> int:
        """Idle executors on machines that accept tasks (O(1))."""
        return self._free_count

    def busy_executor_count(self) -> int:
        """Occupied executors on living machines."""
        return sum(m.busy_count() for m in self.machines if m.alive)

    def iter_executors(self) -> Iterable[Executor]:
        """Iterate every executor in machine order."""
        for machine in self.machines:
            yield from machine.executors

    def machines_used_by(self, executors: Iterable[Executor]) -> int:
        """Distinct machine count among ``executors`` (the Y of Section III-B)."""
        return len({e.machine.machine_id for e in executors})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster {self.n_machines} machines, "
            f"{self.total_executors()} executors, {self.free_executor_count()} free>"
        )
