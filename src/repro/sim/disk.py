"""Spinning-disk model used by disk-based shuffle and Cache Worker spill.

Disk shuffle (Spark and Bubble Execution baselines) materialises one file per
(producer task, consumer partition) pair, so for wide shuffles the per-file
overhead dominates; the Cache Worker spill path writes large sequential
chunks, so it pays almost no such overhead (Section III-B: "since this can be
done in large data chunk, it would not hurt performance greatly").
"""

from __future__ import annotations

from .config import DiskConfig


class DiskModel:
    """Per-machine disk cost estimator with simple spindle parallelism."""

    def __init__(self, config: DiskConfig) -> None:
        config.validate()
        self.config = config

    def machine_bandwidth(self, concurrent_tasks: int = 1) -> float:
        """Aggregate sequential bandwidth available to one task.

        ``concurrent_tasks`` tasks on the machine share the spindles; a task
        can use at most one spindle's worth of throughput.
        """
        if concurrent_tasks < 1:
            raise ValueError("concurrent_tasks must be >= 1")
        cfg = self.config
        total = cfg.sequential_bandwidth * cfg.disks_per_machine
        return min(cfg.sequential_bandwidth, total / concurrent_tasks)

    def write_time(
        self,
        bytes_to_write: float,
        n_files: int = 1,
        concurrent_tasks: int = 1,
    ) -> float:
        """Time to write ``bytes_to_write`` spread over ``n_files`` files."""
        if bytes_to_write < 0 or n_files < 0:
            raise ValueError("bytes and file count must be non-negative")
        bandwidth = self.machine_bandwidth(concurrent_tasks)
        return bytes_to_write / bandwidth + n_files * self.config.per_file_overhead

    def read_time(
        self,
        bytes_to_read: float,
        n_files: int = 1,
        concurrent_tasks: int = 1,
        random_access: bool = False,
    ) -> float:
        """Time to read ``bytes_to_read`` from ``n_files`` files.

        ``random_access`` applies the random-read penalty; shuffle reads that
        gather one small fragment from many map outputs are random by nature.
        """
        if bytes_to_read < 0 or n_files < 0:
            raise ValueError("bytes and file count must be non-negative")
        bandwidth = self.machine_bandwidth(concurrent_tasks)
        if random_access:
            bandwidth /= self.config.random_penalty
        return bytes_to_read / bandwidth + n_files * self.config.per_file_overhead

    def spill_time(self, bytes_to_spill: float) -> float:
        """Sequential large-chunk spill used by the Cache Worker LRU policy."""
        if bytes_to_spill < 0:
            raise ValueError("bytes_to_spill must be non-negative")
        # Spills stream at full sequential bandwidth in large chunks.
        return bytes_to_spill / self.config.sequential_bandwidth
