"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the available experiment runners.
``experiment <key> [...] [--jobs N]``
    Run one or more experiments by key and print their tables.
``report [--quick] [--output PATH] [--jobs N]``
    Run everything and write the EXPERIMENTS.md document.
``bench [--quick] [--output PATH]``
    Benchmark the simulator substrate and write BENCH_simulator.json.
``sql [--query TEXT | --file PATH] [--scale N] [--execute]``
    Compile a Swift-language query to a job DAG, show the plan and the
    graphlet partitioning, simulate it, and optionally execute it row-level
    on a generated mini TPC-H database (``--execute``).
``replay [--jobs N]``
    Replay a trace against Swift, Bubble Execution, and JetScope.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core import partition_job, swift_policy
from .experiments import harness, reporting
from .experiments import ablations, figures


def _experiment_registry() -> dict[str, Callable[[], object]]:
    return {
        "fig3": lambda: figures.fig3_idle_ratio(n_jobs=100),
        "fig8": lambda: figures.fig8_trace_characteristics(n_jobs=800),
        "fig9a": figures.fig9a_tpch,
        "fig9b": figures.fig9b_q9_phases,
        "table1": figures.table1_terasort,
        "fig10": lambda: figures.fig10_executor_timeseries(n_jobs=300),
        "fig11": lambda: figures.fig11_latency_cdf(n_jobs=300),
        "fig12": lambda: figures.fig12_shuffle_ablation(n_jobs=6),
        "fig13": figures.fig13_q13_details,
        "fig14": figures.fig14_fault_injection,
        "fig15": lambda: figures.fig15_trace_failures(n_jobs=150),
        "fig16": lambda: figures.fig16_scalability(n_jobs=1500),
        "ablation-partitioning": lambda: ablations.partitioning_ablation(n_jobs=120),
        "ablation-adaptive": lambda: figures.adaptive_shuffle_envelope(n_jobs=5),
        "ablation-heartbeat": ablations.heartbeat_interval_ablation,
        "ablation-cache": ablations.cache_memory_ablation,
        "ablation-submission": ablations.submission_order_ablation,
        "ablation-failure-rate": lambda: ablations.failure_rate_sweep(n_jobs=100),
    }


def _cmd_list(_: argparse.Namespace) -> int:
    for key in _experiment_registry():
        print(key)
    return 0


def _apply_parallel_options(args: argparse.Namespace) -> None:
    """Route ``--jobs``/``--cache-dir`` to the parallel cell harness."""
    from .experiments import parallel

    if getattr(args, "jobs_workers", None):
        parallel.set_default_jobs(args.jobs_workers)
    if getattr(args, "cache_dir", None):
        import os

        os.environ[parallel.CACHE_ENV] = args.cache_dir


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("worker count must be >= 1")
    return value


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_worker_count, default=None, dest="jobs_workers", metavar="N",
        help="fan independent simulation cells across N worker processes "
             "(results are identical to a serial run; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache cell results on disk under DIR, keyed by spec hash "
             "(default $REPRO_CACHE_DIR; unset = no disk cache)",
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    _apply_parallel_options(args)
    registry = _experiment_registry()
    unknown = [key for key in args.keys if key not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    for key in args.keys:
        result = registry[key]()
        if args.json:
            print(result.to_json())
        else:
            print(result.format_table())
            _maybe_plot(result)
        print()
    return 0


def _maybe_plot(result) -> None:
    """Render an ASCII chart for results with a natural plot shape."""
    from .experiments.plots import xy_plot

    if not result.rows:
        return
    keys = set(result.rows[0].keys())
    if {"executors", "speedup", "ideal"} <= keys:
        xs = [float(row["executors"]) for row in result.rows]
        print()
        print(xy_plot(
            xs,
            {"ideal": [float(r["ideal"]) for r in result.rows],
             "measured": [float(r["speedup"]) for r in result.rows]},
        ))


def _cmd_report(args: argparse.Namespace) -> int:
    _apply_parallel_options(args)
    text = reporting.build_report(quick=args.quick, echo=lambda m: print(m, file=sys.stderr))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from .core.dag import Job
    from .core.runtime import SwiftRuntime
    from .sim.cluster import Cluster
    from .sql import (
        FIG1_QUERY,
        compile_sql,
        explain,
        generate_database,
        parse,
        plan_statement,
        run_query,
    )

    if args.file:
        with open(args.file) as handle:
            query = handle.read()
    else:
        query = args.query or FIG1_QUERY

    statement = parse(query)
    print("=== logical plan ===")
    print(explain(plan_statement(statement)))
    dag = compile_sql(query, scale_factor=args.scale, job_id="cli_sql")
    print("\n=== job DAG ===")
    for stage in dag:
        operators = " -> ".join(str(op) for op in stage.operators)
        print(f"  {stage.name:<4} x{stage.task_count:<5} [{operators}]")
    graph = partition_job(dag)
    print(f"\n=== graphlets ({len(graph)}) ===")
    for graphlet in graph.graphlets:
        print(f"  {graphlet.graphlet_id}: {graphlet.stage_names}")
    runtime = SwiftRuntime(Cluster.build(args.machines, 32), swift_policy())
    result = runtime.execute(Job(dag=dag))
    print(f"\nsimulated run time: {result.metrics.run_time:.2f}s "
          f"({len(result.metrics.tasks)} tasks)")
    if args.execute:
        rows = run_query(query, generate_database())
        print(f"\n=== row results ({len(rows)} rows, first 10) ===")
        for row in rows[:10]:
            print(f"  {row}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .baselines import bubble_policy, jetscope_policy
    from .workloads import TraceConfig, generate_trace

    jobs = generate_trace(TraceConfig(n_jobs=args.jobs, mean_interarrival=0.08))
    print(f"replaying {args.jobs} jobs "
          f"({sum(j.dag.total_tasks() for j in jobs)} tasks) on 100 nodes")
    spans = {}
    for policy in (swift_policy(), bubble_policy(), jetscope_policy()):
        results, _ = harness.run_jobs(policy, jobs)
        spans[policy.name] = harness.makespan(results)
        print(f"  {policy.name:<10} makespan={spans[policy.name]:7.1f}s "
              f"mean latency={harness.mean_latency(results):6.1f}s")
    for name in ("swift", "bubble"):
        print(f"  {name} speedup over jetscope: "
              f"{spans['jetscope'] / spans[name]:.2f}x")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments import bench

    payload = bench.write_bench_file(
        path=args.output, quick=args.quick,
        echo=lambda m: print(m, file=sys.stderr),
    )
    terasort = payload["terasort"]
    print(f"event engine: {payload['event_engine']['events_per_s']:,.0f} events/s")
    print(f"cancel-heavy: {payload['cancel_heavy']['events_per_s']:,.0f} events/s")
    print(f"terasort: legacy {terasort['baseline_ms']:.1f}ms -> "
          f"fast {terasort['fast_ms']:.1f}ms ({terasort['speedup']:.2f}x)")
    replay = payload["parallel_replay"]
    print(f"parallel replay: serial {replay['serial_s']:.2f}s -> "
          f"{replay['workers']} workers {replay['parallel_s']:.2f}s "
          f"({replay['speedup']:.2f}x)")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swift (ICDE 2021) reproduction: experiments and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    p_exp = sub.add_parser("experiment", help="run experiments by key")
    p_exp.add_argument("keys", nargs="+", help="experiment keys (see `list`)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    _add_parallel_options(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("--quick", action="store_true", help="reduced workload sizes")
    p_rep.add_argument("--output", help="write to a file instead of stdout")
    _add_parallel_options(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser("bench", help="benchmark the simulator substrate")
    p_bench.add_argument("--quick", action="store_true", help="smaller scenarios")
    p_bench.add_argument("--output", default="BENCH_simulator.json",
                        help="where to write the JSON document")
    p_bench.set_defaults(func=_cmd_bench)

    p_sql = sub.add_parser("sql", help="compile/run a Swift-language query")
    p_sql.add_argument("--query", help="query text (default: the paper's Fig. 1)")
    p_sql.add_argument("--file", help="read the query from a file")
    p_sql.add_argument("--scale", type=float, default=1000.0,
                       help="TPC-H scale factor for planning (default 1000 = 1 TB)")
    p_sql.add_argument("--machines", type=int, default=100)
    p_sql.add_argument("--execute", action="store_true",
                       help="also execute row-level on a mini database")
    p_sql.set_defaults(func=_cmd_sql)

    p_replay = sub.add_parser("replay", help="trace replay vs baselines")
    p_replay.add_argument("--jobs", type=int, default=250)
    p_replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
