"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the available experiment runners.
``experiment <key> [...] [--jobs N]``
    Run one or more experiments by key and print their tables.
``report [--quick] [--out PATH] [--jobs N]``
    Run everything and write the EXPERIMENTS.md document.
``bench [--quick] [--suite all|simulator|sql|scale|service|shuffle] [--out PATH] [--sql-out PATH] [--check]``
    Benchmark the simulator substrate (BENCH_simulator.json) and the SQL
    engines (BENCH_sql.json).  ``--suite scale`` runs only the paper-scale
    trace replay and merges its entry into the simulator JSON;
    ``--suite shuffle`` measures v1 producer-rerun vs v2 replica-failover
    recovery under an injected Cache Worker loss.  ``--check`` compares a
    fresh run against the committed JSON instead of overwriting it and
    exits non-zero when a gated metric regressed beyond ``--tolerance``.
``sql [--query TEXT | --file PATH] [--scale N] [--execute] [--engine E]``
    Compile a Swift-language query to a job DAG, show the plan and the
    graphlet partitioning, simulate it, and optionally execute it on a
    generated mini TPC-H database (``--execute``; ``--engine`` picks
    row/columnar/auto).
``replay [--n-jobs N]``
    Replay a trace against Swift, Bubble Execution, and JetScope.
``chaos [--seed N] [--runs N] [--workload W] [--profile P] [--jobs N]``
    Run seeded randomized multi-failure campaigns against a workload,
    check recovery invariants after every run, and shrink any violation
    to a minimal replayable JSON repro (``--replay PATH`` re-runs one).
``trace <experiment> [--out PATH] [--format chrome|jsonl|both]``
    Run one experiment's workload with structured tracing enabled and
    export the records (Chrome ``trace_event`` JSON loads directly in
    Perfetto / ``chrome://tracing``).
``serve [--trace smoke|small|paper] [--out DIR] [--n-jobs N] [--seed N]``
    Replay a multi-tenant Poisson arrival trace through the job-submission
    gateway (admission control, quotas, EDF dispatch) and write the
    per-job queue-time CSV plus a per-tenant summary JSON into ``--out``.
    ``--check`` replays twice and verifies byte-identical output and the
    quota/slot-conservation invariants (the CI service-smoke gate).

Flag conventions: ``--out`` names the output file, ``--jobs`` fans cells
across worker processes, ``--cache-dir`` caches cell results, ``--n-jobs``
sizes the workload, ``--seed`` makes randomized workloads replayable.  The
old spellings (``--output``; replay's job-count ``--jobs``) still parse
but print a deprecation warning.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core import partition_job, swift_policy
from .experiments import harness, reporting
from .experiments import ablations, figures


def _experiment_registry() -> dict[str, Callable[[], object]]:
    return {
        "fig3": lambda: figures.fig3_idle_ratio(n_jobs=100),
        "fig8": lambda: figures.fig8_trace_characteristics(n_jobs=800),
        "fig9a": figures.fig9a_tpch,
        "fig9b": figures.fig9b_q9_phases,
        "table1": figures.table1_terasort,
        "fig10": lambda: figures.fig10_executor_timeseries(n_jobs=300),
        "fig11": lambda: figures.fig11_latency_cdf(n_jobs=300),
        "fig12": lambda: figures.fig12_shuffle_ablation(n_jobs=6),
        "fig13": figures.fig13_q13_details,
        "fig14": figures.fig14_fault_injection,
        "fig15": lambda: figures.fig15_trace_failures(n_jobs=150),
        "fig16": lambda: figures.fig16_scalability(n_jobs=1500),
        "ablation-partitioning": lambda: ablations.partitioning_ablation(n_jobs=120),
        "ablation-adaptive": lambda: figures.adaptive_shuffle_envelope(n_jobs=5),
        "ablation-heartbeat": ablations.heartbeat_interval_ablation,
        "ablation-cache": ablations.cache_memory_ablation,
        "ablation-submission": ablations.submission_order_ablation,
        "ablation-failure-rate": lambda: ablations.failure_rate_sweep(n_jobs=100),
    }


def _cmd_list(_: argparse.Namespace) -> int:
    for key in _experiment_registry():
        print(key)
    return 0


def _apply_parallel_options(args: argparse.Namespace) -> None:
    """Route ``--jobs``/``--cache-dir`` to the parallel cell harness."""
    from .experiments import parallel

    if getattr(args, "jobs_workers", None):
        parallel.set_default_jobs(args.jobs_workers)
    if getattr(args, "cache_dir", None):
        import os

        os.environ[parallel.CACHE_ENV] = args.cache_dir


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("worker count must be >= 1")
    return value


class _DeprecatedAlias(argparse.Action):
    """Accept an old flag spelling: store to the canonical dest, warn once."""

    def __init__(self, *args, replacement: str = "", **kwargs) -> None:
        self.replacement = replacement
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None) -> None:
        print(
            f"warning: {option_string} is deprecated, use {self.replacement}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _add_output_option(
    parser: argparse.ArgumentParser, default: str | None = None, what: str = "a file"
) -> None:
    """The shared ``--out`` option (with the deprecated ``--output`` alias)."""
    parser.add_argument(
        "--out", default=default, metavar="PATH",
        help=f"write to {what}" + (f" (default {default})" if default else
                                   " instead of stdout"),
    )
    parser.add_argument(
        "--output", dest="out", metavar="PATH", action=_DeprecatedAlias,
        replacement="--out", help=argparse.SUPPRESS,
    )


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_worker_count, default=None, dest="jobs_workers", metavar="N",
        help="fan independent simulation cells across N worker processes "
             "(results are identical to a serial run; default $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache cell results on disk under DIR, keyed by spec hash "
             "(default $REPRO_CACHE_DIR; unset = no disk cache)",
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    _apply_parallel_options(args)
    registry = _experiment_registry()
    unknown = [key for key in args.keys if key not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    for key in args.keys:
        result = registry[key]()
        if args.json:
            print(result.to_json())
        else:
            print(result.format_table())
            _maybe_plot(result)
        print()
    return 0


def _maybe_plot(result) -> None:
    """Render an ASCII chart for results with a natural plot shape."""
    from .experiments.plots import xy_plot

    if not result.rows:
        return
    keys = set(result.rows[0].keys())
    if {"executors", "speedup", "ideal"} <= keys:
        xs = [float(row["executors"]) for row in result.rows]
        print()
        print(xy_plot(
            xs,
            {"ideal": [float(r["ideal"]) for r in result.rows],
             "measured": [float(r["speedup"]) for r in result.rows]},
        ))


def _cmd_report(args: argparse.Namespace) -> int:
    _apply_parallel_options(args)
    text = reporting.build_report(quick=args.quick, echo=lambda m: print(m, file=sys.stderr))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from .core.dag import Job
    from .core.runtime import SwiftRuntime
    from .sim.cluster import Cluster
    from .sql import (
        FIG1_QUERY,
        compile_sql,
        execute_sql,
        explain,
        generate_database,
        parse,
        plan_statement,
    )

    if args.file:
        with open(args.file) as handle:
            query = handle.read()
    else:
        query = args.query or FIG1_QUERY

    statement = parse(query)
    print("=== logical plan ===")
    print(explain(plan_statement(statement)))
    dag = compile_sql(query, scale_factor=args.scale, job_id="cli_sql")
    print("\n=== job DAG ===")
    for stage in dag:
        operators = " -> ".join(str(op) for op in stage.operators)
        print(f"  {stage.name:<4} x{stage.task_count:<5} [{operators}]")
    graph = partition_job(dag)
    print(f"\n=== graphlets ({len(graph)}) ===")
    for graphlet in graph.graphlets:
        print(f"  {graphlet.graphlet_id}: {graphlet.stage_names}")
    runtime = SwiftRuntime(Cluster.build(args.machines, 32), swift_policy())
    result = runtime.execute(Job(dag=dag))
    print(f"\nsimulated run time: {result.metrics.run_time:.2f}s "
          f"({len(result.metrics.tasks)} tasks)")
    if args.execute:
        outcome = execute_sql(
            query, generate_database(),
            engine=args.engine, batch_size=args.batch_size,
        )
        print(f"\n=== results ({len(outcome.rows)} rows, first 10) "
              f"[engine={outcome.engine}: {outcome.reason}] ===")
        for row in outcome.rows[:10]:
            print(f"  {row}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .baselines import bubble_policy, jetscope_policy
    from .workloads import TraceConfig, generate_trace

    jobs = generate_trace(
        TraceConfig(n_jobs=args.n_jobs, mean_interarrival=0.08, seed=args.seed)
    )
    print(f"replaying {args.n_jobs} jobs "
          f"({sum(j.dag.total_tasks() for j in jobs)} tasks) on 100 nodes")
    spans = {}
    for policy in (swift_policy(), bubble_policy(), jetscope_policy()):
        results, _ = harness.run_jobs(policy, jobs)
        spans[policy.name] = harness.makespan(results)
        print(f"  {policy.name:<10} makespan={spans[policy.name]:7.1f}s "
              f"mean latency={harness.mean_latency(results):6.1f}s")
    for name in ("swift", "bubble"):
        print(f"  {name} speedup over jetscope: "
              f"{spans['jetscope'] / spans[name]:.2f}x")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos import ChaosEngine
    from .experiments.parallel import default_jobs

    _apply_parallel_options(args)
    engine = ChaosEngine(
        workload=args.workload, profile=args.profile, out_dir=args.out,
        audit=args.audit,
    )
    if args.replay:
        result = engine.replay(args.replay)
        status = "PASS" if result.passed else "FAIL"
        print(f"replay {args.replay}: {status} "
              f"(makespan {result.makespan:.1f}s, "
              f"baseline {result.baseline_makespan:.1f}s)")
        for violation in result.violations:
            print(f"  [{violation.invariant}] {violation.message}")
        return 0 if result.passed else 1
    seeds = range(args.seed, args.seed + args.runs)
    report = engine.sweep(seeds, jobs=default_jobs(), shrink=not args.no_shrink)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_summary())
    return 0 if report.ok else 1


def _print_simulator_summary(payload: dict) -> None:
    terasort = payload["terasort"]
    print(f"event engine: {payload['event_engine']['events_per_s']:,.0f} events/s")
    print(f"cancel-heavy: {payload['cancel_heavy']['events_per_s']:,.0f} events/s")
    print(f"terasort: legacy {terasort['baseline_ms']:.1f}ms -> "
          f"fast {terasort['fast_ms']:.1f}ms ({terasort['speedup']:.2f}x)")
    tracing = payload["tracing"]
    print(f"tracing: disabled {tracing['disabled_ms']:.1f}ms -> "
          f"recording {tracing['recording_ms']:.1f}ms "
          f"({tracing['recording_overhead_pct']:+.1f}%)")
    replay = payload["parallel_replay"]
    print(f"parallel replay [{replay['mode']}]: serial {replay['serial_s']:.2f}s "
          f"-> {replay['effective_workers']} worker(s) {replay['parallel_s']:.2f}s "
          f"({replay['speedup']:.2f}x)")
    chaos = payload.get("chaos_smoke")
    if chaos:
        print(f"chaos smoke: {chaos['passed']}/{chaos['runs']} campaigns "
              f"passed in {chaos['best_ms']:.0f}ms")
    scale = payload.get("scale")
    if scale:
        _print_scale_summary(scale)
    shuffle = payload.get("shuffle")
    if shuffle:
        _print_shuffle_summary(shuffle)


def _print_scale_summary(scale: dict) -> None:
    print(f"scale replay: {scale['replay_jobs']} jobs / "
          f"{scale['replay_tasks']:,} tasks on {scale['n_machines']:,} "
          f"machines in {scale['replay_wall_s']:.2f}s "
          f"(makespan {scale['replay_makespan_s']:.0f}s simulated, "
          f"legacy kernel {scale['replay_speedup']:.2f}x slower)")
    print(f"scale kernel: {scale['kernel_events']:,} events at "
          f"{scale['events_per_s']:,.0f} events/s, peak queue "
          f"{scale['kernel_peak_pending']:,} "
          f"({scale['kernel_speedup']:.2f}x over legacy)")


def _print_service_summary(service: dict) -> None:
    print(f"service gateway: {service['n_arrivals']} arrivals / "
          f"{service['n_tenants']} tenants on {service['n_machines']:,} "
          f"machines; direct {service['direct_s']:.2f}s -> gateway "
          f"{service['gateway_s']:.2f}s wall "
          f"({service['overhead_frac']:+.1%} overhead, gate < 10%)")
    print(f"service queueing: p95 time-in-queue "
          f"{service['queue_time_p95_s']:.1f}s simulated, "
          f"{service['rejected']} rejected, "
          f"{service['deadline_overruns']} deadline overruns")


def _print_shuffle_summary(shuffle: dict) -> None:
    print(f"shuffle recovery [{shuffle['job']}]: cache worker lost on "
          f"machine {shuffle['machine_lost']} at "
          f"{shuffle['at_fraction']:.0%} of the baseline; "
          f"v1 rerun +{shuffle['v1_recovery_s']:.2f}s -> "
          f"v2 failover +{shuffle['v2_recovery_s']:.2f}s "
          f"({shuffle['v2_failovers']} failover read(s), gate: v2 < v1)")


def _print_sql_summary(payload: dict) -> None:
    for scenario, result in payload.items():
        if not isinstance(result, dict):
            continue
        print(f"sql {scenario}: row {result.get('row_ms', 0.0):.0f}ms -> "
              f"columnar {result.get('columnar_ms', 0.0):.0f}ms "
              f"({result.get('speedup', 0.0):.2f}x, "
              f"{result.get('n_rows', 0):,} rows)")


def _check_payload(path: str, fresh: dict, tolerance: float) -> list[str]:
    """Compare ``fresh`` against the committed bench file at ``path``."""
    import json
    import os

    from .experiments import bench

    if not os.path.exists(path):
        print(f"note: no committed {path} to check against; skipping",
              file=sys.stderr)
        return []
    with open(path, encoding="utf-8") as handle:
        committed = json.load(handle)
    return bench.compare_payloads(committed, fresh, tolerance=tolerance)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments import bench

    echo = lambda m: print(m, file=sys.stderr)  # noqa: E731
    problems: list[str] = []
    if args.suite in ("all", "simulator"):
        payload = bench.run_benchmarks(
            quick=args.quick, echo=echo, audit=args.audit
        )
        _print_simulator_summary(payload)
        if args.check:
            problems += _check_payload(args.out, payload, args.tolerance)
        else:
            bench.write_payload(args.out, payload)
            print(f"wrote {args.out}", file=sys.stderr)
    if args.suite == "scale":
        payload = bench.run_scale_benchmarks(quick=args.quick, echo=echo)
        _print_scale_summary(payload["scale"])
        if args.check:
            problems += _check_payload(args.out, payload, args.tolerance)
        else:
            bench.merge_payload(args.out, payload)
            print(f"updated scale entry in {args.out}", file=sys.stderr)
    if args.suite == "shuffle":
        payload = bench.run_shuffle_benchmarks(quick=args.quick, echo=echo)
        _print_shuffle_summary(payload["shuffle"])
        if args.check:
            problems += _check_payload(args.out, payload, args.tolerance)
        else:
            bench.merge_payload(args.out, payload)
            print(f"updated shuffle entry in {args.out}", file=sys.stderr)
    if args.suite == "service":
        payload = bench.run_service_benchmarks(quick=args.quick, echo=echo)
        _print_service_summary(payload["service"])
        if args.check:
            problems += _check_payload(args.out, payload, args.tolerance)
        else:
            bench.merge_payload(args.out, payload)
            print(f"updated service entry in {args.out}", file=sys.stderr)
    if args.suite in ("all", "sql"):
        payload = bench.run_sql_benchmarks(quick=args.quick, echo=echo)
        _print_sql_summary(payload)
        if args.check:
            problems += _check_payload(args.sql_out, payload, args.tolerance)
        else:
            bench.write_payload(args.sql_out, payload)
            print(f"wrote {args.sql_out}", file=sys.stderr)
    if args.check:
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            return 1
        print("bench check passed: no gated metric regressed "
              f"beyond {args.tolerance:.0%}")
    return 0


#: ``repro serve`` trace presets: arrival process + cluster + policy knobs.
#: ``paper`` replays the acceptance-scale trace (1,000 tenants / 2,000
#: arrivals on 2,000 machines); ``smoke`` is the CI service-smoke gate.
_SERVE_PRESETS: dict[str, dict[str, float | int]] = {
    "smoke": dict(n_tenants=50, n_jobs=120, machines=20, executors=8,
                  mean_interarrival=0.4, max_stage_tasks=60,
                  pressure=4.0, pending=16, concurrent=4),
    "small": dict(n_tenants=200, n_jobs=500, machines=100, executors=8,
                  mean_interarrival=0.1, max_stage_tasks=200,
                  pressure=6.0, pending=32, concurrent=8),
    "paper": dict(n_tenants=1000, n_jobs=2000, machines=2000, executors=4,
                  mean_interarrival=0.05, max_stage_tasks=700,
                  pressure=6.0, pending=32, concurrent=8),
}


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .api import (
        AdmissionPolicy,
        RuntimeConfig,
        Service,
        ServiceConfig,
        TenantSpec,
    )
    from .workloads.traces import tenant_arrival_trace

    preset = _SERVE_PRESETS[args.trace]
    n_tenants = args.n_tenants or int(preset["n_tenants"])
    n_jobs = args.n_jobs or int(preset["n_jobs"])

    def replay() -> tuple["Service", object]:
        config = ServiceConfig(
            runtime=RuntimeConfig(
                n_machines=int(preset["machines"]),
                executors_per_machine=int(preset["executors"]),
                audit=args.audit,
                audit_strict=False,
            ),
            admission=AdmissionPolicy(
                max_pending_per_tenant=int(preset["pending"]),
                max_pool_pressure=float(preset["pressure"]),
            ),
            default_tenant=TenantSpec(
                name="default", max_concurrent_jobs=int(preset["concurrent"])
            ),
        )
        service = Service(config)
        service.submit_trace(tenant_arrival_trace(
            n_tenants=n_tenants,
            n_jobs=n_jobs,
            seed=args.seed,
            mean_interarrival=float(preset["mean_interarrival"]),
            max_stage_tasks=int(preset["max_stage_tasks"]),
        ))
        return service, service.run()

    print(f"serving {n_jobs} arrivals across {n_tenants} tenants "
          f"on {preset['machines']}x{preset['executors']} executors "
          f"(trace={args.trace}, seed={args.seed})", file=sys.stderr)
    service, result = replay()
    summary = result.to_dict()
    totals = summary["totals"]
    queue_time, job_makespan = totals["queue_time"], totals["job_makespan"]
    print(f"tenants: {len(result.tenants)}  admitted: {result.admitted}  "
          f"rejected: {result.rejected}  overruns: {totals['deadline_overruns']}")
    rejected_by: dict[str, int] = {}
    for report in result.tenants.values():
        for reason, count in report.rejected_by_reason.items():
            rejected_by[reason] = rejected_by.get(reason, 0) + count
    if rejected_by:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(rejected_by.items()))
        print(f"rejections: {detail}")
    print(f"time-in-queue: p50 {queue_time['p50']:.1f}s  "
          f"p95 {queue_time['p95']:.1f}s  p99 {queue_time['p99']:.1f}s")
    print(f"job makespan:  p50 {job_makespan['p50']:.1f}s  "
          f"p95 {job_makespan['p95']:.1f}s  p99 {job_makespan['p99']:.1f}s  "
          f"(run makespan {totals['makespan']:.1f}s)")
    os.makedirs(args.out, exist_ok=True)
    csv_path = result.write_queue_csv(os.path.join(args.out, "queue_times.csv"))
    summary_path = result.write_summary(os.path.join(args.out, "summary.json"))
    print(f"wrote {csv_path}", file=sys.stderr)
    print(f"wrote {summary_path}", file=sys.stderr)
    if not args.check:
        return 0
    problems = service.gateway.quota_violations()
    if args.audit and result.audit is not None and result.audit["violations"]:
        problems.append(f"audit violations: {result.audit['violations']}")
    _, second = replay()
    if second.csv != result.csv:
        problems.append("queue-time CSV is not deterministic across replays")
    if problems:
        for problem in problems:
            print(f"CHECK FAILED: {problem}")
        return 1
    print("serve check passed: deterministic replay, quotas and "
          "slot conservation hold")
    return 0


def _trace_registry() -> dict[str, tuple[str, Callable[[], list]]]:
    """Traceable experiment workloads by key (values: description, jobs)."""
    from .workloads import TraceConfig, generate_trace, terasort, tpch, traces

    return {
        "fig3": ("profile-1 trace sample (Fig. 3 workload)",
                 lambda: traces.cluster_profile_jobs(1, n_jobs=20)),
        "fig9a": ("TPC-H Q1 (Fig. 9(a))", lambda: [tpch.query_job(1)]),
        "fig9b": ("TPC-H Q9 (Fig. 9(b) phase breakdown)",
                  lambda: [tpch.query_job(9)]),
        "fig13": ("TPC-H Q13 (Fig. 13 details)", lambda: [tpch.query_job(13)]),
        "table1": ("100x100 Terasort (Table 1)",
                   lambda: [terasort.terasort_job(100, 100)]),
        "replay": ("25-job trace replay (Fig. 10 workload, reduced)",
                   lambda: generate_trace(
                       TraceConfig(n_jobs=25, mean_interarrival=0.08))),
    }


def _normalize_trace_key(key: str) -> str:
    """Canonicalize experiment spellings: ``fig03`` -> ``fig3``."""
    import re

    key = key.lower()
    match = re.fullmatch(r"fig0*(\d+[a-z]?)", key)
    if match:
        return f"fig{match.group(1)}"
    if key == "terasort":
        return "table1"
    return key


def _cmd_trace(args: argparse.Namespace) -> int:
    from .api import Simulation, TraceConfig

    registry = _trace_registry()
    key = _normalize_trace_key(args.experiment)
    if key not in registry:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    description, jobs_factory = registry[key]
    jobs = jobs_factory()
    config = TraceConfig(
        path=args.out or f"trace_{key}",
        format=args.format,
        engine_events=args.engine_events,
    )
    print(f"tracing {key}: {description} "
          f"({len(jobs)} job(s), {sum(j.dag.total_tasks() for j in jobs)} tasks)",
          file=sys.stderr)
    outcome = Simulation().run(jobs, trace=config)
    print(f"{len(outcome.trace)} records, makespan {outcome.makespan:.1f}s, "
          f"{'all jobs completed' if outcome.completed else 'some jobs failed'}")
    for path in outcome.trace_files:
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swift (ICDE 2021) reproduction: experiments and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    p_exp = sub.add_parser("experiment", help="run experiments by key")
    p_exp.add_argument("keys", nargs="+", help="experiment keys (see `list`)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    _add_parallel_options(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("--quick", action="store_true", help="reduced workload sizes")
    _add_output_option(p_rep, what="a file")
    _add_parallel_options(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser(
        "bench", help="benchmark the simulator substrate and SQL engines"
    )
    p_bench.add_argument("--quick", action="store_true", help="smaller scenarios")
    p_bench.add_argument("--suite",
                         choices=("all", "simulator", "sql", "scale",
                                  "service", "shuffle"),
                         default="all",
                         help="which benchmark suite(s) to run (scale, "
                              "service, and shuffle run a single scenario "
                              "and merge its entry into the simulator JSON)")
    _add_output_option(p_bench, default="BENCH_simulator.json",
                       what="the simulator JSON document")
    p_bench.add_argument("--sql-out", default="BENCH_sql.json", metavar="PATH",
                         help="write the SQL suite to PATH "
                              "(default BENCH_sql.json)")
    p_bench.add_argument("--check", action="store_true",
                         help="compare against the committed JSON instead of "
                              "overwriting it; exit 1 on regression")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         metavar="FRAC",
                         help="allowed relative drop for --check "
                              "(default 0.25 = 25%%)")
    p_bench.add_argument("--audit", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="wire the resource-accounting ledger through "
                              "the chaos smoke sweep (default on; committed "
                              "payloads are generated with it)")
    p_bench.set_defaults(func=_cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="run one experiment workload with tracing enabled"
    )
    p_trace.add_argument("experiment",
                         help="what to trace (see the `trace` docs; e.g. fig3)")
    p_trace.add_argument("--format", choices=("chrome", "jsonl", "both"),
                         default="chrome",
                         help="export format (chrome loads in Perfetto)")
    p_trace.add_argument("--engine-events", action="store_true",
                         help="also record every simulator-engine event")
    _add_output_option(p_trace, what="this base name (suffix added per format)")
    p_trace.set_defaults(func=_cmd_trace)

    p_sql = sub.add_parser("sql", help="compile/run a Swift-language query")
    p_sql.add_argument("--query", help="query text (default: the paper's Fig. 1)")
    p_sql.add_argument("--file", help="read the query from a file")
    p_sql.add_argument("--scale", type=float, default=1000.0,
                       help="TPC-H scale factor for planning (default 1000 = 1 TB)")
    p_sql.add_argument("--machines", type=int, default=100)
    p_sql.add_argument("--execute", action="store_true",
                       help="also execute the query on a mini database")
    p_sql.add_argument("--engine", choices=("auto", "row", "columnar"),
                       default="auto",
                       help="execution engine for --execute (auto picks "
                            "columnar when the whole plan is supported)")
    p_sql.add_argument("--batch-size", type=int, default=None, metavar="N",
                       help="columnar batch size (default: auto — whole-table "
                            "batches capped at 2**20 rows)")
    p_sql.set_defaults(func=_cmd_sql)

    p_chaos = sub.add_parser(
        "chaos",
        help="randomized multi-failure campaigns with invariant checking",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="first campaign seed (default 0)")
    p_chaos.add_argument("--runs", type=int, default=20, metavar="N",
                         help="campaigns to run: seeds seed..seed+N-1 "
                              "(default 20)")
    p_chaos.add_argument("--workload", default="terasort",
                         choices=("terasort", "tpch-q13", "trace"),
                         help="workload to inject into (default terasort)")
    from .chaos import PROFILES

    p_chaos.add_argument("--profile", default="standard",
                         choices=tuple(sorted(PROFILES)),
                         help="failure profile: a hostility level (light/"
                              "standard/hostile) or a named scenario such "
                              "as cache-worker-loss-during-shuffle "
                              "(default standard)")
    p_chaos.add_argument("--no-shrink", action="store_true",
                         help="report violations without minimizing them")
    p_chaos.add_argument("--audit", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="shadow every resource register/release with "
                              "the accounting ledger; divergences fail the "
                              "resource-conservation invariant (default off)")
    p_chaos.add_argument("--replay", metavar="PATH",
                         help="re-run a saved JSON repro instead of sweeping")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the full ChaosReport as JSON")
    _add_output_option(p_chaos, default="chaos_repros",
                       what="repro files in this directory")
    _add_parallel_options(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_replay = sub.add_parser("replay", help="trace replay vs baselines")
    p_replay.add_argument("--n-jobs", type=int, default=250, dest="n_jobs",
                          help="number of trace jobs to replay")
    p_replay.add_argument("--jobs", type=int, dest="n_jobs", metavar="N",
                          action=_DeprecatedAlias, replacement="--n-jobs",
                          help=argparse.SUPPRESS)
    p_replay.add_argument("--seed", type=int, default=7,
                          help="trace-generator seed (default 7)")
    p_replay.set_defaults(func=_cmd_replay)

    p_serve = sub.add_parser(
        "serve",
        help="replay a multi-tenant arrival trace through the job gateway",
    )
    p_serve.add_argument("--trace", choices=tuple(_SERVE_PRESETS),
                         default="paper",
                         help="arrival-trace preset: smoke (CI-sized), "
                              "small, or paper (1,000 tenants / 2,000 "
                              "arrivals on 2,000 machines; default)")
    p_serve.add_argument("--n-jobs", type=int, default=None, dest="n_jobs",
                         metavar="N", help="override the preset's arrival count")
    p_serve.add_argument("--n-tenants", type=int, default=None, metavar="N",
                         help="override the preset's tenant count")
    p_serve.add_argument("--seed", type=int, default=7,
                         help="arrival-trace seed (default 7)")
    p_serve.add_argument("--audit", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="wire the resource-accounting ledger through "
                              "the replay (default off)")
    p_serve.add_argument("--check", action="store_true",
                         help="replay twice and verify byte-identical "
                              "queue-time CSVs plus quota/slot-conservation "
                              "invariants; exit 1 on any mismatch")
    _add_output_option(p_serve, default="service_out",
                       what="queue_times.csv + summary.json in this directory")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
