"""Shadow controller: Admin failover without losing running jobs.

Section II-B: "the shadow controller mechanism is enabled to avoid a single
point of failure."  In Swift, a standby Admin mirrors the primary's state
(executor status cache, job monitors, cached plans); when the primary dies,
the shadow takes over after a failover delay during which no new plans are
dispatched — running tasks keep executing and report completion to the new
primary.

The model: an :class:`AdminFailover` event freezes controller dispatching
for ``failover_seconds`` (leader election + state reconciliation from the
executors' self-reports), then resumes.  Tasks already running are
unaffected; queued dispatches and resource grants wait out the freeze.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FailoverEvent:
    """One primary-Admin failure at ``at_time``."""

    at_time: float
    #: Leader election + state resynchronisation time.  The shadow already
    #: mirrors soft state, so this is seconds, not minutes.
    failover_seconds: float = 3.0

    def __post_init__(self) -> None:
        if self.at_time < 0 or self.failover_seconds < 0:
            raise ValueError("failover times must be non-negative")


@dataclass
class ShadowController:
    """Tracks Admin availability windows for the runtime.

    The runtime consults :meth:`next_available` before dispatching: a
    dispatch requested during a failover window is delayed to the window's
    end.  ``failovers_completed`` counts handovers for introspection.
    """

    events: list[FailoverEvent] = field(default_factory=list)
    failovers_completed: int = 0

    def add(self, event: FailoverEvent) -> "ShadowController":
        """Register a failover; keeps events sorted by time."""
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_time)
        return self

    def window_at(self, now: float) -> tuple[float, float] | None:
        """The (start, end) failover window covering ``now``, if any."""
        for event in self.events:
            end = event.at_time + event.failover_seconds
            if event.at_time <= now < end:
                return (event.at_time, end)
        return None

    def next_available(self, now: float) -> float:
        """Earliest time at or after ``now`` when the Admin can dispatch.

        Consecutive failovers chain: if the end of one window lands inside
        another, the delay accumulates.
        """
        cursor = now
        progressed = True
        while progressed:
            progressed = False
            window = self.window_at(cursor)
            if window is not None:
                cursor = window[1]
                progressed = True
        return cursor

    def record_completion(self, now: float) -> None:
        """Count failovers whose window has fully passed by ``now``."""
        self.failovers_completed = sum(
            1 for e in self.events if e.at_time + e.failover_seconds <= now
        )
