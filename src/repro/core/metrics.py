"""Metrics: IdleRatio, 4-phase task breakdown, utilization, quartiles.

* **IdleRatio** (Section III-A): ``(T_data_arrive - T_task_start) /
  (T_task_finish - T_task_start)`` where ``T_task_start`` is when the task
  plan arrives at the executor.
* **4-phase breakdown** (Section V-C1): task launching, shuffle reading,
  record processing, shuffle writing.
* **quartile summary**: the "widely-used four quartile method" [26]
  (Hyndman & Fan) used by Figs. 3 and 15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence


@dataclass(slots=True)
class TaskTiming:
    """Timestamps and phase durations recorded for one task attempt."""

    job_id: str
    stage: str
    index: int
    attempt: int = 0
    #: Plan arrival at the executor (T_task_start of the IdleRatio).
    plan_arrive: float = 0.0
    #: When the task's input data became available (T_data_arrive).
    data_arrive: float = 0.0
    finish: float = 0.0
    launch_time: float = 0.0
    shuffle_read_time: float = 0.0
    processing_time: float = 0.0
    shuffle_write_time: float = 0.0

    @property
    def duration(self) -> float:
        """Wall time from plan arrival to completion."""
        return self.finish - self.plan_arrive

    @property
    def idle_ratio(self) -> float:
        """IdleRatio of this task; 0 for degenerate durations."""
        span = self.finish - self.plan_arrive
        if span <= 0:
            return 0.0
        idle = max(0.0, self.data_arrive - self.plan_arrive)
        return min(1.0, idle / span)


@dataclass
class PhaseBreakdown:
    """Aggregate 4-phase times for one stage (Fig. 9(b) rows)."""

    stage: str
    launch: float = 0.0
    shuffle_read: float = 0.0
    processing: float = 0.0
    shuffle_write: float = 0.0

    @property
    def total(self) -> float:
        """Sum of the four phases."""
        return self.launch + self.shuffle_read + self.processing + self.shuffle_write

    def as_dict(self) -> dict[str, float]:
        """The row format used by Fig. 9(b)-style tables."""
        return {
            "stage": self.stage,  # type: ignore[dict-item]
            "L": self.launch,
            "SR": self.shuffle_read,
            "P": self.processing,
            "SW": self.shuffle_write,
        }


@dataclass
class JobMetrics:
    """Everything measured about one job execution."""

    job_id: str
    submit_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    tasks: list[TaskTiming] = field(default_factory=list)
    #: Count of failures injected/observed during the run.
    failures: int = 0
    restarts: int = 0
    #: Scheme actually used per edge key ("src->dst").
    shuffle_schemes: dict[str, str] = field(default_factory=dict)
    #: Recovery-path accounting (Section IV-B), reconciled against the
    #: RecoveryDecisions the planner produced (tests/test_runtime_failures.py).
    recoveries_by_case: dict[str, int] = field(default_factory=dict)
    #: Same-graphlet predecessors asked to re-send cached shuffle data.
    resends: int = 0
    #: Failures that needed no action (idempotent + output fully consumed).
    noop_recoveries: int = 0
    #: Task instances actually re-launched by recovery.
    task_reruns: int = 0
    #: Task instances the RecoveryDecisions planned to re-run (upper bound
    #: for ``task_reruns``; the bounded-recovery invariant).
    planned_rerun_tasks: int = 0
    #: Owning tenant for multi-tenant service runs ("" = untenanted).
    tenant: str = ""
    #: Absolute completion deadline (simulated seconds; None = no SLO).
    deadline: Optional[float] = None

    @property
    def latency(self) -> float:
        """End-to-end latency from submission to completion."""
        return self.finish_time - self.submit_time

    @property
    def deadline_overrun(self) -> float:
        """Seconds the job finished past its deadline (0 when met or no SLO)."""
        if self.deadline is None:
            return 0.0
        return max(0.0, self.finish_time - self.deadline)

    @property
    def run_time(self) -> float:
        """Execution time from first task start to completion."""
        return self.finish_time - self.start_time

    def idle_ratio(self) -> float:
        """Mean IdleRatio over all task attempts of the job."""
        if not self.tasks:
            return 0.0
        return sum(t.idle_ratio for t in self.tasks) / len(self.tasks)

    def phase_breakdown(self, stage: str) -> PhaseBreakdown:
        """Critical-task (max) phase durations for ``stage`` (Fig. 9(b))."""
        rows = [t for t in self.tasks if t.stage == stage]
        if not rows:
            raise KeyError(f"no tasks recorded for stage {stage!r}")
        return PhaseBreakdown(
            stage=stage,
            launch=max(t.launch_time for t in rows),
            shuffle_read=max(t.shuffle_read_time for t in rows),
            processing=max(t.processing_time for t in rows),
            shuffle_write=max(t.shuffle_write_time for t in rows),
        )


def quantile(values: Sequence[float], q: float) -> float:
    """Hyndman-Fan type-7 sample quantile (the numpy/R default)."""
    if not values:
        raise ValueError("cannot take a quantile of no data")
    if not 0 <= q <= 1:
        raise ValueError("q must be in [0, 1]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    h = (len(data) - 1) * q
    lo = math.floor(h)
    hi = min(lo + 1, len(data) - 1)
    return data[lo] + (h - lo) * (data[hi] - data[lo])


def four_quartile_summary(values: Sequence[float]) -> dict[str, float]:
    """Min / Q1 / median / Q3 / max plus the interquartile mean.

    The paper reports averages "got via the widely-used four quartile
    method" [26]; we interpret that as the interquartile mean (the mean of
    samples between Q1 and Q3), which is robust to stragglers.
    """
    if not values:
        raise ValueError("cannot summarise no data")
    q1 = quantile(values, 0.25)
    q3 = quantile(values, 0.75)
    inner = [v for v in values if q1 <= v <= q3]
    iqm = sum(inner) / len(inner) if inner else (q1 + q3) / 2
    # Guard against float-summation drift on near-constant data.
    iqm = min(max(iqm, min(values)), max(values))
    return {
        "min": min(values),
        "q1": q1,
        "median": quantile(values, 0.5),
        "q3": q3,
        "max": max(values),
        "iq_mean": iqm,
        "mean": sum(values) / len(values),
    }


@dataclass
class UtilizationSample:
    """One point of the running-executor time series (Fig. 10)."""

    time: float
    running_executors: int


def utilization_series(
    intervals: Iterable[tuple[float, float]],
    step: float,
    horizon: float,
) -> list[UtilizationSample]:
    """Build a running-executor count time series from (start, end) busy
    intervals, sampled every ``step`` seconds up to ``horizon``."""
    if step <= 0:
        raise ValueError("step must be positive")
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        if end < start:
            raise ValueError("interval end precedes start")
        events.append((start, 1))
        events.append((end, -1))
    events.sort()
    samples: list[UtilizationSample] = []
    running = 0
    cursor = 0
    t = 0.0
    while t <= horizon + 1e-9:
        while cursor < len(events) and events[cursor][0] <= t:
            running += events[cursor][1]
            cursor += 1
        samples.append(UtilizationSample(time=t, running_executors=running))
        t += step
    return samples


def normalized_cdf(values: Sequence[float], baseline: Sequence[float]) -> list[tuple[float, float]]:
    """CDF of per-job latency normalized to a baseline system (Fig. 11).

    ``values[i] / baseline[i]`` per job; returns (ratio, cumulative %)
    points sorted by ratio.
    """
    if len(values) != len(baseline):
        raise ValueError("values and baseline must be the same length")
    ratios = sorted(
        v / b if b > 0 else math.inf for v, b in zip(values, baseline)
    )
    n = len(ratios)
    return [(ratio, 100.0 * (i + 1) / n) for i, ratio in enumerate(ratios)]
