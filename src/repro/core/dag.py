"""The DAG job model: stages, shuffle edges, and whole-job validation.

A job is a directed acyclic graph of *stages*; each stage runs ``task_count``
parallel tasks executing the same operator chain on different partitions.
Edges carry data between stages via shuffle, and each edge has a *shuffle
mode* — ``PIPELINE`` or ``BARRIER`` — derived from the producer stage's
operators (see :mod:`repro.core.operators`) unless explicitly overridden.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .operators import Operator, stage_is_blocking


class EdgeMode(enum.Enum):
    """Shuffle mode of an edge: streaming pipeline or full barrier."""
    PIPELINE = "pipeline"
    BARRIER = "barrier"


class DAGValidationError(ValueError):
    """Raised when a job DAG is structurally invalid."""


@dataclass
class Stage:
    """One stage of a job: ``task_count`` identical parallel tasks.

    Data-volume fields drive the simulator's cost model:

    * ``scan_bytes_per_task`` — bytes each task reads from external storage
      (table scan); zero for intermediate stages.
    * ``output_bytes_per_task`` — bytes each task writes to its outgoing
      shuffle edge(s) in total.
    * ``work_seconds_per_task`` — pure record-processing time; when ``None``
      the runtime derives it from input volume and the configured
      processing rate.
    """

    name: str
    task_count: int
    operators: tuple[Operator, ...] = ()
    scan_bytes_per_task: float = 0.0
    output_bytes_per_task: float = 0.0
    work_seconds_per_task: Optional[float] = None
    #: Whether re-running a task reproduces byte-identical output in the
    #: same order (Section IV-B1).  Sort-based stages are idempotent; stages
    #: with nondeterministic UDFs or unordered unions may not be.
    idempotent: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise DAGValidationError("stage name must be non-empty")
        if self.task_count < 1:
            raise DAGValidationError(f"stage {self.name}: task_count must be >= 1")
        for value, label in (
            (self.scan_bytes_per_task, "scan_bytes_per_task"),
            (self.output_bytes_per_task, "output_bytes_per_task"),
        ):
            if value < 0:
                raise DAGValidationError(f"stage {self.name}: {label} must be >= 0")
        if self.work_seconds_per_task is not None and self.work_seconds_per_task < 0:
            raise DAGValidationError(
                f"stage {self.name}: work_seconds_per_task must be >= 0"
            )

    @property
    def is_blocking(self) -> bool:
        """True when this stage contains a global-sort operator."""
        return stage_is_blocking(self.operators)

    @property
    def total_output_bytes(self) -> float:
        """Bytes this stage writes across all of its tasks."""
        return self.output_bytes_per_task * self.task_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stage {self.name} x{self.task_count}>"


@dataclass
class Edge:
    """A shuffle edge between two stages.

    ``mode`` may be forced (e.g. by the SQL planner, which knows operator
    semantics); when ``None`` it is derived from the producer stage.
    ``bytes_override`` forces the data volume crossing the edge; by default
    the producer's total output is split evenly across its outgoing edges.
    """

    src: str
    dst: str
    mode: Optional[EdgeMode] = None
    bytes_override: Optional[float] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise DAGValidationError(f"self-edge on stage {self.src}")
        if self.bytes_override is not None and self.bytes_override < 0:
            raise DAGValidationError("bytes_override must be >= 0")


class JobDAG:
    """A validated job DAG with derived edge modes and traversal helpers."""

    def __init__(
        self,
        job_id: str,
        stages: Iterable[Stage],
        edges: Iterable[Edge],
    ) -> None:
        self.job_id = job_id
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise DAGValidationError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        self.edges: list[Edge] = list(edges)
        self._in_edges: dict[str, list[Edge]] = {name: [] for name in self.stages}
        self._out_edges: dict[str, list[Edge]] = {name: [] for name in self.stages}
        for edge in self.edges:
            if edge.src not in self.stages:
                raise DAGValidationError(f"edge references unknown stage {edge.src!r}")
            if edge.dst not in self.stages:
                raise DAGValidationError(f"edge references unknown stage {edge.dst!r}")
            self._out_edges[edge.src].append(edge)
            self._in_edges[edge.dst].append(edge)
        self._topo = self._topological_order()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _topological_order(self) -> list[str]:
        indegree = {name: len(self._in_edges[name]) for name in self.stages}
        # Deterministic: seed with roots in insertion order.
        ready = [name for name in self.stages if indegree[name] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in self._out_edges[name]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.stages):
            cyclic = sorted(set(self.stages) - set(order))
            raise DAGValidationError(f"job {self.job_id}: cycle involving {cyclic}")
        return order

    def topo_order(self) -> list[str]:
        """Stage names in a deterministic topological order."""
        return list(self._topo)

    def roots(self) -> list[str]:
        """Stages with no incoming edges."""
        return [name for name in self._topo if not self._in_edges[name]]

    def sinks(self) -> list[str]:
        """Stages with no outgoing edges."""
        return [name for name in self._topo if not self._out_edges[name]]

    def in_edges(self, stage: str) -> list[Edge]:
        """Edges entering ``stage``."""
        return list(self._in_edges[stage])

    def out_edges(self, stage: str) -> list[Edge]:
        """Edges leaving ``stage``."""
        return list(self._out_edges[stage])

    def predecessors(self, stage: str) -> list[str]:
        """Producer stage names of ``stage``."""
        return [e.src for e in self._in_edges[stage]]

    def successors(self, stage: str) -> list[str]:
        """Consumer stage names of ``stage``."""
        return [e.dst for e in self._out_edges[stage]]

    def stage(self, name: str) -> Stage:
        """The stage named ``name`` (KeyError if absent)."""
        return self.stages[name]

    def __iter__(self) -> Iterator[Stage]:
        for name in self._topo:
            yield self.stages[name]

    def __len__(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def edge_mode(self, edge: Edge) -> EdgeMode:
        """Resolved shuffle mode: explicit override or producer-derived."""
        if edge.mode is not None:
            return edge.mode
        return EdgeMode.BARRIER if self.stages[edge.src].is_blocking else EdgeMode.PIPELINE

    def edge_bytes(self, edge: Edge) -> float:
        """Total bytes crossing ``edge``."""
        if edge.bytes_override is not None:
            return edge.bytes_override
        producer = self.stages[edge.src]
        fanout = len(self._out_edges[edge.src])
        return producer.total_output_bytes / fanout if fanout else 0.0

    def edge_size(self, edge: Edge) -> int:
        """Shuffle size: the number of task-to-task edges, i.e. M x N
        (Section III-B: "the number of edges between all source stage tasks
        and the sink ones")."""
        return self.stages[edge.src].task_count * self.stages[edge.dst].task_count

    def total_tasks(self) -> int:
        """Total task count across all stages."""
        return sum(stage.task_count for stage in self.stages.values())

    def critical_path_stages(self) -> list[str]:
        """Longest stage chain by count; a cheap critical-path proxy."""
        depth: dict[str, int] = {}
        parent: dict[str, Optional[str]] = {}
        for name in self._topo:
            preds = self.predecessors(name)
            if not preds:
                depth[name], parent[name] = 1, None
            else:
                best = max(preds, key=lambda p: depth[p])
                depth[name] = depth[best] + 1
                parent[name] = best
        end = max(depth, key=lambda n: depth[n])
        path: list[str] = []
        cursor: Optional[str] = end
        while cursor is not None:
            path.append(cursor)
            cursor = parent[cursor]
        return list(reversed(path))

    def validate(self) -> None:
        """Full structural validation (construction already checks most)."""
        for stage in self.stages.values():
            has_out = bool(self._out_edges[stage.name])
            if stage.output_bytes_per_task > 0 and not has_out:
                # Sinks may still "output" (adhoc sink to the client); allow it.
                pass
        if not self.stages:
            raise DAGValidationError("job has no stages")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobDAG {self.job_id}: {len(self.stages)} stages, {len(self.edges)} edges>"


@dataclass
class Job:
    """A submission-ready job: the DAG plus scheduling metadata."""

    dag: JobDAG
    #: Arrival time offset used by trace replays (seconds).
    submit_time: float = 0.0
    priority: int = 0
    #: Free-form tags (e.g. shuffle-size class for Fig. 12 grouping).
    tags: dict[str, object] = field(default_factory=dict)
    #: Owning tenant in multi-tenant service runs ("" = untenanted).
    tenant: str = ""
    #: Absolute completion deadline in simulated seconds (None = no SLO).
    deadline: Optional[float] = None

    @property
    def job_id(self) -> str:
        """The job identifier (delegates to the DAG)."""
        return self.dag.job_id
