"""Execution policy bundles.

A policy bundle selects: how jobs are partitioned into schedulable units,
when units are submitted, which shuffle scheme edges use, how executors are
launched, and how failures are recovered.  Swift and every baseline system
are expressed as bundles over the same simulator, which is what makes the
comparisons and ablations apples-to-apples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .partition import Partitioner, SwiftPartitioner
from .shuffle import ShuffleScheme


class SubmissionOrder(enum.Enum):
    """When a schedulable unit may request executors."""
    #: Submit a unit only when *all* its input data are ready
    #: (Section III-A2's conservative order, Swift's default).
    CONSERVATIVE = "conservative"
    #: Submit every unit at job start; tasks wait for inputs while holding
    #: executors.  Models gang scheduling's waste and the ablation of the
    #: M7/M8 note in Section III-A2.
    EAGER = "eager"


class LaunchModel(enum.Enum):
    """How executors come to life: pre-launched pool or cold start."""
    #: Executors pre-launched when the service starts (Swift, JetScope).
    PRELAUNCHED = "prelaunched"
    #: Executors cold-started per job (Spark: package download + JVM start).
    COLDSTART = "coldstart"


class FailureRecovery(enum.Enum):
    """Failure-handling strategy: fine-grained re-run or whole-job restart."""
    #: Swift's graphlet-based fine-grained recovery (Section IV-B).
    FINE_GRAINED = "fine_grained"
    #: Restart the whole job on any failure.
    JOB_RESTART = "job_restart"


@dataclass
class ExecutionPolicy:
    """One system configuration runnable by the simulator."""

    name: str = "swift"
    partitioner: Partitioner = field(default_factory=SwiftPartitioner)
    submission: SubmissionOrder = SubmissionOrder.CONSERVATIVE
    shuffle: ShuffleScheme = ShuffleScheme.ADAPTIVE
    #: Shuffle scheme used on cross-unit (barrier) edges; defaults to the
    #: same policy.  Disk-based baselines materialise cross-unit data.
    cross_unit_shuffle: ShuffleScheme | None = None
    launch: LaunchModel = LaunchModel.PRELAUNCHED
    recovery: FailureRecovery = FailureRecovery.FINE_GRAINED
    #: Whether pipeline edges inside a unit actually stream (Swift) or the
    #: consumer waits for the producer to finish (disk-based systems).
    pipelined_execution: bool = True
    #: All-or-nothing resource grants per unit (gang scheduling).  Spark's
    #: per-stage units instead run in waves as slots free up.
    gang: bool = True

    def effective_cross_unit_shuffle(self) -> ShuffleScheme:
        """The shuffle scheme applied to cross-unit (barrier) edges."""
        return self.cross_unit_shuffle or self.shuffle


def swift_policy(**overrides: object) -> ExecutionPolicy:
    """Swift's production configuration."""
    policy = ExecutionPolicy(name="swift")
    for key, value in overrides.items():
        if not hasattr(policy, key):
            raise AttributeError(f"ExecutionPolicy has no field {key!r}")
        setattr(policy, key, value)
    return policy
