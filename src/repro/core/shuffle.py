"""Adaptive memory-based in-network shuffling (Section III-B).

Three in-network schemes plus the disk-based scheme used by the Spark and
Bubble Execution baselines:

============  =========================  ==================  ===============
scheme        TCP connections            extra memory copies medium
============  =========================  ==================  ===============
DIRECT        M x N                      0                   network
LOCAL         M + N + Y(Y-1)/2           2                   Cache Workers
REMOTE        M + N x Y                  1                   Cache Workers
DISK          M x N (fetch phase)        0                   local disks
============  =========================  ==================  ===============

Adaptive selection keys on the *shuffle size* (edge count M x N) with the
production thresholds 10,000 and 90,000: Direct below the first threshold,
Remote between, Local above.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..sim.config import ShuffleConfig, SimConfig
from ..sim.disk import DiskModel
from ..sim.network import NetworkModel


class ShuffleScheme(enum.Enum):
    """The shuffle schemes of Section III-B plus the baselines' disk path."""
    DIRECT = "direct"
    LOCAL = "local"
    REMOTE = "remote"
    DISK = "disk"
    #: Resolved at runtime per edge from the shuffle size.
    ADAPTIVE = "adaptive"


def select_scheme(edge_size: int, config: ShuffleConfig) -> ShuffleScheme:
    """Adaptive runtime selection by shuffle size (Section III-B)."""
    if edge_size < 0:
        raise ValueError("edge_size must be non-negative")
    if edge_size <= config.direct_threshold:
        return ShuffleScheme.DIRECT
    if edge_size <= config.local_threshold:
        return ShuffleScheme.REMOTE
    return ShuffleScheme.LOCAL


def resolve_scheme(
    requested: ShuffleScheme, edge_size: int, config: ShuffleConfig
) -> ShuffleScheme:
    """Resolve ADAPTIVE to a concrete scheme; pass others through."""
    if requested == ShuffleScheme.ADAPTIVE:
        return select_scheme(edge_size, config)
    return requested


@dataclass(frozen=True)
class ModeDecision:
    """One mode-controller resolution for a shuffle edge.

    ``static_scheme`` is what the threshold rule alone would pick;
    ``scheme`` is the controller's choice.  ``reason`` names the observed
    pressure that justified a switch (empty when no switch happened).
    """

    scheme: ShuffleScheme
    static_scheme: ShuffleScheme
    reason: str = ""

    @property
    def switched(self) -> bool:
        """True when the controller deviated from the static rule."""
        return self.scheme is not self.static_scheme


class ShuffleModeController:
    """Mid-job shuffle-mode switching (the FuxiShuffle direction).

    Schemes are resolved lazily, per edge, when the consumer stage is
    prepared — so a controller consulted at that point re-resolves every
    not-yet-started stage from *observed* state rather than static
    estimates:

    * **Cache Worker memory pressure** — when the workers backing a
      cache-mediated edge are nearly full, a borderline edge (shuffle size
      within ``switch_margin`` above ``direct_threshold``) is demoted to
      Direct Shuffle, keeping its bytes out of memory that would spill.
    * **Connection-setup cost** — when the observed handshake latency is
      congested (>= ``setup_promote_latency``), a borderline Direct edge is
      promoted to Remote Shuffle, trading M x N handshakes for M + N x Y.

    Scheme choice affects only timing, never which tasks run or what they
    produce, so switching is result-preserving by construction; the
    differential tests assert it anyway.
    """

    def __init__(self, config: ShuffleConfig) -> None:
        self.config = config
        #: Total switches decided, for metrics/obs accounting.
        self.switches = 0

    def resolve(
        self,
        requested: ShuffleScheme,
        edge_size: int,
        cache_utilization: float = 0.0,
        setup_latency: float = 0.0,
    ) -> ModeDecision:
        """Resolve one edge from the static rule plus live observations.

        ``cache_utilization`` is the used fraction of the Cache Workers
        that would hold this edge; ``setup_latency`` the currently observed
        per-connection setup time.  Explicitly requested (non-ADAPTIVE)
        schemes are never overridden.
        """
        static = resolve_scheme(requested, edge_size, self.config)
        if not self.config.mode_switching or requested is not ShuffleScheme.ADAPTIVE:
            return ModeDecision(static, static)
        margin = self.config.switch_margin
        if (
            static in (ShuffleScheme.LOCAL, ShuffleScheme.REMOTE)
            and cache_utilization >= self.config.pressure_demote_utilization
            and edge_size <= self.config.direct_threshold * (1.0 + margin)
        ):
            self.switches += 1
            return ModeDecision(ShuffleScheme.DIRECT, static, "cache-pressure")
        if (
            static is ShuffleScheme.DIRECT
            and setup_latency >= self.config.setup_promote_latency
            and edge_size >= self.config.direct_threshold * (1.0 - margin)
        ):
            self.switches += 1
            return ModeDecision(ShuffleScheme.REMOTE, static, "setup-cost")
        return ModeDecision(static, static)


@dataclass(frozen=True)
class MergedTransfer:
    """Several tiny in-edges collapsed into one push-based transfer.

    Small-partition storms — a consumer stage fed by many edges whose
    partitions are each a few megabytes — pay one connection-setup and
    read phase per edge under per-edge shuffling.  Push-based merging
    sends all member partitions through a single merged transfer: the
    costs (and connections) of one edge carrying the summed bytes of all
    members, read once by each consumer task.
    """

    #: Edge keys folded into this transfer, in plan order.
    edges: tuple[str, ...]
    total_bytes: float
    #: Combined producer task count of all member edges.
    m: int
    #: Consumer task count (all members feed the same stage).
    n: int

    @property
    def size(self) -> int:
        """Merged shuffle size (drives scheme selection)."""
        return self.m * self.n


def plan_partition_merge(
    candidates: list[tuple[str, float, int]],
    n_consumers: int,
    config: ShuffleConfig,
) -> tuple[MergedTransfer | None, list[str]]:
    """Plan push-based merging for one consumer stage's cross-unit edges.

    ``candidates`` lists the stage's cache-eligible in-edges as
    ``(edge_key, total_bytes, producer_count)``.  Edges at or below
    ``merge_max_bytes`` are merge-eligible; when at least
    ``merge_min_edges`` of them exist they collapse into one
    :class:`MergedTransfer`.  Returns the merged transfer (or ``None``)
    plus the edge keys left to per-edge shuffling.
    """
    if n_consumers < 1:
        raise ValueError("n_consumers must be >= 1")
    tiny = [c for c in candidates if c[1] <= config.merge_max_bytes]
    if len(tiny) < config.merge_min_edges:
        return None, [key for key, _, _ in candidates]
    tiny_keys = {key for key, _, _ in tiny}
    merged = MergedTransfer(
        edges=tuple(key for key, _, _ in tiny),
        total_bytes=sum(b for _, b, _ in tiny),
        m=sum(m for _, _, m in tiny),
        n=n_consumers,
    )
    rest = [key for key, _, _ in candidates if key not in tiny_keys]
    return merged, rest


def connection_count(scheme: ShuffleScheme, m: int, n: int, y: int) -> int:
    """Worst-case TCP connection count for a shuffle of M producers and N
    consumers spread over Y machines (Section III-B formulas)."""
    if min(m, n, y) < 1:
        raise ValueError("m, n, y must all be >= 1")
    if scheme == ShuffleScheme.DIRECT:
        return m * n
    if scheme == ShuffleScheme.LOCAL:
        return m + n + y * (y - 1) // 2
    if scheme == ShuffleScheme.REMOTE:
        return m + n * y
    if scheme == ShuffleScheme.DISK:
        # Reducers fetch from every mapper's machine-local files.
        return m * n
    raise ValueError(f"cannot count connections for {scheme}")


def memory_copies(scheme: ShuffleScheme) -> int:
    """Extra memory copies relative to Direct Shuffle (Section III-B)."""
    return {
        ShuffleScheme.DIRECT: 0,
        ShuffleScheme.LOCAL: 2,
        ShuffleScheme.REMOTE: 1,
        ShuffleScheme.DISK: 0,
    }[scheme]


@dataclass(frozen=True)
class ShuffleCost:
    """Per-task costs of one shuffle edge under one scheme."""

    scheme: ShuffleScheme
    #: Seconds each producer task spends in its shuffle-write phase.
    write_per_task: float
    #: Seconds each consumer task spends in its shuffle-read phase.
    read_per_task: float
    #: Total TCP connections the shuffle holds open while active.
    connections: int
    #: Modelled retransmission rate during the transfer.
    retx_rate: float


class ShuffleCostModel:
    """Computes per-task shuffle phase durations for every scheme.

    The model charges:

    * **write** — producer-side work: memory copies into the Cache Worker
      (LOCAL/REMOTE), partition-file writes (DISK), or connection setup to
      all successors plus the send itself (DIRECT);
    * **read** — consumer-side work: connection setup to its sources plus
      the network transfer at the bandwidth the contended NIC yields, or a
      local-memory read after Cache Worker push (LOCAL).
    """

    def __init__(self, config: SimConfig, network: NetworkModel, disk: DiskModel) -> None:
        self.config = config
        self.network = network
        self.disk = disk

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _per_machine(count: int, machines: int) -> int:
        return max(1, math.ceil(count / max(1, machines)))

    def edge_cost(
        self,
        scheme: ShuffleScheme,
        total_bytes: float,
        m: int,
        n: int,
        y: int,
        concurrent_connections: int | None = None,
        barrier: bool = True,
    ) -> ShuffleCost:
        """Cost of moving ``total_bytes`` from M producers to N consumers
        over Y machines under ``scheme``.

        ``concurrent_connections`` is the cluster-wide open-connection count
        *including* this shuffle's own connections; when ``None`` the
        network model's current count plus this shuffle's is used, so every
        scheme sees the same global congestion.

        ``barrier`` selects Direct Shuffle's mechanics: on a pipeline edge
        producers push to live consumers (cost on the write side); on a
        barrier edge the consumers do not exist yet when producers finish,
        so producers hold their output and the re-launched consumers pull it
        (cost on the read side).
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if min(m, n, y) < 1:
            raise ValueError("m, n, y must all be >= 1")
        conns = connection_count(scheme, m, n, y)
        if concurrent_connections is None:
            concurrent_connections = self.network.open_connections + conns

        out_per_producer = total_bytes / m
        in_per_consumer = total_bytes / n
        producers_per_machine = self._per_machine(m, y)
        consumers_per_machine = self._per_machine(n, y)

        copy_time_write = self.network.memory_copy_time(out_per_producer)
        copy_time_read = self.network.memory_copy_time(in_per_consumer)
        retx = self.network.retransmission_rate(concurrent_connections)

        if scheme == ShuffleScheme.DIRECT:
            # M x N task-to-task connections; under incast both the
            # handshakes and the goodput degrade ("for a task with hundreds
            # of successors, it usually takes dozens of seconds to build all
            # the TCP connections", Section V-E).
            if barrier:
                # Consumers pull from every producer once they launch.
                setup = self.network.setup_time_for(m, concurrent_connections)
                recv_bw = self.network.effective_bandwidth(
                    consumers_per_machine, concurrent_connections
                )
                # Section III-B: Direct has 0 extra memory copies — the
                # producer already holds its output in executor memory, so
                # the barrier branch must not charge a copy the pipeline
                # branch (and ``memory_copies(DIRECT)``) say does not exist.
                write = 0.0
                read = setup + in_per_consumer / recv_bw + self.network.config.rtt
            else:
                # Producers push to gang-scheduled live consumers.
                setup = self.network.setup_time_for(n, concurrent_connections)
                send_bw = self.network.effective_bandwidth(
                    producers_per_machine, concurrent_connections
                )
                write = setup + out_per_producer / send_bw
                recv_bw = self.network.effective_bandwidth(
                    consumers_per_machine, concurrent_connections
                )
                read = in_per_consumer / recv_bw + self.network.config.rtt
            return ShuffleCost(scheme, write, read, conns, retx)

        if scheme == ShuffleScheme.LOCAL:
            # Producer copies into the local Cache Worker (2 extra copies in
            # total); Cache Workers exchange aggregated data over few,
            # long-lived machine-to-machine connections, store-and-forward
            # through both Cache Workers, run a coordination round to
            # collect each partition and notify the readers; the consumer
            # reads from local memory.
            relay_bw = self.network.effective_bandwidth(
                consumers_per_machine, concurrent_connections
            )
            relay = in_per_consumer / relay_bw
            chunk = self.config.cache_worker.spill_chunk_bytes
            hop = (
                in_per_consumer / self.network.config.nic_bandwidth
                + 2 * chunk / self.network.config.nic_bandwidth
            )
            write = 2 * copy_time_write
            read = (
                self.config.cache_worker.notify_latency
                + hop
                + relay
                + copy_time_read
            )
            return ShuffleCost(scheme, write, read, conns, retx)

        if scheme == ShuffleScheme.REMOTE:
            # Producer copies into the local Cache Worker (1 extra copy);
            # consumers pull their fragments from the Y Cache Workers, one
            # request per Cache Worker, effectively sequential per reader —
            # this is what makes Remote degrade for very wide shuffles while
            # still beating Direct's M x N handshakes at medium sizes.
            write = copy_time_write
            per_pull = (
                self.network.connection_setup_time(concurrent_connections)
                * self.network.config.remote_pull_serialization
            )
            pull_bw = self.network.effective_bandwidth(
                consumers_per_machine, concurrent_connections
            )
            read = (
                y * per_pull
                + in_per_consumer / pull_bw
                + self.network.config.rtt
            )
            return ShuffleCost(scheme, write, read, conns, retx)

        if scheme == ShuffleScheme.DISK:
            # Producer sorts/writes one partition file per consumer; consumer
            # fetches its fragment from every producer's machine — M x N
            # fragments in total.  Per-fragment service time escalates with
            # the cluster-wide fragment/connection load (disk queues and
            # shuffle-service backlog), which is what makes wide disk
            # shuffles collapse superlinearly (Table I's 1500x1500 case).
            write = self.disk.write_time(
                out_per_producer, n_files=n, concurrent_tasks=producers_per_machine
            )
            disk_read = self.disk.read_time(
                in_per_consumer,
                n_files=0,
                concurrent_tasks=consumers_per_machine,
                random_access=True,
            )
            load = concurrent_connections / self.network.retx_saturation
            load_factor = 1.0 + 3.0 * load
            fragment_latency = m * self.disk.config.per_file_overhead * load_factor
            fetch_bw = self.network.effective_bandwidth(
                consumers_per_machine, concurrent_connections
            )
            setup = self.network.setup_time_for(
                min(m, y * 4), concurrent_connections
            )
            read = disk_read + fragment_latency + setup + in_per_consumer / fetch_bw
            return ShuffleCost(scheme, write, read, conns, retx)

        raise ValueError(f"no cost model for scheme {scheme}")
