"""Swift Admin: the event-driven controller model.

The Admin is modelled as a serialized resource: every controller operation
(plan generation, dispatch bookkeeping, status handling) occupies it for
``AdminConfig.event_processing_time`` seconds.  Dispatch batches therefore
fan out with a small per-task stagger, and at very large scale the
controller becomes the (mild) bottleneck — which is what bends the Fig. 16
scalability curve slightly below ideal.

The heartbeat machinery (per-machine heartbeat manager proxies, interval by
cluster scale) and the machine health monitor of Section IV-A live here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import AdminConfig
from .failure import MachineHealthMonitor


@dataclass
class AdminStats:
    """Counters reported by the controller."""

    events_processed: int = 0
    plans_dispatched: int = 0
    heartbeats_received: int = 0
    status_reports: int = 0
    machines_marked_read_only: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


class SwiftAdmin:
    """Controller-side cost and health model."""

    def __init__(self, config: AdminConfig, n_machines: int) -> None:
        config.validate()
        self.config = config
        self.n_machines = n_machines
        self.heartbeat_interval = config.heartbeat_interval(n_machines)
        self.health = MachineHealthMonitor(admin=config)
        self.stats = AdminStats()
        #: Time until which the serialized event-processing thread is busy.
        self._busy_until = 0.0
        #: (job_id, stage) plans already generated (the Plan Handler cache).
        self._plan_cache: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Serialized controller work
    # ------------------------------------------------------------------
    def admit_ops(self, now: float, n_ops: int) -> float:
        """Account for ``n_ops`` controller operations starting at ``now``.

        Returns the time at which the *first* of those operations completes;
        subsequent operations complete every ``event_processing_time``
        after it.  Callers stagger per-task dispatches accordingly.
        """
        if n_ops < 0:
            raise ValueError("n_ops must be non-negative")
        start = max(now, self._busy_until)
        self._busy_until = start + n_ops * self.config.event_processing_time
        self.stats.events_processed += n_ops
        return start + self.config.event_processing_time if n_ops else start

    def dispatch_times(self, now: float, n_tasks: int) -> list[float]:
        """Plan-arrival times for a gang of ``n_tasks`` dispatched at ``now``.

        Each plan costs one controller op (generate + send), then travels
        ``dispatch_latency`` to the executor.
        """
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        if n_tasks == 0:
            return []
        first = self.admit_ops(now, n_tasks)
        ept = self.config.event_processing_time
        latency = self.config.dispatch_latency
        self.stats.plans_dispatched += n_tasks
        return [first + i * ept + latency for i in range(n_tasks)]

    @property
    def backlog(self) -> float:
        """Seconds of queued controller work (for introspection/tests)."""
        return self._busy_until

    # ------------------------------------------------------------------
    # Plan cache (Section II-B: "All plans are cached in the Plan Handler
    # of Executor Manager").  Re-dispatching a cached plan — as failure
    # recovery does — skips the plan-generation controller op.
    # ------------------------------------------------------------------
    def plan_cached(self, job_id: str, stage: str) -> bool:
        """Record a plan lookup; True when the plan was already generated."""
        key = (job_id, stage)
        if key in self._plan_cache:
            self.stats.plan_cache_hits += 1
            return True
        self._plan_cache.add(key)
        self.stats.plan_cache_misses += 1
        return False

    def drop_job_plans(self, job_id: str) -> None:
        """Evict a finished or restarted job's cached plans."""
        self._plan_cache = {k for k in self._plan_cache if k[0] != job_id}

    # ------------------------------------------------------------------
    # Health handling
    # ------------------------------------------------------------------
    def record_status_report(self) -> None:
        """Count one executor status report arriving at the Admin."""
        self.stats.status_reports += 1

    def record_heartbeat(self) -> None:
        """Count one heartbeat-manager ping arriving at the Admin."""
        self.stats.heartbeats_received += 1

    def record_task_failure(self, machine_id: int, now: float) -> bool:
        """Feed the health monitor; returns True when the machine should be
        quarantined (marked read-only)."""
        flagged = self.health.record_failure(machine_id, now)
        if flagged:
            self.stats.machines_marked_read_only += 1
        return flagged

    def quarantine_machine(self, machine_id: int) -> bool:
        """Explicitly quarantine a machine (chaos / operator action).

        Returns True when this starts a new quarantine episode; the
        ``machines_marked_read_only`` counter increments exactly once per
        episode, however the episode began.
        """
        started = self.health.quarantine(machine_id)
        if started:
            self.stats.machines_marked_read_only += 1
        return started

    def record_machine_recovered(self, machine_id: int) -> bool:
        """End a quarantine episode: clear the read-only flag and failure
        history so a later quarantine counts as a fresh episode."""
        return self.health.recover(machine_id)
