"""Resource Scheduler: gang allocation with locality and machine load.

Section III-A2: "When assigning resources, both data locality and machine
load are considered. ... Machine load is considered to avoid scheduling
flock ... For tasks without locality preference, the most free machine is
chosen.  For each graphlet received, gang scheduling is used."

Requests are recorded as request items (ReqItem) in arrival order; the
scheduler scans the queue on every resource event and grants any request
that fits entirely (gang semantics: all-or-nothing per unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, nsmallest
from typing import Callable, Optional

from ..sim.cluster import Cluster, Executor, ExecutorState, Machine


@dataclass
class ReqItem:
    """One pending request: ``n_executors`` for one schedulable unit.

    ``gang=True`` is all-or-nothing (Swift graphlets, JetScope whole jobs);
    ``gang=False`` accepts partial grants and stays queued until satisfied
    (Spark-style wave execution).
    """

    request_id: int
    job_id: str
    unit_id: int
    n_executors: int
    #: Preferred machine ids for locality (scan stages); may be empty.
    locality: tuple[int, ...] = ()
    priority: int = 0
    enqueue_time: float = 0.0
    gang: bool = True
    remaining: int = 0
    granted: bool = False
    cancelled: bool = False

    def __post_init__(self) -> None:
        self.remaining = self.n_executors


@dataclass
class Grant:
    """A fulfilled request: the executors assigned to the unit."""

    request: ReqItem
    executors: list[Executor] = field(default_factory=list)


class ResourceScheduler:
    """Maintains the request queue and the free-resource pool view."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._queue: list[ReqItem] = []
        self._next_id = 0
        self.grants_made = 0
        #: Set by the runtime's no-failure fast path: every machine stays
        #: healthy, so executor assignment can update states and idle
        #: counters in bulk instead of per-executor ``assign`` calls.
        self.fast_ops = False
        #: Head-of-line gang size we last failed to satisfy; while the free
        #: pool stays below it (and the queue is unchanged) scheduling is a
        #: guaranteed no-op, so ``schedule`` returns immediately.
        self._stalled_need: Optional[int] = None

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def request(
        self,
        job_id: str,
        unit_id: int,
        n_executors: int,
        locality: tuple[int, ...] = (),
        priority: int = 0,
        now: float = 0.0,
        gang: bool = True,
    ) -> ReqItem:
        """Enqueue a request item; raises for impossible gang sizes."""
        if n_executors < 1:
            raise ValueError("a resource request needs at least one executor")
        if gang and n_executors > self.cluster.total_executors():
            raise ValueError(
                f"gang request for {n_executors} executors exceeds cluster "
                f"capacity {self.cluster.total_executors()}"
            )
        self._next_id += 1
        item = ReqItem(
            request_id=self._next_id,
            job_id=job_id,
            unit_id=unit_id,
            n_executors=n_executors,
            locality=locality,
            priority=priority,
            enqueue_time=now,
            gang=gang,
        )
        self._queue.append(item)
        self._stalled_need = None
        return item

    def cancel_job(self, job_id: str) -> None:
        """Drop all of one job's queued requests."""
        for item in self._queue:
            if item.job_id == job_id:
                item.cancelled = True
        self._stalled_need = None

    def pending(self) -> list[ReqItem]:
        """Requests still waiting for executors."""
        return [r for r in self._queue if not r.granted and not r.cancelled]

    # ------------------------------------------------------------------
    # Pool-pressure introspection (read-only; used by admission control)
    # ------------------------------------------------------------------
    def queued_demand(self) -> int:
        """Executor slots still needed by queued, ungranted requests."""
        return sum(r.remaining for r in self._queue if not r.granted and not r.cancelled)

    def pool_pressure(self, extra_demand: int = 0) -> float:
        """Executor demand over capacity, the NOT_ENOUGH_SLOTS signal.

        Busy slots plus queued gang demand (plus ``extra_demand``, e.g. a
        service gateway's own backlog), normalized by the cluster's total
        executor count. 1.0 means the pool is exactly saturated; admission
        policies reject or hold arrivals above a configured threshold.
        """
        total = self.cluster.total_executors()
        if total <= 0:
            return float("inf")
        busy = total - self.cluster.free_executor_count()
        return (busy + self.queued_demand() + extra_demand) / total

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def schedule(self) -> list[Grant]:
        """Grant every queued request that currently fits, in queue order.

        Gang semantics: a request is granted only if *all* its executors are
        available at once; otherwise it stays queued (this is what produces
        resource fragmentation for whole-job gangs, Section III-A).
        """
        grants: list[Grant] = []
        if not self._queue:
            return grants
        free = self.cluster.free_executor_count()
        if self._stalled_need is not None and free < self._stalled_need:
            return grants
        self._stalled_need = None
        queue = sorted(
            self.pending(), key=lambda r: (r.priority, r.enqueue_time, r.request_id)
        )
        for item in queue:
            if free == 0:
                self._stalled_need = 1
                break
            if item.gang:
                if item.remaining > free:
                    # Strict FIFO: an unsatisfiable gang at the head blocks
                    # the queue, idling the free executors behind it.  This
                    # head-of-line blocking is what makes whole-job gangs
                    # (JetScope) waste resources; graphlet-sized gangs are
                    # small enough that it rarely bites.
                    self._stalled_need = item.remaining
                    break
                take = item.remaining
            else:
                take = min(item.remaining, free)
            executors = self._pick_executors(item, take)
            if executors is None:
                continue
            if self.fast_ops:
                # Bulk state update; identical end state to per-executor
                # assign() when no machine is quarantined (fast-path
                # invariant: no failures, every machine accepts tasks).
                assigned = ExecutorState.ASSIGNED
                for executor in executors:
                    executor.state = assigned
                    executor.current_task = item
                    machine = executor.machine
                    machine.idle_count -= 1
                    stack = machine._free_stack
                    # Picks consume each stack top-first, so this is almost
                    # always a pop from the end.
                    if stack[-1] is executor:
                        stack.pop()
                    else:
                        stack.remove(executor)
                self.cluster._free_count -= len(executors)
            else:
                for executor in executors:
                    executor.assign(item)
            item.remaining -= len(executors)
            if item.remaining == 0:
                item.granted = True
            free -= len(executors)
            self.grants_made += 1
            grants.append(Grant(request=item, executors=executors))
        self._queue = [r for r in self._queue if not r.granted and not r.cancelled]
        return grants

    def _pick_executors(self, item: ReqItem, needed: int) -> Optional[list[Executor]]:
        """Choose ``needed`` executors: locality first, then least-loaded."""
        chosen: list[Executor] = []

        # Locality pass: take free executors on preferred machines first.
        # Executors come off the top of each machine's free stack so the
        # later state update pops instead of scanning.
        if item.locality:
            preferred = {mid for mid in item.locality}
            for machine in self.cluster.schedulable_machines():
                if machine.machine_id not in preferred:
                    continue
                for executor in reversed(machine._free_stack):
                    chosen.append(executor)
                    if len(chosen) == needed:
                        return chosen

        # Load pass: spread the remainder across the least-loaded machines,
        # round-robin so no single machine is flocked.  A heap over the
        # candidate machines yields them in (load, id) order one at a time,
        # so a small grant pays O(M + grant log M) instead of the full
        # O(M log M) sort.
        cand = [
            (machine.load(), machine.machine_id, machine)
            for machine in self.cluster.schedulable_machines()
            if machine.idle_count > 0
        ]
        n_idle_machines = len(cand)
        heapify(cand)
        chosen_ids = {id(e) for e in chosen}
        still_needed = needed - len(chosen)
        # Spread target: same bound the eager sort used — enough machines
        # for one-executor-per-machine when the cluster allows it.
        target_pools = min(still_needed, n_idle_machines)
        pools: list[list[Executor]] = []
        available = 0
        while cand and (available < still_needed or len(pools) < target_pools):
            machine = heappop(cand)[2]
            if chosen_ids:
                pool = [
                    e for e in machine._free_stack if id(e) not in chosen_ids
                ]
            else:
                pool = list(machine._free_stack)
            if pool:
                pools.append(pool)
                available += len(pool)
        cursor = 0
        active = [pool for pool in pools if pool]
        while len(chosen) < needed and active:
            pool = active[cursor % len(active)]
            chosen.append(pool.pop())
            if not pool:
                active.remove(pool)
            else:
                cursor += 1
        if len(chosen) < needed:
            return None
        return chosen


def pick_replica_machines(
    primaries: list[Machine],
    candidates: list[Machine],
    replication_factor: int,
) -> list[list[Machine]]:
    """Load-aware replica placement for Cache-Worker shuffle entries.

    Each primary machine becomes a replica *group* of up to
    ``replication_factor`` distinct machines holding the same shuffle
    entry.  Replicas are drawn from ``candidates`` preferring machines
    outside the primary set, then by lowest Cache Worker memory use
    (machine id as the deterministic tiebreak), with a round-robin
    assignment count so one idle machine does not absorb every group's
    replica.  Groups degrade gracefully: with fewer than two candidate
    machines the group is just its primary (v1 behaviour).
    """
    groups = [[p] for p in primaries]
    if replication_factor <= 1:
        return groups
    pool = [m for m in candidates if m.cache_worker is not None]
    if len(pool) < 2:
        return groups
    primary_ids = {p.machine_id for p in primaries}
    assigned = {m.machine_id: 0 for m in pool}
    for group in groups:
        in_group = {group[0].machine_id}
        while len(group) < replication_factor:
            best = min(
                (m for m in pool if m.machine_id not in in_group),
                key=lambda m: (
                    assigned[m.machine_id],
                    m.machine_id in primary_ids,
                    m.cache_worker.memory_used,  # type: ignore[union-attr]
                    m.machine_id,
                ),
                default=None,
            )
            if best is None:
                break
            group.append(best)
            in_group.add(best.machine_id)
            assigned[best.machine_id] += 1
    return groups


def pick_locality_machines(
    cluster: Cluster, n_tasks: int, rng_choice: Callable[[list[Machine]], Machine] | None = None
) -> tuple[int, ...]:
    """Simple locality preference: the least-loaded machines that could host
    the scan tasks (data placement is uniform in the simulator, so locality
    reduces to load spreading)."""
    machines = cluster.schedulable_machines()
    take = max(1, min(len(machines), -(-n_tasks // max(1, cluster.config.executors_per_machine))))
    best = nsmallest(take, machines, key=lambda m: (m.load(), m.machine_id))
    return tuple(m.machine_id for m in best)
