"""Physical operators and the barrier/pipeline classification.

Section III-A1: an edge is a *barrier* edge when the data crossing it is
produced by a global SORT operation (``StreamedAggregate``, ``MergeJoin``,
``Window``, ``SortBy``, ``MergeSort``) — such an operator cannot emit its
first output row before consuming all of its input, so the producing stage's
output cannot be streamlined into the successor stage.  All other edges are
*pipeline* edges.

In Fig. 4, stages J4, J6 and J10 contain ``MergeSort``; consequently the
edges J4->J6, J6->J10 and J10->R11 are barriers while every edge out of the
non-sorting stages M1..M8 is a pipeline edge.  The classification therefore
keys on the *producer* stage's operators, which is what
:func:`stage_is_blocking` implements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperatorKind(enum.Enum):
    """Physical operator vocabulary (the paper's Fig. 4(b) plus SQL basics)."""

    TABLE_SCAN = "TableScan"
    FILTER = "Filter"
    PROJECT = "Project"
    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    HASH_AGGREGATE = "HashAggregate"
    STREAMED_AGGREGATE = "StreamedAggregate"
    WINDOW = "Window"
    SORT_BY = "SortBy"
    MERGE_SORT = "MergeSort"
    LIMIT = "Limit"
    SHUFFLE_READ = "ShuffleRead"
    SHUFFLE_WRITE = "ShuffleWrite"
    STREAMLINE_WRITE = "StreamlineWrite"
    ADHOC_SINK = "AdhocSink"
    UNION = "Union"


#: Operators that perform a global sort (or are otherwise fully blocking):
#: their stage cannot stream output, so outgoing edges become barriers.
BLOCKING_OPERATORS = frozenset(
    {
        OperatorKind.STREAMED_AGGREGATE,
        OperatorKind.MERGE_JOIN,
        OperatorKind.WINDOW,
        OperatorKind.SORT_BY,
        OperatorKind.MERGE_SORT,
    }
)


@dataclass(frozen=True)
class Operator:
    """One physical operator instance inside a stage."""

    kind: OperatorKind
    #: Optional human-readable detail ("on l_suppkey", "sum(amount)").
    detail: str = ""

    @property
    def is_blocking(self) -> bool:
        """True for global-sort operators that cannot stream output."""
        return self.kind in BLOCKING_OPERATORS

    def __str__(self) -> str:
        return f"{self.kind.value}({self.detail})" if self.detail else self.kind.value


def ops(*kinds: OperatorKind) -> tuple[Operator, ...]:
    """Convenience constructor: ``ops(TABLE_SCAN, FILTER)``."""
    return tuple(Operator(kind) for kind in kinds)


def stage_is_blocking(operators: tuple[Operator, ...]) -> bool:
    """True when a stage contains any global-sort (blocking) operator."""
    return any(op.is_blocking for op in operators)
