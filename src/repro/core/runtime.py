"""The execution runtime: jobs in, per-task timings out.

This module ties the substrate (event engine, cluster, network/disk models)
to the paper's mechanisms (graphlet partitioning, gang scheduling, adaptive
shuffle, Cache Workers, fine-grained recovery).  The same runtime executes
Swift and every baseline; an :class:`~repro.core.policies.ExecutionPolicy`
selects the behaviour.

Execution model
---------------
Tasks move through the four phases of Section V-C1 — launch, shuffle read,
record processing, shuffle write.  Within a gang-scheduled unit, stages
connected by pipeline edges stream: a consumer's completion is bounded below
by its producers' completion plus a flush latency, and its ``data_arrive``
(for the IdleRatio metric) is its producers' first output.  Barrier inputs —
and *all* cross-unit inputs — become available only when the producer stage
completes.  Task finish times are computed analytically per stage and
realised as simulator events that self-reschedule if recovery pushes a
finish time back, which keeps failure handling simple and exact.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..audit.ledger import ResourceLedger
from ..obs.records import Category
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.cluster import Cluster, Executor, ExecutorState
from ..sim.config import SimConfig
from ..sim.engine import LegacySimulator, Simulator
from ..sim.failures import FailureKind, FailurePlan, FailureSpec
from .admin import SwiftAdmin
from .cache_worker import CacheWorker
from .dag import Edge, EdgeMode, Job, JobDAG
from .events import EventKind, EventLog
from .failure import detection_delay, plan_recovery
from .graphlet import GraphletGraph
from .metrics import JobMetrics, TaskTiming
from .policies import ExecutionPolicy, FailureRecovery, LaunchModel, SubmissionOrder
from .scheduler import (
    Grant,
    ReqItem,
    ResourceScheduler,
    pick_locality_machines,
    pick_replica_machines,
)
from .shadow import ShadowController
from .shuffle import (
    ModeDecision,
    ShuffleCostModel,
    ShuffleModeController,
    ShuffleScheme,
    plan_partition_merge,
    resolve_scheme,
)

_EPS = 1e-9


class TaskState(enum.Enum):
    """Lifecycle of one task instance."""
    PENDING = "pending"
    DISPATCHED = "dispatched"
    FINISHED = "finished"
    DEAD = "dead"


class UnitState(enum.Enum):
    """Lifecycle of one schedulable unit (graphlet)."""
    PENDING = "pending"
    REQUESTED = "requested"
    GRANTED = "granted"
    DONE = "done"


@dataclass(slots=True)
class TaskInstance:
    """One logical task; attempts mutate it in place (see module docs)."""

    stage_run: "StageRun"
    index: int
    attempt: int = 0
    state: TaskState = TaskState.PENDING
    executor: Optional[Executor] = None
    plan_arrive: float = math.inf
    data_arrive: float = math.inf
    start: float = math.inf
    finish_time: float = math.inf
    launch: float = 0.0
    read: float = 0.0
    proc: float = 0.0
    write: float = 0.0
    event_scheduled: bool = False


class StageRun:
    """Execution state of one stage of one job attempt."""

    def __init__(self, job_run: "JobRun", stage_name: str, unit_id: int) -> None:
        self.job_run = job_run
        self.stage = job_run.dag.stage(stage_name)
        self.unit_id = unit_id
        self.instances = [
            TaskInstance(stage_run=self, index=i) for i in range(self.stage.task_count)
        ]
        self.prepared = False
        self.computed = False
        self.completed = False
        self.n_dispatched = 0
        self.n_computed = 0
        self.n_finalized = 0
        # Stage-level timing constants (filled by _prepare_stage).
        self.barrier_avail = 0.0
        self.pipeline_floor = 0.0
        self.pipeline_first_input = 0.0
        self.scan_read = 0.0
        self.read_cost = 0.0
        self.write_cost = 0.0
        self.has_inputs = False
        self.registered_connections = 0
        # Estimates maintained as instances compute/finalize.
        self.finish_estimate = 0.0
        self.first_output = math.inf
        self.earliest_read_done = math.inf
        #: Time of the latest drain event scheduled for this stage (fast path).
        self.drain_scheduled_at = -math.inf

    @property
    def name(self) -> str:
        """The stage name."""
        return self.stage.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StageRun {self.job_run.job.job_id}/{self.name} "
            f"{self.n_finalized}/{len(self.instances)}>"
        )


class UnitRun:
    """Execution state of one schedulable unit (graphlet)."""

    def __init__(self, job_run: "JobRun", graphlet_id: int, stage_names: list[str]) -> None:
        self.job_run = job_run
        self.graphlet_id = graphlet_id
        # Keep unit stages in DAG topological order for deterministic compute.
        topo_index = {name: i for i, name in enumerate(job_run.dag.topo_order())}
        self.stage_names = sorted(stage_names, key=lambda n: topo_index[n])
        self.state = UnitState.PENDING
        self.request: Optional[ReqItem] = None

    def stage_runs(self) -> list[StageRun]:
        """This unit's stage runs, in topological order."""
        return [self.job_run.stage_runs[name] for name in self.stage_names]

    def task_count(self) -> int:
        """Executors the unit's gang needs."""
        return sum(sr.stage.task_count for sr in self.stage_runs())

    def all_completed(self) -> bool:
        """True when every stage of the unit has completed."""
        return all(sr.completed for sr in self.stage_runs())


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_id: str
    policy_name: str
    metrics: JobMetrics
    completed: bool = True
    failed: bool = False
    #: Human-readable cause when ``failed`` (retry budget, app error, ...).
    reason: str = ""

    @property
    def latency(self) -> float:
        """End-to-end latency from submission to completion."""
        return self.metrics.latency


class JobRun:
    """All runtime state for one attempt of one job."""

    def __init__(
        self,
        job: Job,
        graphlets: GraphletGraph,
        metrics: JobMetrics,
        attempt: int = 0,
    ) -> None:
        self.job = job
        self.dag: JobDAG = job.dag
        self.graphlets = graphlets
        self.metrics = metrics
        self.attempt = attempt
        self.aborted = False
        self.failed = False
        self.done = False
        self.stage_runs: dict[str, StageRun] = {}
        self.units: dict[int, UnitRun] = {}
        for graphlet in graphlets.graphlets:
            unit = UnitRun(self, graphlet.graphlet_id, list(graphlet.stage_names))
            self.units[graphlet.graphlet_id] = unit
            for name in graphlet.stage_names:
                self.stage_runs[name] = StageRun(self, name, graphlet.graphlet_id)

    def unit_of_stage(self, stage_name: str) -> UnitRun:
        """The unit run containing ``stage_name``."""
        return self.units[self.stage_runs[stage_name].unit_id]


class SchedulingImpossibleError(RuntimeError):
    """A gang request can never be satisfied on this cluster."""


class RuntimeDrainedError(RuntimeError):
    """A job was submitted to a runtime whose ``run()`` already drained.

    Once ``run()`` returns with an empty event queue the kernel will never
    execute another event, so a late ``submit`` would silently do nothing.
    Build a fresh :class:`SwiftRuntime` (or submit everything before
    running) instead.
    """


class SwiftRuntime:
    """Event-driven executor of jobs under a policy on a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        policy: ExecutionPolicy,
        config: Optional[SimConfig] = None,
        failure_plan: Optional[FailurePlan] = None,
        reference_duration: "float | dict[str, float]" = 100.0,
        shadow: Optional[ShadowController] = None,
        fast_path: bool = True,
        tracer: Optional[Tracer] = None,
        audit: bool = False,
        audit_strict: bool = True,
        ledger: Optional[ResourceLedger] = None,
        kernel: str = "array",
    ) -> None:
        if kernel not in ("array", "legacy"):
            raise ValueError(f"kernel must be 'array' or 'legacy', got {kernel!r}")
        self.cluster = cluster
        self.policy = policy
        #: Structured tracing hook (repro.obs); the null tracer keeps every
        #: emission site on a single pre-hoisted boolean check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Admin failover windows (Section II-B's shadow controller).
        self.shadow = shadow or ShadowController()
        self.config = config or cluster.config
        #: ``kernel="legacy"`` swaps in the object-heap oracle kernel; the
        #: scale bench uses it as the speedup baseline.
        sim_cls = LegacySimulator if kernel == "legacy" else Simulator
        self.sim = sim_cls(seed=self.config.seed, tracer=self.tracer)
        self.admin = SwiftAdmin(self.config.admin, cluster.n_machines)
        self.scheduler = ResourceScheduler(cluster)
        self.shuffle_model = ShuffleCostModel(self.config, cluster.network, cluster.disk)
        #: Per-edge adaptive mode switching (shuffle v2): observes realized
        #: cache pressure and connection-setup cost and re-resolves the
        #: scheme for stages that have not started yet.  Decisions are
        #: memoized per (job, edge) so the producer-side store and the
        #: consumer-side cost computation always agree.
        self.mode_controller = ShuffleModeController(self.config.shuffle)
        self._edge_mode_decisions: dict[tuple[str, str], ModeDecision] = {}
        #: Structured record of every shuffle-loss recovery action —
        #: ``{"job_id", "edge_key", "machine_id", "survivors", "action"}``
        #: with action ``"failover"`` (replica served the share, no rerun)
        #: or ``"rerun"`` (share unrecoverable, producer re-executed).  The
        #: ``bounded-shuffle-recovery`` chaos invariant audits this log.
        self.shuffle_recovery_log: list[dict] = []
        self.failure_plan = failure_plan or FailurePlan()
        #: Non-failure job duration used to resolve ``at_fraction`` failures;
        #: either one global value or a per-job mapping (as Fig. 15 needs,
        #: where failures strike at a fraction of each job's own runtime).
        self.reference_duration = reference_duration
        self.job_runs: dict[str, JobRun] = {}
        self.results: list[JobResult] = []
        #: Audit trail of controller-level events (bounded for long replays).
        self.events = EventLog(capacity=200_000)
        #: Extra data-availability delay per (job_id, edge key) caused by
        #: Cache Worker LRU spills on the producer side.
        self._edge_extra_delay: dict[tuple[str, str], float] = {}
        #: Replica groups of machines whose Cache Workers hold data for a
        #: (job_id, edge key).  Each group holds one producer machine's share
        #: redundantly: ``groups[i][0]`` is the primary, later members are
        #: replicas (``ShuffleConfig.replication_factor``).  A share survives
        #: a Cache Worker loss iff its group keeps at least one live holder.
        self._edge_cw_machines: dict[tuple[str, str], list[list[int]]] = {}
        #: All machines with Cache Worker state per job (for fast release).
        self._job_cw_machines: dict[str, set[int]] = {}
        #: (start, end) executor-busy intervals for utilization series.
        self.busy_intervals: list[tuple[float, float]] = []
        self._request_units: dict[int, UnitRun] = {}
        #: Event-kernel fast path: when no failure is planned, task finish
        #: times are immutable once computed, so per-task finish events are
        #: replaced by a runtime-local "finish ledger" that is replayed in
        #: exact event order (clock rewound per entry) whenever state must be
        #: observed — one drain event per computed stage batch instead of one
        #: event per task.  Recovery needs per-task events, so any failure
        #: plan falls back to the legacy path.
        self._fast_path = bool(fast_path) and len(self.failure_plan) == 0
        self.scheduler.fast_ops = self._fast_path
        self._finish_ledger: list[tuple[float, int, TaskInstance]] = []
        self._ledger_seq = 0
        self._flushing = False
        self._outer_now: Optional[float] = None
        #: Set once ``run()`` returns with the event queue empty; late
        #: submissions then raise :class:`RuntimeDrainedError` instead of
        #: queueing events that would never execute.
        self._drained = False
        #: Completion hook for the service gateway: called with each
        #: :class:`JobResult` right after it is appended to ``results``
        #: (both successful and failed terminations).  Hook bodies must use
        #: :meth:`event_now` when scheduling follow-up events — completion
        #: can be observed during a finish-ledger flush, while the clock is
        #: transiently rewound.
        self.on_job_done: Optional[Callable[[JobResult], None]] = None
        for machine in cluster.machines:
            if machine.cache_worker is None:
                machine.cache_worker = CacheWorker(
                    machine.machine_id, self.config.cache_worker, cluster.disk
                )
            machine.cache_worker.tracer = self.tracer
        #: Resource-accounting ledger (:mod:`repro.audit`); ``None`` keeps
        #: every hook site on a single ``is not None`` check.  Pass a
        #: pre-built ``ledger`` to share one across runtimes (chaos does),
        #: or ``audit=True`` to build a fresh one.
        self.ledger: Optional[ResourceLedger] = ledger
        if self.ledger is None and audit:
            self.ledger = ResourceLedger(strict=audit_strict, tracer=self.tracer)
        if self.ledger is not None:
            self.ledger.bind_clock(lambda: self.sim.now)
            cluster.network.ledger = self.ledger
            for machine in cluster.machines:
                machine.cache_worker.ledger = self.ledger  # type: ignore[union-attr]
        if not policy.gang:
            # Wave execution is only meaningful for single-stage units.
            pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Queue a job for execution at its ``submit_time``."""
        self._check_not_drained()
        self.sim.schedule_at(job.submit_time, self._on_job_submitted, job, 0)

    def submit_all(self, jobs: list[Job]) -> None:
        """Queue a batch of jobs at their respective submit times.

        Large workloads (paper-scale replays) enter the event kernel in one
        ``schedule_batch`` call instead of per-job heap pushes.
        """
        self._check_not_drained()
        now = self.sim.now
        self.sim.schedule_batch(
            [(job.submit_time - now, self._on_job_submitted, (job, 0)) for job in jobs]
        )

    def event_now(self) -> float:
        """Earliest time a new simulator event may safely be scheduled.

        During a finish-ledger flush the kernel clock is transiently rewound
        to replay deferred finishes in order; scheduling at ``sim.now`` then
        would create past-time events and drag the engine clock backwards.
        Hooks that schedule work (``on_job_done`` dispatchers) must use this
        instead of ``sim.now``.
        """
        if self._flushing and self._outer_now is not None:
            return self._outer_now
        return self.sim.now

    def _check_not_drained(self) -> None:
        if self._drained:
            raise RuntimeDrainedError(
                "cannot submit: this runtime's run() already drained its event"
                " queue, so new submissions would never execute; build a fresh"
                " SwiftRuntime or submit every job before calling run()"
            )

    def run(self, until: Optional[float] = None) -> list[JobResult]:
        """Run the simulation to completion and return per-job results."""
        self.sim.run(until=until)
        # Fast path: finalize any ledger entries due by the stop time (the
        # legacy path realised them as simulator events during the run).
        self._flush_finishes()
        if self.ledger is not None:
            # Drained-state assertions only make sense once every submitted
            # job has terminated (``until`` may stop mid-flight).
            drained = all(
                jr.done or jr.failed for jr in self.job_runs.values()
            )
            self.ledger.reconcile(
                self.cluster, "run:end", expect_drained=drained
            )
        if self.sim.pending_events() == 0:
            self._drained = True
        return self.results

    def execute(self, job: Job) -> JobResult:
        """Convenience: submit one job, run, return its result."""
        self.submit(job)
        self.run()
        for result in self.results:
            if result.job_id == job.job_id:
                return result
        raise RuntimeError(f"job {job.job_id} did not complete")

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _on_job_submitted(self, job: Job, attempt: int) -> None:
        # Catch up strictly-earlier deferred finishes so this submission sees
        # the same cluster state it would under per-task events.  Same-time
        # finishes stay deferred: their legacy events carry larger sequence
        # numbers than this submission's, so they ran after it.
        self._flush_finishes(strict=True)
        graphlets = self.policy.partitioner.partition(job.dag)
        if not self.policy.gang:
            for graphlet in graphlets.graphlets:
                if len(graphlet.stage_names) != 1:
                    raise SchedulingImpossibleError(
                        "wave (non-gang) execution requires single-stage units"
                    )
        # Partitioning and job admission cost controller time.
        self.admin.admit_ops(self.sim.now, len(job.dag) + 1)
        self.events.record(
            self.sim.now,
            EventKind.JOB_RESTARTED if attempt else EventKind.JOB_SUBMITTED,
            job.job_id,
            f"{len(graphlets)} graphlets",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                Category.JOB,
                "job.restarted" if attempt else "job.submitted",
                self.sim.now,
                job.job_id,
                graphlets=len(graphlets),
                attempt=attempt,
            )
        if attempt == 0:
            metrics = JobMetrics(
                job_id=job.job_id,
                submit_time=self.sim.now,
                tenant=job.tenant,
                deadline=job.deadline,
            )
            self.job_runs[job.job_id] = JobRun(job, graphlets, metrics, attempt)
            self._schedule_failures(job)
        else:
            old = self.job_runs[job.job_id]
            self.job_runs[job.job_id] = JobRun(job, graphlets, old.metrics, attempt)
        self._try_submit_units(self.job_runs[job.job_id])

    def _job_reference(self, job_id: str) -> float:
        if isinstance(self.reference_duration, dict):
            return self.reference_duration.get(job_id, 100.0)
        return self.reference_duration

    def _schedule_failures(self, job: Job) -> None:
        reference = self._job_reference(job.job_id)
        for spec in self.failure_plan.for_job(job.job_id):
            at = job.submit_time + spec.resolve_time(reference)
            self.sim.schedule_at(max(at, self.sim.now), self._on_failure, spec, job.job_id)

    def _unit_inputs_ready(self, unit: UnitRun) -> bool:
        """All cross-unit edges into the unit have completed producers."""
        job_run = unit.job_run
        for name in unit.stage_names:
            for edge in job_run.dag.in_edges(name):
                producer_sr = job_run.stage_runs[edge.src]
                if producer_sr.unit_id != unit.graphlet_id and not producer_sr.completed:
                    return False
        return True

    def _unit_inputs_started(self, unit: UnitRun) -> bool:
        """All cross-unit producers are at least running (eager submission:
        Bubble Execution acquires executors "long before the input data
        arrive" — while producers execute — not at job admission)."""
        job_run = unit.job_run
        for name in unit.stage_names:
            for edge in job_run.dag.in_edges(name):
                producer_sr = job_run.stage_runs[edge.src]
                if producer_sr.unit_id == unit.graphlet_id:
                    continue
                producer_unit = job_run.units[producer_sr.unit_id]
                if producer_unit.state not in (UnitState.GRANTED, UnitState.DONE):
                    return False
        return True

    def _try_submit_units(self, job_run: JobRun) -> None:
        if job_run.aborted or job_run.failed:
            return
        for unit in job_run.units.values():
            if unit.state != UnitState.PENDING:
                continue
            if self.policy.submission == SubmissionOrder.CONSERVATIVE:
                if not self._unit_inputs_ready(unit):
                    continue
            elif not self._unit_inputs_started(unit):
                continue
            n = unit.task_count()
            if self.policy.gang and n > self.cluster.total_executors():
                raise SchedulingImpossibleError(
                    f"unit {unit.graphlet_id} of {job_run.job.job_id} needs {n} "
                    f"executors; cluster has {self.cluster.total_executors()}"
                )
            locality: tuple[int, ...] = ()
            if any(
                job_run.dag.stage(name).scan_bytes_per_task > 0
                for name in unit.stage_names
            ):
                locality = pick_locality_machines(self.cluster, n)
            item = self.scheduler.request(
                job_id=job_run.job.job_id,
                unit_id=unit.graphlet_id,
                n_executors=n,
                locality=locality,
                priority=job_run.job.priority,
                now=self.sim.now,
                gang=self.policy.gang,
            )
            unit.request = item
            unit.state = UnitState.REQUESTED
            self._request_units[item.request_id] = unit
            self.events.record(
                self.sim.now, EventKind.UNIT_REQUESTED, job_run.job.job_id,
                f"unit {unit.graphlet_id} ({n} executors)",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.UNIT, "unit.requested", self.sim.now,
                    job_run.job.job_id, scope=f"unit{unit.graphlet_id}",
                    executors=n,
                )
        self._pump_scheduler()

    def _pump_scheduler(self) -> None:
        for grant in self.scheduler.schedule():
            unit = self._request_units.get(grant.request.request_id)
            if unit is None:
                for executor in grant.executors:
                    executor.release()
                continue
            self._on_unit_granted(unit, grant)

    # ------------------------------------------------------------------
    # Dispatch and timing computation
    # ------------------------------------------------------------------
    def _on_unit_granted(self, unit: UnitRun, grant: Grant) -> None:
        job_run = unit.job_run
        if job_run.aborted or job_run.failed:
            for executor in grant.executors:
                executor.release()
            return
        unit.state = UnitState.GRANTED
        self.events.record(
            self.sim.now, EventKind.UNIT_GRANTED, job_run.job.job_id,
            f"unit {unit.graphlet_id} ({len(grant.executors)} executors)",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                Category.UNIT, "unit.granted", self.sim.now,
                job_run.job.job_id, scope=f"unit{unit.graphlet_id}",
                executors=len(grant.executors),
            )
        if self.policy.submission == SubmissionOrder.EAGER:
            # Downstream bubbles become submittable once this one runs.
            self._try_submit_units(job_run)
        pending = [
            inst
            for sr in unit.stage_runs()
            for inst in sr.instances
            if inst.state == TaskState.PENDING and inst.executor is None
        ]
        batch = pending[: len(grant.executors)]
        # During an Admin failover the shadow controller must finish taking
        # over before any new plan can be generated and dispatched.
        dispatch_from = self.shadow.next_available(self.sim.now)
        self.shadow.record_completion(self.sim.now)
        times = self.admin.dispatch_times(dispatch_from, len(batch))
        rng = self.sim.rng
        metrics = job_run.metrics
        if self._fast_path:
            self._dispatch_batch_fast(job_run, batch, grant.executors, times, rng)
            if times:
                # dispatch_times is strictly increasing, so only the first
                # arrival can move the job's start time.
                first = times[0]
                if metrics.start_time == 0.0 or first < metrics.start_time:
                    metrics.start_time = first
        else:
            for inst, executor, arrive in zip(batch, grant.executors, times):
                executor.current_task = inst
                executor.start()
                inst.executor = executor
                inst.state = TaskState.DISPATCHED
                inst.plan_arrive = arrive
                inst.launch = self._launch_overhead(rng)
                inst.stage_run.n_dispatched += 1
                self.admin.plan_cached(job_run.job.job_id, inst.stage_run.name)
                if metrics.start_time == 0.0 or arrive < metrics.start_time:
                    metrics.start_time = arrive
        self._try_compute_stages(unit)

    def _dispatch_batch_fast(
        self,
        job_run: JobRun,
        batch: list["TaskInstance"],
        executors: list[Executor],
        times: list[float],
        rng,
    ) -> None:
        """Per-task dispatch loop with the executor state machine inlined.

        Executors arrive ASSIGNED from the scheduler, so ASSIGNED->RUNNING
        never touches idle counters; the rng draw sequence matches
        ``_launch_overhead`` exactly (prelaunched draws nothing).
        """
        cfg = self.config.executor
        prelaunched = self.policy.launch == LaunchModel.PRELAUNCHED
        fixed_launch = cfg.prelaunched_overhead
        mean = cfg.coldstart_mean
        jitter = cfg.coldstart_jitter
        uniform = rng.uniform
        running = ExecutorState.RUNNING
        dispatched = TaskState.DISPATCHED
        plan_cached = self.admin.plan_cached
        stats = self.admin.stats
        job_id = job_run.job.job_id
        last_sr = None
        for inst, executor, arrive in zip(batch, executors, times):
            executor.current_task = inst
            executor.state = running
            inst.executor = executor
            inst.state = dispatched
            inst.plan_arrive = arrive
            if prelaunched:
                inst.launch = fixed_launch
            else:
                launch = mean + uniform(-jitter, jitter)
                inst.launch = launch if launch > 0.0 else 0.0
            sr = inst.stage_run
            sr.n_dispatched += 1
            if sr is last_sr:
                # Same (job, stage) key as the previous instance: a repeat
                # lookup is by definition a cache hit, so skip the set probe.
                stats.plan_cache_hits += 1
            else:
                last_sr = sr
                plan_cached(job_id, sr.name)

    def _launch_overhead(self, rng) -> float:
        cfg = self.config.executor
        if self.policy.launch == LaunchModel.PRELAUNCHED:
            return cfg.prelaunched_overhead
        jitter = cfg.coldstart_jitter
        return max(0.0, cfg.coldstart_mean + rng.uniform(-jitter, jitter))

    def _try_compute_stages(self, unit: UnitRun) -> None:
        """Prepare and compute every stage of the unit whose inputs are known."""
        for sr in unit.stage_runs():
            if sr.computed:
                continue
            if not self._stage_inputs_known(sr):
                continue
            if not sr.prepared:
                self._prepare_stage(sr)
            if sr.n_dispatched == len(sr.instances):
                self._compute_stage(sr)
            else:
                # Wave execution: compute the dispatched prefix now.
                self._compute_ready_instances(sr)

    def _stage_inputs_known(self, sr: StageRun) -> bool:
        job_run = sr.job_run
        for edge in job_run.dag.in_edges(sr.name):
            producer = job_run.stage_runs[edge.src]
            if producer.unit_id != sr.unit_id:
                if not producer.completed:
                    return False
            elif not producer.computed:
                return False
        return True

    def _edge_streams(self, job_run: JobRun, edge: Edge, consumer_sr: StageRun) -> bool:
        """True when ``edge`` streams into ``consumer_sr`` (no barrier wait)."""
        producer = job_run.stage_runs[edge.src]
        if producer.unit_id != consumer_sr.unit_id:
            return False
        if job_run.dag.edge_mode(edge) == EdgeMode.BARRIER:
            return False
        return self.policy.pipelined_execution

    def _cache_utilization(self) -> float:
        """Mean in-memory utilization of the live Cache Workers (0..1)."""
        used = capacity = 0.0
        for machine in self.cluster.alive_machines():
            worker = machine.cache_worker
            if worker is None:
                continue
            used += worker.memory_used
            capacity += worker.config.memory_capacity
        return used / capacity if capacity > 0 else 0.0

    def _edge_scheme(self, job_run: JobRun, edge: Edge, cross_unit: bool) -> ShuffleScheme:
        requested = (
            self.policy.effective_cross_unit_shuffle() if cross_unit else self.policy.shuffle
        )
        if not cross_unit:
            return resolve_scheme(requested, job_run.dag.edge_size(edge), self.config.shuffle)
        # Cross-unit edges route through Cache Workers, so their scheme is
        # re-resolved against realized cluster state the first time anybody
        # needs it (i.e. when the earliest adjacent stage prepares), then
        # pinned: producer store and consumer costing must agree.
        dkey = (job_run.job.job_id, f"{edge.src}->{edge.dst}")
        decision = self._edge_mode_decisions.get(dkey)
        if decision is None:
            decision = self.mode_controller.resolve(
                requested,
                job_run.dag.edge_size(edge),
                cache_utilization=self._cache_utilization(),
                setup_latency=self.cluster.network.connection_setup_time(),
            )
            self._edge_mode_decisions[dkey] = decision
            if decision.switched:
                if self.tracer.enabled:
                    self.tracer.instant(
                        Category.SHUFFLE, "shuffle.mode_switch", self.sim.now,
                        job_run.job.job_id, scope=dkey[1],
                        scheme=decision.scheme.value,
                        static_scheme=decision.static_scheme.value,
                        reason=decision.reason,
                    )
                    self.tracer.count("shuffle_mode_switches")
        return decision.scheme

    def _prepare_stage(self, sr: StageRun) -> None:
        """Compute stage-level costs and input-availability constants."""
        job_run = sr.job_run
        dag = job_run.dag
        stage = sr.stage
        machines = max(1, len(self.cluster.schedulable_machines()))
        tasks_per_machine = max(1, math.ceil(stage.task_count / machines))

        if stage.scan_bytes_per_task > 0:
            sr.scan_read = self.cluster.disk.read_time(
                stage.scan_bytes_per_task, n_files=1, concurrent_tasks=tasks_per_machine
            )

        read_cost = 0.0
        barrier_avail = 0.0
        pipeline_floor = 0.0
        pipeline_first = 0.0
        total_conns = 0
        in_edges = dag.in_edges(sr.name)
        sr.has_inputs = bool(in_edges) or stage.scan_bytes_per_task > 0
        edge_infos: list[tuple[Edge, StageRun, bool, ShuffleScheme, int]] = []
        merge_candidates: list[tuple[str, float, int]] = []
        for edge in in_edges:
            producer_sr = job_run.stage_runs[edge.src]
            cross = producer_sr.unit_id != sr.unit_id
            scheme = self._edge_scheme(job_run, edge, cross)
            m = dag.stage(edge.src).task_count
            edge_infos.append((edge, producer_sr, cross, scheme, m))
            if (
                cross
                and scheme is ShuffleScheme.DIRECT
                and not self._edge_streams(job_run, edge, sr)
            ):
                merge_candidates.append(
                    (f"{edge.src}->{edge.dst}", dag.edge_bytes(edge), m)
                )
        # Small-partition storms: many tiny direct cross-unit edges are
        # collapsed into one push-based merged transfer (FuxiShuffle
        # direction) — one aggregated remote push instead of M_i x N
        # per-edge connection meshes.
        merged, _ = plan_partition_merge(
            merge_candidates, stage.task_count, self.config.shuffle
        )
        merged_keys = frozenset(merged.edges) if merged is not None else frozenset()
        for edge, producer_sr, cross, scheme, m in edge_infos:
            n = stage.task_count
            y = self._effective_machines(m, n)
            edge_key = f"{edge.src}->{edge.dst}"
            if edge_key in merged_keys:
                # Costed once below, as part of the merged transfer.
                job_run.metrics.shuffle_schemes[edge_key] = "merged"
            else:
                cost = self.shuffle_model.edge_cost(
                    scheme, dag.edge_bytes(edge), m, n, y,
                    barrier=not self._edge_streams(job_run, edge, sr),
                )
                read_cost += cost.read_per_task
                total_conns += cost.connections
                job_run.metrics.shuffle_schemes[edge_key] = cost.scheme.value
                if self.tracer.enabled:
                    self.tracer.instant(
                        Category.SHUFFLE, "shuffle.scheme", self.sim.now,
                        job_run.job.job_id, scope=edge_key,
                        scheme=cost.scheme.value, size=m * n,
                        bytes=dag.edge_bytes(edge), cross_unit=cross,
                        connections=cost.connections,
                    )
                    self.tracer.count(f"shuffle_edges_{cost.scheme.value}")
            if self._edge_streams(job_run, edge, sr):
                pipeline_floor = max(pipeline_floor, producer_sr.finish_estimate)
                pipeline_first = max(pipeline_first, producer_sr.first_output)
            else:
                avail = producer_sr.finish_estimate
                if cross and scheme in (ShuffleScheme.LOCAL, ShuffleScheme.REMOTE):
                    avail += self._cache_worker_read_delay(job_run, edge, n)
                    avail += self._edge_extra_delay.get(
                        (job_run.job.job_id, edge_key), 0.0
                    )
                barrier_avail = max(barrier_avail, avail)
        if merged is not None:
            y = self._effective_machines(merged.m, merged.n)
            cost = self.shuffle_model.edge_cost(
                ShuffleScheme.REMOTE, merged.total_bytes,
                merged.m, merged.n, y, barrier=True,
            )
            read_cost += cost.read_per_task
            total_conns += cost.connections
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.SHUFFLE, "shuffle.merge", self.sim.now,
                    job_run.job.job_id, scope=sr.name,
                    edges=len(merged.edges), bytes=merged.total_bytes,
                    m=merged.m, n=merged.n, connections=cost.connections,
                )
                self.tracer.count("shuffle_merged_edges", len(merged.edges))
        sr.read_cost = read_cost
        sr.barrier_avail = barrier_avail
        sr.pipeline_floor = pipeline_floor
        sr.pipeline_first_input = pipeline_first
        sr.registered_connections = total_conns
        self.cluster.network.register_connections(total_conns)

        write_cost = 0.0
        for edge in dag.out_edges(sr.name):
            consumer_sr = job_run.stage_runs[edge.dst]
            cross = consumer_sr.unit_id != sr.unit_id
            scheme = self._edge_scheme(job_run, edge, cross)
            m = stage.task_count
            n = dag.stage(edge.dst).task_count
            y = self._effective_machines(m, n)
            cost = self.shuffle_model.edge_cost(
                scheme, dag.edge_bytes(edge), m, n, y,
                barrier=not self._edge_streams(job_run, edge, consumer_sr),
            )
            write_cost += cost.write_per_task
        if not dag.out_edges(sr.name) and stage.output_bytes_per_task > 0:
            # Sink stages write their result to the client / ad-hoc sink.
            write_cost += stage.output_bytes_per_task / self.config.network.nic_bandwidth
        sr.write_cost = write_cost
        sr.prepared = True

    def _effective_machines(self, m: int, n: int) -> int:
        """Machine spread Y of a shuffle: tasks pack onto executors, so with
        dozens of executors per machine "Y is much smaller than M and N"
        (Section III-B)."""
        per_machine = max(1, self.cluster.total_executors() // self.cluster.n_machines)
        return max(1, min(self.cluster.n_machines, math.ceil(max(m, n) / per_machine)))

    def _cache_worker_read_delay(self, job_run: JobRun, edge: Edge, n_consumers: int) -> float:
        """Extra read delay when a cross-unit edge's data was spilled.

        Each replica group is read through its first member still holding
        the entry — the primary while it lives, a replica after a failover.
        """
        delay = 0.0
        key = f"{edge.src}->{edge.dst}"
        job_id = job_run.job.job_id
        groups = self._edge_cw_machines.get((job_id, key), ())
        for group in groups:
            for machine_id in group:
                worker: CacheWorker = self.cluster.machines[machine_id].cache_worker  # type: ignore[assignment]
                if worker is None or worker.entry(job_id, key) is None:
                    continue
                delay = max(delay, worker.read(job_id, key, self.sim.now))
                break
        return delay

    def _work_seconds(self, sr: StageRun) -> float:
        stage = sr.stage
        if stage.work_seconds_per_task is not None:
            return stage.work_seconds_per_task
        dag = sr.job_run.dag
        in_bytes = stage.scan_bytes_per_task
        for edge in dag.in_edges(stage.name):
            in_bytes += dag.edge_bytes(edge) / stage.task_count
        return in_bytes / self.config.task_processing_rate

    def _compute_stage(self, sr: StageRun) -> None:
        self._compute_ready_instances(sr)
        sr.computed = sr.n_computed == len(sr.instances)

    def _compute_ready_instances(self, sr: StageRun) -> None:
        """Compute finish times for dispatched-but-uncomputed instances."""
        rng = self.sim.rng
        work = self._work_seconds(sr)
        flush = self.config.pipeline_flush_latency
        computed_before = sr.n_computed
        if self._fast_path:
            self._compute_ready_instances_fast(sr, rng, work, flush)
        else:
            for inst in sr.instances:
                if inst.state != TaskState.DISPATCHED or inst.finish_time != math.inf:
                    continue
                inst.proc = work * (1.0 + rng.uniform(0.0, 0.06))
                inst.read = sr.scan_read + sr.read_cost
                inst.write = sr.write_cost
                ready = inst.plan_arrive + inst.launch
                inst.start = max(ready, sr.barrier_avail)
                finish = inst.start + inst.read + inst.proc + inst.write
                if sr.pipeline_floor > 0:
                    finish = max(finish, sr.pipeline_floor + flush)
                    inst.start = max(inst.start, sr.pipeline_first_input)
                inst.finish_time = finish
                if not sr.has_inputs:
                    inst.data_arrive = ready
                else:
                    arrivals = [ready]
                    if sr.barrier_avail > 0:
                        arrivals.append(sr.barrier_avail)
                    if sr.pipeline_first_input > 0:
                        arrivals.append(sr.pipeline_first_input)
                    inst.data_arrive = max(arrivals)
                sr.n_computed += 1
                sr.finish_estimate = max(sr.finish_estimate, inst.finish_time)
                sr.earliest_read_done = min(
                    sr.earliest_read_done, inst.start + inst.read
                )
                self._schedule_finish(inst)
        if self._fast_path and sr.n_computed > computed_before:
            self._schedule_drain(sr)
        if sr.n_computed == len(sr.instances):
            sr.computed = True
            if sr.stage.is_blocking or not self.policy.pipelined_execution:
                sr.first_output = sr.finish_estimate
            else:  # streaming stage: first output follows the earliest start
                starts = [i.start for i in sr.instances if i.start != math.inf]
                base = min(starts) if starts else self.sim.now
                sr.first_output = max(base, sr.pipeline_first_input) + flush
            # Unblock same-unit successors now that estimates exist.
            self._try_compute_stages(sr.job_run.units[sr.unit_id])

    def _compute_ready_instances_fast(
        self, sr: StageRun, rng, work: float, flush: float
    ) -> None:
        """Hot-loop variant of the per-instance timing computation.

        Identical arithmetic and rng draw order to the legacy loop; stage
        aggregates are carried in locals and written back once, and ledger
        entries are appended in bulk with a single heapify instead of one
        ``_schedule_finish`` call (and heap push) per instance.
        """
        uniform = rng.uniform
        read = sr.scan_read + sr.read_cost
        write = sr.write_cost
        barrier = sr.barrier_avail
        p_floor = sr.pipeline_floor
        p_first = sr.pipeline_first_input
        has_inputs = sr.has_inputs
        finish_est = sr.finish_estimate
        earliest = sr.earliest_read_done
        n_computed = sr.n_computed
        ledger = self._finish_ledger
        seq = self._ledger_seq
        dispatched = TaskState.DISPATCHED
        inf = math.inf
        appended = False
        for inst in sr.instances:
            if inst.state is not dispatched or inst.finish_time != inf:
                continue
            proc = work * (1.0 + uniform(0.0, 0.06))
            inst.proc = proc
            inst.read = read
            inst.write = write
            ready = inst.plan_arrive + inst.launch
            start = ready if ready > barrier else barrier
            finish = start + read + proc + write
            if p_floor > 0:
                floor = p_floor + flush
                if finish < floor:
                    finish = floor
                if start < p_first:
                    start = p_first
            inst.start = start
            inst.finish_time = finish
            if not has_inputs:
                inst.data_arrive = ready
            else:
                arrive = ready
                if barrier > 0 and barrier > arrive:
                    arrive = barrier
                if p_first > 0 and p_first > arrive:
                    arrive = p_first
                inst.data_arrive = arrive
            n_computed += 1
            if finish > finish_est:
                finish_est = finish
            read_done = start + read
            if read_done < earliest:
                earliest = read_done
            inst.event_scheduled = True
            seq += 1
            ledger.append((finish, seq, inst))
            appended = True
        sr.n_computed = n_computed
        sr.finish_estimate = finish_est
        sr.earliest_read_done = earliest
        self._ledger_seq = seq
        if appended:
            heapq.heapify(ledger)

    def _schedule_finish(self, inst: TaskInstance) -> None:
        if inst.event_scheduled:
            return
        inst.event_scheduled = True
        if self._fast_path:
            # No simulator event per task: record the finish in the ledger;
            # it is realised (in exact event order) by the next flush.
            self._ledger_seq += 1
            heapq.heappush(
                self._finish_ledger, (inst.finish_time, self._ledger_seq, inst)
            )
            return
        self.sim.schedule_at(
            max(inst.finish_time, self.sim.now), self._on_task_finish, inst
        )

    def _schedule_drain(self, sr: StageRun) -> None:
        """One simulator event per computed batch, at the batch's last finish.

        The drain guarantees every ledger entry of the batch is flushed no
        later than its stage's completion time; between drains, any handler
        that observes runtime state flushes on entry.
        """
        at = sr.finish_estimate
        if at <= sr.drain_scheduled_at:
            return
        sr.drain_scheduled_at = at
        self.sim.schedule_at(max(at, self.event_now()), self._flush_finishes)

    def _flush_finishes(self, strict: bool = False) -> None:
        """Realise all deferred task finishes due by ``sim.now``.

        Entries are replayed in exactly the order the legacy per-task events
        would have fired — (finish time, schedule sequence) — with the
        simulated clock rewound to each entry's finish time, so every
        downstream effect (metrics, stage completion, scheduler grants, rng
        draws, event-log records) is byte-identical to the per-task path.
        ``strict`` excludes entries at exactly ``sim.now`` (used by handlers
        whose legacy event ordered before same-time finish events).
        """
        if self._flushing:
            return
        ledger = self._finish_ledger
        if not ledger:
            return
        sim = self.sim
        scheduler = self.scheduler
        target = sim.now
        self._flushing = True
        outer = sim.now
        self._outer_now = outer
        heappop = heapq.heappop
        busy_append = self.busy_intervals.append
        make_timing = TaskTiming
        trace_on = self.tracer.enabled
        trace_task = self.tracer.task_span
        cluster = self.cluster
        idle = ExecutorState.IDLE
        revoked = ExecutorState.REVOKED
        dispatched = TaskState.DISPATCHED
        finished = TaskState.FINISHED
        dead = TaskState.DEAD
        inf = math.inf
        # Per-stage constants (job id, stage name, instance count, metrics
        # list) are cached across consecutive entries of the same stage —
        # ledger order interleaves stages rarely, so this usually hits.
        cached_sr = None
        job_id = stage_name = tasks_append = n_instances = None
        try:
            while ledger:
                finish = ledger[0][0]
                if finish > target or (strict and finish >= target):
                    break
                _, _, inst = heappop(ledger)
                inst.event_scheduled = False
                sr = inst.stage_run
                job_run = sr.job_run
                if job_run.aborted or job_run.failed or inst.state is dead:
                    continue
                if inst.finish_time == inf:
                    # Suspended by a crash; recovery will reschedule.
                    continue
                if inst.finish_time > finish + _EPS:
                    # Finish moved after scheduling; chase it (defensive —
                    # cannot happen while the fast path is active).
                    self._schedule_finish(inst)
                    continue
                if inst.state is not dispatched:
                    continue
                if sr is not cached_sr:
                    cached_sr = sr
                    job_id = job_run.job.job_id
                    stage_name = sr.name
                    tasks_append = job_run.metrics.tasks.append
                    n_instances = len(sr.instances)
                sim._now = finish
                inst.state = finished
                # _finalize_instance, inlined with the executor release
                # unrolled (fast-path invariant: machines stay healthy, so
                # IDLE always returns the slot to the cluster's free pool).
                plan_arrive = inst.plan_arrive
                data_arrive = inst.data_arrive
                tasks_append(
                    make_timing(
                        job_id,
                        stage_name,
                        inst.index,
                        inst.attempt,
                        plan_arrive,
                        data_arrive if data_arrive < finish else finish,
                        finish,
                        inst.launch,
                        inst.read,
                        inst.proc,
                        inst.write,
                    )
                )
                busy_append((plan_arrive, finish))
                if trace_on:
                    trace_task(
                        stage_name, job_id, inst.index, inst.attempt,
                        plan_arrive, data_arrive, finish,
                        inst.launch, inst.read, inst.proc, inst.write,
                    )
                executor = inst.executor
                if executor is not None:
                    executor.current_task = None
                    if executor.state is not revoked:
                        executor.state = idle
                        machine = executor.machine
                        machine.idle_count += 1
                        machine._free_stack.append(executor)
                        cluster._free_count += 1
                    inst.executor = None
                sr.n_finalized += 1
                if sr.n_finalized == n_instances and not sr.completed:
                    self._on_stage_completed(sr)
                # A pump with an empty request queue cannot grant anything;
                # skipping it here is observationally identical.  (_queue is
                # re-read each pass: schedule() rebinds it when pruning.)
                if scheduler._queue:
                    self._pump_scheduler()
        finally:
            sim._now = outer
            self._outer_now = None
            self._flushing = False

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _on_task_finish(self, inst: TaskInstance) -> None:
        inst.event_scheduled = False
        job_run = inst.stage_run.job_run
        if job_run.aborted or job_run.failed or inst.state == TaskState.DEAD:
            return
        if inst.finish_time == math.inf:
            # Suspended by a machine crash; recovery will reschedule.
            return
        if inst.finish_time > self.sim.now + _EPS:
            # Recovery moved the finish; chase it.
            self._schedule_finish(inst)
            return
        if inst.state != TaskState.DISPATCHED:
            return
        inst.state = TaskState.FINISHED
        self._finalize_instance(inst)
        sr = inst.stage_run
        sr.n_finalized += 1
        if sr.n_finalized == len(sr.instances) and not sr.completed:
            self._on_stage_completed(sr)
        self._pump_scheduler()

    def _finalize_instance(self, inst: TaskInstance) -> None:
        sr = inst.stage_run
        metrics = sr.job_run.metrics
        timing = TaskTiming(
            job_id=sr.job_run.job.job_id,
            stage=sr.name,
            index=inst.index,
            attempt=inst.attempt,
            plan_arrive=inst.plan_arrive,
            data_arrive=min(inst.data_arrive, inst.finish_time),
            finish=inst.finish_time,
            launch_time=inst.launch,
            shuffle_read_time=inst.read,
            processing_time=inst.proc,
            shuffle_write_time=inst.write,
        )
        metrics.tasks.append(timing)
        self.busy_intervals.append((inst.plan_arrive, inst.finish_time))
        if self.tracer.enabled:
            self.tracer.task_span(
                sr.name, sr.job_run.job.job_id, inst.index, inst.attempt,
                inst.plan_arrive, inst.data_arrive, inst.finish_time,
                inst.launch, inst.read, inst.proc, inst.write,
            )
        if inst.executor is not None:
            inst.executor.release()
            inst.executor = None


    def _on_stage_completed(self, sr: StageRun) -> None:
        sr.completed = True
        sr.finish_estimate = self.sim.now
        job_run = sr.job_run
        self.admin.admit_ops(self.sim.now, 1)
        self.admin.record_status_report()
        self.events.record(
            self.sim.now, EventKind.STAGE_COMPLETED, job_run.job.job_id, sr.name
        )
        if self.tracer.enabled:
            start = min(
                (inst.plan_arrive for inst in sr.instances),
                default=self.sim.now,
            )
            self.tracer.span(
                Category.STAGE, sr.name, start, self.sim.now - start,
                job_run.job.job_id,
                scope=f"unit{job_run.units[sr.unit_id].graphlet_id}",
                tasks=len(sr.instances),
            )
        if sr.registered_connections:
            self.cluster.network.release_connections(sr.registered_connections)
            sr.registered_connections = 0
        if self.ledger is not None:
            # Cheap checkpoint: the connection shadow must agree right after
            # every stage's release (cache/executor checks run at teardown).
            self.ledger.reconcile_network(
                self.cluster.network, f"stage:{job_run.job.job_id}/{sr.name}"
            )
        self._store_cross_unit_outputs(sr)
        self._consume_cross_unit_inputs(sr)
        # Cross-unit consumers (conservative submission) may be ready now.
        self._try_submit_units(job_run)
        # Eagerly-granted consumer units may now compute their stages.
        for edge in job_run.dag.out_edges(sr.name):
            consumer = job_run.stage_runs[edge.dst]
            if consumer.unit_id != sr.unit_id:
                unit = job_run.units[consumer.unit_id]
                if unit.state == UnitState.GRANTED:
                    self._try_compute_stages(unit)
        unit = job_run.units[sr.unit_id]
        if unit.state != UnitState.DONE and unit.all_completed():
            unit.state = UnitState.DONE
            self.events.record(
                self.sim.now, EventKind.UNIT_COMPLETED, job_run.job.job_id,
                f"unit {unit.graphlet_id}",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.UNIT, "unit.completed", self.sim.now,
                    job_run.job.job_id, scope=f"unit{unit.graphlet_id}",
                )
            if all(u.state == UnitState.DONE for u in job_run.units.values()):
                self._on_job_completed(job_run)

    def _store_cross_unit_outputs(self, sr: StageRun) -> None:
        """Write this stage's cross-unit shuffle data into Cache Workers."""
        job_run = sr.job_run
        dag = job_run.dag
        for edge in dag.out_edges(sr.name):
            consumer = job_run.stage_runs[edge.dst]
            if consumer.unit_id == sr.unit_id:
                continue
            scheme = self._edge_scheme(job_run, edge, cross_unit=True)
            if scheme not in (ShuffleScheme.LOCAL, ShuffleScheme.REMOTE):
                continue
            key = f"{edge.src}->{edge.dst}"
            # Data lands on the Y machines the producer gang spanned.
            m = dag.stage(edge.src).task_count
            n = dag.stage(edge.dst).task_count
            y = self._effective_machines(m, n)
            candidates = self.cluster.schedulable_machines() or self.cluster.alive_machines()
            machines = candidates[:y]
            share = dag.edge_bytes(edge) / max(1, len(machines))
            consumers_per_machine = max(
                1, math.ceil(dag.stage(edge.dst).task_count / max(1, len(machines)))
            )
            # Replicate each primary's share onto the least-loaded other
            # Cache Workers; a lost primary then fails over to a replica
            # instead of re-running the producer.
            groups = pick_replica_machines(
                machines, candidates, self.config.shuffle.replication_factor
            )
            spill_delay = 0.0
            n_replicas = 0
            job_id = job_run.job.job_id
            self._edge_cw_machines[(job_id, key)] = [
                [mm.machine_id for mm in group] for group in groups
            ]
            self._job_cw_machines.setdefault(job_id, set()).update(
                mm.machine_id for group in groups for mm in group
            )
            for group in groups:
                for rank, machine in enumerate(group):
                    worker: CacheWorker = machine.cache_worker  # type: ignore[assignment]
                    spill_delay = max(
                        spill_delay,
                        worker.write(
                            job_id,
                            key,
                            share,
                            pending_consumers=consumers_per_machine,
                            now=self.sim.now,
                            replica=rank > 0,
                        ),
                    )
                    n_replicas += rank > 0
            if spill_delay > 0:
                self._edge_extra_delay[(job_id, key)] = spill_delay
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.CACHE, "cache.store", self.sim.now, job_id,
                    scope=key, bytes=dag.edge_bytes(edge),
                    machines=len(machines), replicas=n_replicas,
                    spill_delay=spill_delay,
                )
                if spill_delay > 0:
                    self.tracer.instant(
                        Category.CACHE, "cache.spill", self.sim.now, job_id,
                        scope=key, delay=spill_delay,
                    )
                    self.tracer.count("cache_spill_edges")
                for group in groups:
                    for machine in group:
                        worker = machine.cache_worker
                        if worker is not None:
                            self.tracer.gauge_max(
                                "cache_worker_mem_used_bytes", worker.memory_used
                            )

    def _consume_cross_unit_inputs(self, sr: StageRun) -> None:
        """Release Cache Worker entries this stage has fully consumed."""
        job_run = sr.job_run
        for edge in job_run.dag.in_edges(sr.name):
            producer = job_run.stage_runs[edge.src]
            if producer.unit_id == sr.unit_id:
                continue
            key = f"{edge.src}->{edge.dst}"
            groups = self._edge_cw_machines.pop(
                (job_run.job.job_id, key), ()
            )
            for group in groups:
                for machine_id in group:
                    worker: CacheWorker = self.cluster.machines[machine_id].cache_worker  # type: ignore[assignment]
                    if worker is not None:
                        entry = worker.entry(job_run.job.job_id, key)
                        if entry is not None:
                            entry.pending_consumers = 1
                            worker.consume(job_run.job.job_id, key)

    def _on_job_completed(self, job_run: JobRun) -> None:
        job_run.done = True
        job_run.metrics.finish_time = self.sim.now
        self.events.record(
            self.sim.now, EventKind.JOB_COMPLETED, job_run.job.job_id
        )
        if self.tracer.enabled:
            metrics = job_run.metrics
            self.tracer.span(
                Category.JOB, job_run.job.job_id, metrics.submit_time,
                metrics.latency, job_run.job.job_id,
                attempts=job_run.attempt + 1,
                failures=metrics.failures,
                restarts=metrics.restarts,
            )
            self.tracer.collect_job_metrics(metrics)
        self._release_cache_workers(job_run.job.job_id)
        if self.ledger is not None:
            self.ledger.reconcile(
                self.cluster, f"job:{job_run.job.job_id}:completed"
            )
        self.results.append(
            JobResult(
                job_id=job_run.job.job_id,
                policy_name=self.policy.name,
                metrics=job_run.metrics,
                completed=True,
                failed=False,
            )
        )
        if self.on_job_done is not None:
            self.on_job_done(self.results[-1])

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_failure(self, spec: FailureSpec, job_id: str) -> None:
        job_run = self.job_runs.get(job_id)
        if job_run is None or job_run.done or job_run.aborted or job_run.failed:
            return
        delay = detection_delay(spec.kind, self.config.admin, self.cluster.n_machines)
        detect_t = self.sim.now + delay
        job_run.metrics.failures += 1
        self.events.record(
            self.sim.now, EventKind.FAILURE_INJECTED, job_id,
            f"{spec.kind.value} stage={spec.stage or '-'}",
        )
        if self.tracer.enabled:
            # Detection by missed heartbeats for crashes, by the executor's
            # own re-registration for process restarts (Section IV-A).
            method = (
                "heartbeat"
                if spec.kind == FailureKind.MACHINE_CRASH
                else "self_report"
            )
            self.tracer.instant(
                Category.FAILURE, "failure.injected", self.sim.now, job_id,
                scope=spec.stage or "", kind=spec.kind.value,
            )
            self.tracer.instant(
                Category.FAILURE, "failure.detected", detect_t, job_id,
                scope=spec.stage or "", kind=spec.kind.value,
                method=method, delay=delay,
            )
            self.tracer.count("failures_injected")

        if spec.kind == FailureKind.APPLICATION_ERROR:
            # Useless recovery: report to the Job Monitor, fail the job.
            metrics = job_run.metrics
            metrics.recoveries_by_case["useless"] = (
                metrics.recoveries_by_case.get("useless", 0) + 1
            )
            self.sim.schedule_at(
                detect_t, self._fail_job, job_run,
                "application_error: reported to job monitor, not retried "
                "(useless recovery)",
            )
            return

        if spec.kind == FailureKind.MACHINE_QUARANTINE:
            machine = self.cluster.machines[spec.machine_id or 0]
            self.sim.schedule_at(
                detect_t, self._quarantine_machine, machine, spec.duration, job_id
            )
            return

        if spec.kind == FailureKind.CACHE_WORKER_LOSS:
            machine = self.cluster.machines[spec.machine_id or 0]
            self.sim.schedule_at(detect_t, self._on_cache_worker_lost, machine, job_id)
            return

        if spec.kind == FailureKind.MACHINE_CRASH:
            machine = self.cluster.machines[spec.machine_id or 0]
            machine.mark_dead()
            victims = [
                inst
                for jr in self.job_runs.values()
                for sr in jr.stage_runs.values()
                for inst in sr.instances
                if inst.executor is not None and inst.executor.machine is machine
            ]
            for inst in victims:
                inst.executor = None
                if inst.state == TaskState.DISPATCHED:
                    # The in-flight attempt dies with the machine; suspend
                    # its completion until recovery re-runs it.
                    inst.finish_time = math.inf
            if self.policy.recovery == FailureRecovery.JOB_RESTART:
                # Restart every job that lost an in-flight task, not just the
                # one the spec targeted: a machine death is cluster-wide.
                affected = {id(job_run): job_run}
                for inst in victims:
                    jr = inst.stage_run.job_run
                    affected.setdefault(id(jr), jr)
                for jr in affected.values():
                    self.sim.schedule_at(detect_t, self._restart_job, jr)
            else:
                # Recover victims of *all* jobs: suspending a victim clears
                # its executor, so a later injection of the same crash for
                # another job would no longer find it.
                for inst in victims:
                    self.sim.schedule_at(detect_t, self._recover_task, inst)
            return

        instance = self._find_target_instance(job_run, spec)
        if instance is None:
            return
        if (
            spec.kind == FailureKind.PROCESS_RESTART
            and instance.executor is not None
        ):
            # The executor process dies and relaunches with a new PID; the
            # self-report of the new PID is what the Admin detects
            # (Section IV-A's lazy, passive process tracking).
            instance.executor.relaunch()
            instance.executor = None
            if instance.state == TaskState.DISPATCHED:
                instance.finish_time = math.inf
        if instance.executor is not None:
            flagged = self.admin.record_task_failure(
                instance.executor.machine.machine_id, self.sim.now
            )
            if flagged:
                instance.executor.machine.mark_read_only()
                self.events.record(
                    self.sim.now, EventKind.MACHINE_QUARANTINED, job_id,
                    f"machine {instance.executor.machine.machine_id}",
                )
        if self.policy.recovery == FailureRecovery.JOB_RESTART:
            self.sim.schedule_at(detect_t, self._restart_job, job_run)
        else:
            self.sim.schedule_at(detect_t, self._recover_task, instance)

    def _find_target_instance(
        self, job_run: JobRun, spec: FailureSpec
    ) -> Optional[TaskInstance]:
        if spec.stage is not None:
            sr = job_run.stage_runs.get(spec.stage)
            if sr is None:
                return None
            if spec.task_index is not None:
                return sr.instances[spec.task_index]
            running = [
                i
                for i in sr.instances
                if i.state == TaskState.DISPATCHED and i.plan_arrive <= self.sim.now
            ]
            if running:
                return running[0]
            finished = [i for i in sr.instances if i.state == TaskState.FINISHED]
            if finished:
                return finished[0]
            return sr.instances[0]
        # No stage named: hit the first currently-running task of the job.
        for sr in job_run.stage_runs.values():
            for inst in sr.instances:
                if inst.state == TaskState.DISPATCHED and inst.plan_arrive <= self.sim.now:
                    return inst
        for sr in job_run.stage_runs.values():
            if sr.instances:
                return sr.instances[0]
        return None

    def _quarantine_machine(
        self, machine, duration: Optional[float], job_id: str
    ) -> None:
        """Admin-side quarantine (Section IV-A): the machine goes read-only,
        running tasks drain, and ``duration`` seconds later it recovers."""
        if not machine.alive:
            return
        started = self.admin.quarantine_machine(machine.machine_id)
        machine.mark_read_only()
        if started:
            self.events.record(
                self.sim.now, EventKind.MACHINE_QUARANTINED, job_id,
                f"machine {machine.machine_id}",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.FAILURE, "machine.quarantined", self.sim.now,
                    job_id, scope=f"machine{machine.machine_id}",
                    duration=duration,
                )
        if duration is not None:
            self.sim.schedule(duration, self._recover_machine, machine, job_id)

    def _recover_machine(self, machine, job_id: str) -> None:
        """End a quarantine episode: the machine accepts tasks again."""
        if not machine.alive:
            return
        recovered = self.admin.record_machine_recovered(machine.machine_id)
        machine.mark_healthy()
        if recovered:
            self.events.record(
                self.sim.now, EventKind.MACHINE_RECOVERED, job_id,
                f"machine {machine.machine_id}",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.RECOVERY, "machine.recovered", self.sim.now,
                    job_id, scope=f"machine{machine.machine_id}",
                )
        # Returned capacity may satisfy queued gang requests.
        self._pump_scheduler()

    def _holds_entry(self, machine_id: int, job_id: str, edge_key: str) -> bool:
        """True when ``machine_id``'s Cache Worker still serves the entry."""
        machine = self.cluster.machines[machine_id]
        worker = machine.cache_worker
        return (
            machine.alive
            and worker is not None
            and worker.entry(job_id, edge_key) is not None
        )

    def _on_cache_worker_lost(self, machine, job_id: str) -> None:
        """A Cache Worker dies, losing all shuffle data it held.

        Shuffle v2 first tries failover: if every replica group of a lost
        edge keeps at least one live holder, consumers simply read from the
        surviving replicas and no recompute happens.  Only when a share is
        unrecoverable does the producer re-generate and re-write the data
        (the OUTPUT_FAILURE path of Section IV-B, applied per lost entry).
        """
        worker: Optional[CacheWorker] = machine.cache_worker
        if worker is None:
            return
        lost = worker.drop_all(now=self.sim.now, reason="cache_worker_loss")
        self.events.record(
            self.sim.now, EventKind.CACHE_WORKER_LOST, job_id,
            f"machine {machine.machine_id} ({len(lost)} entries)",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                Category.FAILURE, "cache_worker.lost", self.sim.now, job_id,
                scope=f"machine{machine.machine_id}", entries=len(lost),
            )
        for entry in lost:
            entry_job_id, edge_key = entry.key
            job_run = self.job_runs.get(entry_job_id)
            if job_run is None or job_run.done or job_run.aborted or job_run.failed:
                continue
            src, _, dst = edge_key.partition("->")
            producer_sr = job_run.stage_runs.get(src)
            consumer_sr = job_run.stage_runs.get(dst)
            if producer_sr is None or consumer_sr is None or consumer_sr.completed:
                continue
            # The dead worker can no longer serve reads for this edge.
            groups = self._edge_cw_machines.get((entry_job_id, edge_key))
            share_lost = groups is None
            survivors = 0
            if groups is not None:
                for group in groups:
                    if machine.machine_id not in group:
                        continue
                    group.remove(machine.machine_id)
                    holders = sum(
                        1 for mid in group
                        if self._holds_entry(mid, entry_job_id, edge_key)
                    )
                    survivors += holders
                    if holders == 0:
                        share_lost = True
            if not share_lost:
                # Failover: surviving replicas hold every share, so the
                # consumers' reads are redirected and nothing re-runs.
                self.shuffle_recovery_log.append({
                    "job_id": entry_job_id,
                    "edge_key": edge_key,
                    "machine_id": machine.machine_id,
                    "survivors": survivors,
                    "action": "failover",
                })
                if self.tracer.enabled:
                    self.tracer.instant(
                        Category.RECOVERY, "shuffle.failover", self.sim.now,
                        entry_job_id, scope=edge_key,
                        machine=machine.machine_id, survivors=survivors,
                    )
                    self.tracer.count("shuffle_failover_reads")
                continue
            # Re-generate: recover one finished producer task, which re-runs
            # it and propagates the delay to the waiting consumers.
            self.shuffle_recovery_log.append({
                "job_id": entry_job_id,
                "edge_key": edge_key,
                "machine_id": machine.machine_id,
                "survivors": survivors,
                "action": "rerun",
            })
            victim = next(
                (i for i in producer_sr.instances if i.state == TaskState.FINISHED),
                None,
            )
            if victim is not None:
                self._recover_task(victim)

    def _fail_job(self, job_run: JobRun, reason: str = "") -> None:
        if job_run.done or job_run.failed:
            return
        job_run.failed = True
        self.events.record(
            self.sim.now, EventKind.JOB_FAILED, job_run.job.job_id, reason
        )
        if self.tracer.enabled:
            self.tracer.instant(
                Category.JOB, "job.failed", self.sim.now, job_run.job.job_id,
                attempt=job_run.attempt, reason=reason,
            )
        self._release_job_resources(job_run)
        if self.ledger is not None:
            self.ledger.reconcile(
                self.cluster, f"job:{job_run.job.job_id}:failed"
            )
        job_run.metrics.finish_time = self.sim.now
        self.results.append(
            JobResult(
                job_id=job_run.job.job_id,
                policy_name=self.policy.name,
                metrics=job_run.metrics,
                completed=False,
                failed=True,
                reason=reason,
            )
        )
        if self.on_job_done is not None:
            self.on_job_done(self.results[-1])

    def _release_cache_workers(self, job_id: str) -> None:
        """Drop all Cache Worker entries a job left behind."""
        for machine_id in self._job_cw_machines.pop(job_id, ()):
            worker: CacheWorker = self.cluster.machines[machine_id].cache_worker  # type: ignore[assignment]
            if worker is not None:
                worker.release_job(job_id, now=self.sim.now)
        stale = [k for k in self._edge_cw_machines if k[0] == job_id]
        for key in stale:
            del self._edge_cw_machines[key]
        # A restarted attempt re-resolves its shuffle modes against the
        # cluster state it actually sees.
        stale_decisions = [k for k in self._edge_mode_decisions if k[0] == job_id]
        for key in stale_decisions:
            del self._edge_mode_decisions[key]

    def _release_job_resources(self, job_run: JobRun) -> None:
        self.scheduler.cancel_job(job_run.job.job_id)
        trace_on = self.tracer.enabled
        for sr in job_run.stage_runs.values():
            if sr.registered_connections:
                self.cluster.network.release_connections(sr.registered_connections)
                sr.registered_connections = 0
            for inst in sr.instances:
                if inst.state == TaskState.DISPATCHED:
                    self.busy_intervals.append((inst.plan_arrive, self.sim.now))
                    if trace_on:
                        self.tracer.span(
                            Category.TASK,
                            f"{sr.name}[{inst.index}].aborted",
                            inst.plan_arrive,
                            self.sim.now - inst.plan_arrive,
                            job_run.job.job_id,
                            scope=sr.name,
                            finish=self.sim.now,
                            attempt=inst.attempt,
                            aborted=True,
                        )
                if inst.executor is not None:
                    inst.executor.release()
                    inst.executor = None
                inst.state = TaskState.DEAD
        self._release_cache_workers(job_run.job.job_id)
        self._pump_scheduler()

    def _restart_job(self, job_run: JobRun) -> None:
        if job_run.done or job_run.aborted or job_run.failed:
            return
        job_run.aborted = True
        job_run.metrics.restarts += 1
        if self.tracer.enabled:
            self.tracer.instant(
                Category.RECOVERY, "recovery.job_restart", self.sim.now,
                job_run.job.job_id, attempt=job_run.attempt + 1,
            )
            self.tracer.count("job_restarts_executed")
        self.admin.drop_job_plans(job_run.job.job_id)
        self._release_job_resources(job_run)
        self._on_job_submitted(job_run.job, job_run.attempt + 1)

    def _recover_task(self, inst: TaskInstance) -> None:
        """Fine-grained recovery (Section IV-B) for one failed task."""
        sr = inst.stage_run
        job_run = sr.job_run
        if job_run.done or job_run.aborted or job_run.failed:
            return
        if inst.state in (TaskState.DEAD, TaskState.PENDING):
            # A task that never received a plan has produced nothing and
            # consumed nothing; there is nothing to recover.
            return
        if inst.start == math.inf:
            # Dispatched but never computed (inputs still unknown): the
            # normal flow will execute it; nothing to recover.
            return
        has_executed = {
            name: s.n_computed > 0 and any(i.start <= self.sim.now for i in s.instances)
            for name, s in job_run.stage_runs.items()
        }
        decision = plan_recovery(
            job_run.dag,
            job_run.graphlets,
            sr.name,
            kind=FailureKind.TASK_CRASH,
            task_finished=inst.state == TaskState.FINISHED,
            output_fully_consumed=self._output_consumed(sr),
            has_executed=has_executed,
        )
        metrics = job_run.metrics
        metrics.recoveries_by_case[decision.case.value] = (
            metrics.recoveries_by_case.get(decision.case.value, 0) + 1
        )
        if decision.noop:
            metrics.noop_recoveries += 1
            self.events.record(
                self.sim.now, EventKind.TASK_RECOVERED, job_run.job.job_id,
                f"{sr.name}[{inst.index}] noop ({decision.case.value})",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    Category.RECOVERY, "recovery.noop", self.sim.now,
                    job_run.job.job_id, scope=sr.name,
                    task=inst.index, case=decision.case.value,
                )
            return
        metrics.resends += len(decision.resend_from)
        # The plan's re-run budget: the failed task plus every non-pending
        # instance of the other stages the decision drags in.
        metrics.planned_rerun_tasks += 1 + sum(
            sum(1 for i in job_run.stage_runs[name].instances
                if i.state != TaskState.PENDING)
            for name in decision.rerun_stages
            if name != sr.name
        )
        resend_delay = 0.0
        for pred_name in decision.resend_from:
            pred = job_run.dag.stage(pred_name)
            share = pred.total_output_bytes / max(1, sr.stage.task_count)
            resend_delay += share / self.config.network.nic_bandwidth
        base = self.sim.now + resend_delay
        # Re-run the failed task itself.
        new_finish = self._rerun_instance(inst, base)
        if new_finish is None:
            # Retry budget exhausted; the job has been failed.
            return
        self.events.record(
            self.sim.now, EventKind.TASK_RECOVERED, job_run.job.job_id,
            f"{sr.name}[{inst.index}] rerun ({decision.case.value})",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                Category.RECOVERY, "recovery.rerun", self.sim.now,
                job_run.job.job_id, scope=sr.name,
                task=inst.index, case=decision.case.value,
                resend_delay=resend_delay,
                rerun_stages=len(decision.rerun_stages),
            )
            self.tracer.count("task_reruns_executed")
        # Non-idempotent case: executed same-unit successors re-run too,
        # each gated on the upstream re-run finishing.
        for stage_name in decision.rerun_stages:
            if stage_name == sr.name:
                continue
            succ_sr = job_run.stage_runs[stage_name]
            gate = new_finish
            stage_finish = gate
            for succ_inst in succ_sr.instances:
                if succ_inst.state == TaskState.PENDING:
                    continue
                finish = self._rerun_instance(succ_inst, gate)
                if finish is None:
                    return
                stage_finish = max(stage_finish, finish)
            new_finish = stage_finish
        self._propagate_delays(sr)

    def _rerun_instance(self, inst: TaskInstance, not_before: float) -> Optional[float]:
        """Re-execute ``inst`` in place; returns its new finish time.

        Each re-run consumes one unit of the task's retry budget and pays an
        exponential backoff (with deterministic jitter drawn from the
        simulator rng).  When the budget is exhausted the job is failed with
        a clear reason and ``None`` is returned.
        """
        sr = inst.stage_run
        retry = self.config.retry
        if inst.attempt + 1 > retry.max_task_retries:
            self._fail_job(
                sr.job_run,
                reason=(
                    f"retry budget exhausted: task {sr.name}[{inst.index}] "
                    f"failed {inst.attempt + 1} times "
                    f"(max_task_retries={retry.max_task_retries})"
                ),
            )
            return None
        inst.attempt += 1
        was_finished = inst.state == TaskState.FINISHED
        if was_finished:
            sr.n_finalized -= 1
            sr.completed = False
        inst.state = TaskState.DISPATCHED
        sr.job_run.metrics.task_reruns += 1
        backoff = retry.backoff(inst.attempt)
        backoff += backoff * retry.jitter_frac * self.sim.rng.random()
        relaunch = self.config.executor.prelaunched_overhead + backoff
        # Recovery re-dispatches a cached plan (Plan Handler hit); only a
        # never-before-dispatched task pays plan generation again.
        if not self.admin.plan_cached(sr.job_run.job.job_id, sr.name):
            relaunch += self.config.admin.event_processing_time
        if inst.executor is None:
            executor = self._grab_free_executor()
            if executor is not None:
                executor.assign(inst)
                executor.start()
                inst.executor = executor
                relaunch += self.config.admin.dispatch_latency
            else:
                # No free slot right now; model a short re-acquire wait.
                relaunch += 0.5
        start = max(not_before, sr.barrier_avail) + relaunch
        inst.start = start
        finish = start + inst.read + inst.proc + inst.write
        if sr.pipeline_floor > 0:
            # A streamed consumer still cannot finish before its producers
            # have flushed, even on re-execution.
            finish = max(finish, sr.pipeline_floor + self.config.pipeline_flush_latency)
        inst.finish_time = finish
        sr.finish_estimate = max(sr.finish_estimate, inst.finish_time)
        self._schedule_finish(inst)
        return inst.finish_time

    def _grab_free_executor(self) -> Optional[Executor]:
        for machine in self.cluster.schedulable_machines():
            stack = machine._free_stack
            if stack:
                return stack[-1]
        return None

    def _output_consumed(self, sr: StageRun) -> bool:
        """True when every consumer of ``sr`` has already read its output."""
        job_run = sr.job_run
        out_edges = job_run.dag.out_edges(sr.name)
        if not out_edges:
            return True
        for edge in out_edges:
            consumer = job_run.stage_runs[edge.dst]
            if consumer.completed:
                continue
            if consumer.computed and consumer.earliest_read_done <= self.sim.now:
                continue
            return False
        return True

    def _propagate_delays(self, sr: StageRun) -> None:
        """Push updated finish estimates through downstream stages.

        Walks the whole downstream cone in topological order, lifting each
        computed stage's instance finish times to respect the new barrier
        availability / pipeline floors.  Finish events self-reschedule.
        """
        job_run = sr.job_run
        dag = job_run.dag
        order = dag.topo_order()
        position = {name: i for i, name in enumerate(order)}
        frontier = {sr.name}
        for name in order:
            if position[name] <= position[sr.name] and name != sr.name:
                continue
            if name != sr.name and not any(
                pred in frontier for pred in dag.predecessors(name)
            ):
                continue
            frontier.add(name)
            if name == sr.name:
                continue
            consumer = job_run.stage_runs[name]
            if not consumer.computed or consumer.completed:
                continue
            floor = 0.0
            barrier = consumer.barrier_avail
            for edge in dag.in_edges(name):
                producer = job_run.stage_runs[edge.src]
                if self._edge_streams(job_run, edge, consumer):
                    floor = max(floor, producer.finish_estimate)
                else:
                    barrier = max(barrier, producer.finish_estimate)
            consumer.barrier_avail = barrier
            flush = self.config.pipeline_flush_latency
            for inst in consumer.instances:
                if inst.state != TaskState.DISPATCHED or inst.finish_time == math.inf:
                    continue
                new_start = max(inst.start, barrier)
                new_finish = new_start + inst.read + inst.proc + inst.write
                if floor > 0:
                    new_finish = max(new_finish, floor + flush)
                if new_finish > inst.finish_time + _EPS:
                    inst.start = new_start
                    inst.finish_time = new_finish
                    consumer.finish_estimate = max(
                        consumer.finish_estimate, new_finish
                    )
                    self._schedule_finish(inst)
