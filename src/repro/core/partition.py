"""Job partitioning policies.

:class:`SwiftPartitioner` implements the paper's Algorithms 1 and 2
(shuffle-mode-aware partitioning): take the first remaining stage in
topological order, then grow a graphlet by following pipeline edges in both
directions until no pipeline-connected stage remains.

The other partitioners model the baselines:

* :class:`WholeJobPartitioner` — JetScope/Impala: the entire job is one unit.
* :class:`StagePartitioner` — Spark: every stage is its own unit.
* :class:`BubblePartitioner` — Bubble Execution: grow sub-graphs greedily
  along pipeline edges but cap each bubble by its estimated shuffle data
  volume (bubbles are sized to fit memory; overflowing edges are cut and the
  data crossing them is materialised to disk).
"""

from __future__ import annotations

from typing import Protocol

from .dag import EdgeMode, JobDAG
from .graphlet import Graphlet, GraphletGraph


class Partitioner(Protocol):
    """Strategy interface: job DAG -> graphlet graph."""

    name: str

    def partition(self, dag: JobDAG) -> GraphletGraph:
        """Partition ``dag`` into a graphlet graph."""  # pragma: no cover - protocol
        ...


class SwiftPartitioner:
    """Algorithms 1 & 2: shuffle-mode-aware job partitioning.

    One refinement over the paper's pseudo-code: merging along pipeline
    edges does not by itself guarantee *convex* sub-graphs, so on unusual
    DAG shapes two graphlets can end up depending on each other through
    barrier edges in both directions — which would deadlock dependency-
    ordered submission.  When that happens (never for tree-shaped query
    plans like TPC-H), the partitioner cuts the widest pipeline edge inside
    an offending graphlet and re-partitions until the graphlet dependency
    graph is acyclic.  Set ``enforce_acyclic=False`` to get the raw
    Algorithm 1-2 output.
    """

    name = "swift"

    def __init__(self, enforce_acyclic: bool = True) -> None:
        self.enforce_acyclic = enforce_acyclic

    def partition(self, dag: JobDAG) -> GraphletGraph:
        """Partition ``dag`` into a graphlet graph."""
        forced_cuts: set[tuple[str, str]] = set(getattr(self, "_forced_cuts", set()))
        for _ in range(len(dag.stages) + 1):
            graphlets = self._scan_all(dag, forced_cuts)
            if not self.enforce_acyclic:
                return GraphletGraph(dag=dag, graphlets=graphlets)
            cut = self._find_cycle_breaking_cut(dag, graphlets, forced_cuts)
            if cut is None:
                return GraphletGraph(dag=dag, graphlets=graphlets)
            forced_cuts.add(cut)
        raise RuntimeError("could not break graphlet dependency cycles")

    def _scan_all(
        self, dag: JobDAG, forced_cuts: set[tuple[str, str]]
    ) -> list[Graphlet]:
        remaining: dict[str, None] = dict.fromkeys(dag.topo_order())
        graphlets: list[Graphlet] = []
        while remaining:
            # Algorithm 1 line 2: first stage in topological order.
            trigger = next(iter(remaining))
            del remaining[trigger]
            stage_names = self._scan_and_add_stages(dag, trigger, remaining, forced_cuts)
            graphlets.append(
                Graphlet(
                    graphlet_id=len(graphlets) + 1,
                    stage_names=stage_names,
                    trigger_stage=trigger,
                )
            )
        return graphlets

    @staticmethod
    def _find_cycle_breaking_cut(
        dag: JobDAG,
        graphlets: list[Graphlet],
        forced_cuts: set[tuple[str, str]],
    ) -> tuple[str, str] | None:
        """Return a pipeline edge to cut, or ``None`` if already acyclic."""
        stage_to_graphlet: dict[str, int] = {}
        for graphlet in graphlets:
            for name in graphlet.stage_names:
                stage_to_graphlet[name] = graphlet.graphlet_id
        deps: dict[int, set[int]] = {g.graphlet_id: set() for g in graphlets}
        for edge in dag.edges:
            src_g, dst_g = stage_to_graphlet[edge.src], stage_to_graphlet[edge.dst]
            if src_g != dst_g:
                deps[dst_g].add(src_g)
        # Kahn: graphlets left over participate in a cycle.
        indegree = {gid: len(d) for gid, d in deps.items()}
        dependents: dict[int, list[int]] = {gid: [] for gid in deps}
        for gid, d in deps.items():
            for dep in d:
                dependents[dep].append(gid)
        ready = [gid for gid, deg in indegree.items() if deg == 0]
        seen = 0
        while ready:
            gid = ready.pop()
            seen += 1
            for successor in dependents[gid]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if seen == len(deps):
            return None
        cyclic = {gid for gid, deg in indegree.items() if deg > 0}
        position = {name: i for i, name in enumerate(dag.topo_order())}
        best: tuple[str, str] | None = None
        best_gap = -1
        for edge in dag.edges:
            same = stage_to_graphlet[edge.src] == stage_to_graphlet[edge.dst]
            if not same or stage_to_graphlet[edge.src] not in cyclic:
                continue
            if dag.edge_mode(edge) == EdgeMode.BARRIER:
                continue
            if (edge.src, edge.dst) in forced_cuts:
                continue
            gap = position[edge.dst] - position[edge.src]
            if gap > best_gap:
                best_gap = gap
                best = (edge.src, edge.dst)
        if best is None:  # pragma: no cover - cycles always involve pipelines
            raise RuntimeError("cyclic graphlets without cuttable pipeline edges")
        return best

    @staticmethod
    def _scan_and_add_stages(
        dag: JobDAG,
        start: str,
        remaining: dict[str, None],
        forced_cuts: set[tuple[str, str]],
    ) -> list[str]:
        """Algorithm 2, iterative form (the paper presents it recursively;
        an explicit stack avoids recursion limits on deep DAGs)."""
        stage_names = [start]
        stack = [start]
        while stack:
            stage = stack.pop()
            # Outgoing pipeline edges first (Algorithm 2 lines 2-7) ...
            for edge in dag.out_edges(stage):
                if (edge.src, edge.dst) in forced_cuts:
                    continue
                if edge.dst in remaining and dag.edge_mode(edge) == EdgeMode.PIPELINE:
                    del remaining[edge.dst]
                    stage_names.append(edge.dst)
                    stack.append(edge.dst)
            # ... then incoming pipeline edges (lines 8-13).
            for edge in dag.in_edges(stage):
                if (edge.src, edge.dst) in forced_cuts:
                    continue
                if edge.src in remaining and dag.edge_mode(edge) == EdgeMode.PIPELINE:
                    del remaining[edge.src]
                    stage_names.append(edge.src)
                    stack.append(edge.src)
        return stage_names


class WholeJobPartitioner:
    """JetScope/Impala model: the whole job is a single gang-scheduled unit."""

    name = "whole_job"

    def partition(self, dag: JobDAG) -> GraphletGraph:
        """Partition ``dag`` into a graphlet graph."""
        graphlet = Graphlet(
            graphlet_id=1,
            stage_names=dag.topo_order(),
            trigger_stage=dag.topo_order()[0],
        )
        return GraphletGraph(dag=dag, graphlets=[graphlet])


class StagePartitioner:
    """Spark model: one schedulable unit per stage."""

    name = "per_stage"

    def partition(self, dag: JobDAG) -> GraphletGraph:
        """Partition ``dag`` into a graphlet graph."""
        graphlets = [
            Graphlet(graphlet_id=i + 1, stage_names=[name], trigger_stage=name)
            for i, name in enumerate(dag.topo_order())
        ]
        return GraphletGraph(dag=dag, graphlets=graphlets)


class BubblePartitioner:
    """Bubble Execution model: pipeline-connected growth with a memory cap.

    Bubbles are grown like Swift graphlets, but a bubble stops absorbing a
    neighbour when doing so would push the bubble's internal shuffle data
    volume past ``memory_budget_bytes``.  The cut edges become disk-backed
    barriers, which is why the baseline pays disk shuffle between bubbles and
    suffers the partitioning overhead Section V-D describes.
    """

    name = "bubble"

    def __init__(self, memory_budget_bytes: float = 64 * 1024 ** 3) -> None:
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.memory_budget_bytes = memory_budget_bytes

    def partition(self, dag: JobDAG) -> GraphletGraph:
        """Partition ``dag`` into a graphlet graph."""
        # Identify pipeline edges that must be cut for the memory budget,
        # then reuse the Swift scan with those edges forced to cuts.
        forced_cuts: set[tuple[str, str]] = set()
        volume: dict[str, float] = {}
        remaining: dict[str, None] = dict.fromkeys(dag.topo_order())
        probe = SwiftPartitioner()
        while remaining:
            trigger = next(iter(remaining))
            del remaining[trigger]
            bubble_volume = 0.0
            stage_names = [trigger]
            stack = [trigger]
            while stack:
                stage = stack.pop()
                for edge in dag.out_edges(stage) + dag.in_edges(stage):
                    neighbour = edge.dst if edge.src == stage else edge.src
                    if neighbour not in remaining:
                        continue
                    if dag.edge_mode(edge) != EdgeMode.PIPELINE:
                        continue
                    edge_volume = dag.edge_bytes(edge)
                    if bubble_volume + edge_volume > self.memory_budget_bytes:
                        forced_cuts.add((edge.src, edge.dst))
                        continue
                    bubble_volume += edge_volume
                    del remaining[neighbour]
                    stage_names.append(neighbour)
                    stack.append(neighbour)
            volume[trigger] = bubble_volume
        probe._forced_cuts = forced_cuts  # type: ignore[attr-defined]
        graph = probe.partition(dag)
        return GraphletGraph(dag=dag, graphlets=graph.graphlets)


def partition_job(dag: JobDAG, partitioner: Partitioner | None = None) -> GraphletGraph:
    """Partition ``dag`` with ``partitioner`` (default: Swift's algorithm)."""
    return (partitioner or SwiftPartitioner()).partition(dag)
