"""Cache Worker: per-machine in-memory shuffle store with LRU spill.

One Cache Worker runs on each machine (Section II-B).  Local and Remote
Shuffle write shuffle data into it; data is deleted "to release memory after
they have been consumed by all successor tasks".  Under memory shortage
(< 1% of the time in production) the LRU policy swaps old data to disk in
large chunks (Section III-B, "Memory Management of the Cache Worker").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from ..obs.records import Category
from ..sim.config import CacheWorkerConfig
from ..sim.disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - typing-only import, avoids a cycle
    from ..audit.ledger import ResourceLedger
    from ..obs.tracer import Tracer


@dataclass
class CacheEntry:
    """Bytes held for one (job, edge) pair on one machine."""

    key: tuple[str, str]
    bytes_in_memory: float
    bytes_on_disk: float = 0.0
    #: Remaining consumer tasks that must read before release.
    pending_consumers: int = 0
    last_touch: float = 0.0
    #: Per-consumer read-back share, snapshotted at spill time from the
    #: consumer count *then* — so late readers pay the same share as early
    #: ones even after ``consume()`` has shrunk ``pending_consumers``.
    spill_read_share: float = 0.0
    #: Spilled bytes already charged to readers; once every spilled byte
    #: has been read back (promoted), further reads are free.
    bytes_read_back: float = 0.0
    #: True for redundant copies written by shuffle replication; replica
    #: bytes are accounted separately on the audit ledger.
    replica: bool = False

    @property
    def total_bytes(self) -> float:
        """Bytes held for this entry across memory and disk."""
        return self.bytes_in_memory + self.bytes_on_disk


class CacheWorkerFullError(RuntimeError):
    """Raised when data cannot fit even after spilling everything eligible."""


class CacheWorker:
    """Memory manager for one machine's shuffle cache."""

    def __init__(self, machine_id: int, config: CacheWorkerConfig, disk: DiskModel) -> None:
        config.validate()
        self.machine_id = machine_id
        self.config = config
        self.disk = disk
        self._entries: "OrderedDict[tuple[str, str], CacheEntry]" = OrderedDict()
        self.bytes_in_memory = 0.0
        self.bytes_spilled_total = 0.0
        self.spill_events = 0
        #: Optional resource-accounting ledger (:mod:`repro.audit`).
        self.ledger: Optional["ResourceLedger"] = None
        #: Optional tracer; failure/recovery instants for drops and job
        #: releases are emitted here, atomically with the ledger hooks.
        self.tracer: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_used(self) -> float:
        """Bytes of shuffle data currently resident in memory."""
        return self.bytes_in_memory

    @property
    def memory_free(self) -> float:
        """Remaining in-memory capacity in bytes."""
        return self.config.memory_capacity - self.bytes_in_memory

    def entry(self, job_id: str, edge_key: str) -> CacheEntry | None:
        """Look up the entry for one (job, edge) pair, if present."""
        return self._entries.get((job_id, edge_key))

    def iter_entries(self) -> Iterator[CacheEntry]:
        """All live entries in LRU order (audit and introspection)."""
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def _resync_memory(self) -> None:
        """Recompute the memory counter from the entry map.

        Incremental ``+=``/``-=`` updates drift (float addition is not
        associative, and repeated subtraction can go slightly negative
        mid-run); the entry map is the ground truth, so public mutators
        resync the counter from it.  Workers hold one entry per live
        (job, edge) pair, so the recompute is a handful of adds.
        """
        self.bytes_in_memory = sum(
            e.bytes_in_memory for e in self._entries.values()
        )

    # ------------------------------------------------------------------
    # Write / read / release
    # ------------------------------------------------------------------
    def write(
        self,
        job_id: str,
        edge_key: str,
        n_bytes: float,
        pending_consumers: int,
        now: float,
        replica: bool = False,
    ) -> float:
        """Store ``n_bytes`` of shuffle data; returns extra delay from spill.

        If the write does not fit, least-recently-used entries are spilled
        to disk in large chunks until it does; the spill time is returned so
        the caller can extend the writing task's shuffle-write phase.
        ``replica`` marks redundant copies written by shuffle replication;
        their bytes are additionally tracked on the ledger's replica
        counters.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if pending_consumers < 0:
            raise ValueError("pending_consumers must be non-negative")
        spill_delay = self._ensure_capacity(n_bytes)
        key = (job_id, edge_key)
        entry = self._entries.get(key)
        new_entry = entry is None
        if entry is None:
            entry = CacheEntry(key=key, bytes_in_memory=0.0, replica=replica)
            self._entries[key] = entry
        mem_delta = disk_delta = 0.0
        if n_bytes > self.config.memory_capacity:
            # Oversized writes streamed straight through disk stay there;
            # readers will pull their share back, so snapshot it now.
            entry.bytes_on_disk += n_bytes
            entry.spill_read_share += n_bytes / max(1, pending_consumers)
            disk_delta = n_bytes
        else:
            entry.bytes_in_memory += n_bytes
            mem_delta = n_bytes
        entry.pending_consumers = max(entry.pending_consumers, pending_consumers)
        entry.last_touch = now
        self._entries.move_to_end(key)
        self._resync_memory()
        if self.ledger is not None:
            self.ledger.cache_written(
                self.machine_id, mem_delta, disk_delta, new_entry
            )
            if entry.replica:
                self.ledger.cache_replica_written(self.machine_id, n_bytes)
        return spill_delay

    def _ensure_capacity(self, n_bytes: float) -> float:
        """Spill LRU entries until ``n_bytes`` fits; return spill seconds."""
        if n_bytes > self.config.memory_capacity:
            # A single write larger than RAM streams straight through disk.
            self.bytes_spilled_total += n_bytes
            self.spill_events += 1
            return self.disk.spill_time(n_bytes)
        spill_delay = 0.0
        spilled_any = False
        for key in list(self._entries):
            if self.memory_free >= n_bytes:
                break
            entry = self._entries[key]
            if entry.bytes_in_memory <= 0:
                continue
            spilled = entry.bytes_in_memory
            spill_delay += self.disk.spill_time(spilled)
            entry.bytes_on_disk += spilled
            # Snapshot each remaining consumer's read-back share *now*:
            # ``pending_consumers`` shrinks as consumers finish, and a
            # share computed at read time from the shrunken count would
            # overcharge late readers for the same spilled bytes.
            entry.spill_read_share += spilled / max(1, entry.pending_consumers)
            self.bytes_in_memory -= spilled
            entry.bytes_in_memory = 0.0
            self.bytes_spilled_total += spilled
            self.spill_events += 1
            spilled_any = True
            if self.ledger is not None:
                self.ledger.cache_spilled(self.machine_id, spilled)
        if spilled_any:
            self._resync_memory()
        if self.memory_free < n_bytes:
            raise CacheWorkerFullError(
                f"cache worker {self.machine_id} cannot fit {n_bytes} bytes"
            )
        return spill_delay

    def read(self, job_id: str, edge_key: str, now: float) -> float:
        """Read one consumer's share; returns extra delay if data was spilled."""
        key = (job_id, edge_key)
        entry = self._entries.get(key)
        if entry is None:
            return 0.0
        entry.last_touch = now
        self._entries.move_to_end(key)
        if entry.bytes_on_disk <= 0 or entry.pending_consumers <= 0:
            return 0.0
        # Charge the share snapshotted at spill time, never more than the
        # spilled bytes not yet read back.  Once every spilled byte has
        # been charged once (promoted back to memory-resident semantics),
        # further reads are free — the old shrinking-denominator formula
        # (`bytes_on_disk / pending_consumers`) double-charged late
        # readers after early consumers had already pulled the data back.
        remaining = entry.bytes_on_disk - entry.bytes_read_back
        share = min(entry.spill_read_share, remaining)
        if share <= 1e-6:  # fully promoted (modulo float dust)
            return 0.0
        entry.bytes_read_back += share
        return self.disk.spill_time(share)

    def consume(self, job_id: str, edge_key: str) -> bool:
        """Mark one consumer finished; release the entry at zero.  Returns
        True when the entry was released."""
        key = (job_id, edge_key)
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.pending_consumers = max(0, entry.pending_consumers - 1)
        if entry.pending_consumers == 0:
            self._release(key)
            return True
        return False

    def drop_all(self, now: float = 0.0, reason: str = "") -> list[CacheEntry]:
        """Lose every entry at once (Cache Worker process death).

        Returns the lost entries so the runtime can re-run their producers;
        spill counters survive (they describe the dead process's history).
        The ledger drop and the obs failure instant are emitted together,
        so chaos repros attribute the lost bytes to the triggering failure
        rather than to whichever reconciliation checkpoint runs next.
        """
        lost = list(self._entries.values())
        mem_lost = sum(e.bytes_in_memory for e in lost)
        disk_lost = sum(e.bytes_on_disk for e in lost)
        replica_lost = sum(e.total_bytes for e in lost if e.replica)
        self._entries.clear()
        self.bytes_in_memory = 0.0
        if self.ledger is not None:
            self.ledger.cache_dropped_all(
                self.machine_id, replica_bytes=replica_lost
            )
        if self.tracer is not None and self.tracer.enabled and lost:
            self.tracer.instant(
                Category.FAILURE,
                "cache.drop_all",
                now,
                scope=f"M{self.machine_id}",
                machine=self.machine_id,
                entries_lost=len(lost),
                bytes_in_memory=mem_lost,
                bytes_on_disk=disk_lost,
                replica_bytes=replica_lost,
                reason=reason,
            )
        return lost

    def release_job(self, job_id: str, now: float = 0.0) -> None:
        """Drop all entries of a job (job completion or restart).

        Emits one obs instant summarizing the released bytes, in the same
        step as the per-entry ledger releases.
        """
        keys = [k for k in self._entries if k[0] == job_id]
        mem = sum(self._entries[k].bytes_in_memory for k in keys)
        disk = sum(self._entries[k].bytes_on_disk for k in keys)
        for key in keys:
            self._release(key)
        if self.tracer is not None and self.tracer.enabled and keys:
            self.tracer.instant(
                Category.CACHE,
                "cache.release_job",
                now,
                job_id=job_id,
                scope=f"M{self.machine_id}",
                entries_released=len(keys),
                bytes_in_memory=mem,
                bytes_on_disk=disk,
            )

    def _release(self, key: tuple[str, str]) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            if self.ledger is not None:
                self.ledger.cache_released(
                    self.machine_id, entry.bytes_in_memory, entry.bytes_on_disk
                )
                if entry.replica:
                    self.ledger.cache_replica_released(
                        self.machine_id, entry.total_bytes
                    )
            # Recompute from the entry map instead of subtracting: repeated
            # float subtraction drifted the counter away from the true sum
            # (the old `< 1e-6` snap-to-zero papered over it only near 0).
            self._resync_memory()
