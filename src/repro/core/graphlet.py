"""Graphlets and the graphlet dependency graph.

A graphlet is a sub-graph of a job DAG whose internal edges are all pipeline
edges (Section III-A1).  Graphlets are the unit of gang scheduling, of
failure recovery, and of Cache-Worker-mediated barrier shuffles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dag import Edge, EdgeMode, JobDAG


@dataclass
class Graphlet:
    """One scheduling unit: a set of pipeline-connected stages."""

    graphlet_id: int
    stage_names: list[str]
    #: The stage from which the partitioning scan started (Fig. 4's
    #: "Trigger Stage").
    trigger_stage: str

    def __contains__(self, stage_name: str) -> bool:
        return stage_name in self._stage_set

    @property
    def _stage_set(self) -> frozenset[str]:
        return frozenset(self.stage_names)

    def task_count(self, dag: JobDAG) -> int:
        """Total tasks across this graphlet's stages."""
        return sum(dag.stage(name).task_count for name in self.stage_names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Graphlet {self.graphlet_id}: {self.stage_names} trigger={self.trigger_stage}>"


@dataclass
class GraphletGraph:
    """The graphlets of a job plus their barrier-edge dependencies."""

    dag: JobDAG
    graphlets: list[Graphlet]
    #: graphlet_id -> set of graphlet_ids it depends on (barrier producers).
    dependencies: dict[int, set[int]] = field(default_factory=dict)
    #: Stage name -> graphlet_id.
    stage_to_graphlet: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stage_to_graphlet:
            for graphlet in self.graphlets:
                for name in graphlet.stage_names:
                    self.stage_to_graphlet[name] = graphlet.graphlet_id
        self._validate_coverage()
        if not self.dependencies:
            self.dependencies = {g.graphlet_id: set() for g in self.graphlets}
            for edge in self.dag.edges:
                src_g = self.stage_to_graphlet[edge.src]
                dst_g = self.stage_to_graphlet[edge.dst]
                if src_g != dst_g:
                    self.dependencies[dst_g].add(src_g)

    def _validate_coverage(self) -> None:
        covered = set(self.stage_to_graphlet)
        missing = set(self.dag.stages) - covered
        if missing:
            raise ValueError(f"stages not assigned to any graphlet: {sorted(missing)}")
        extra = covered - set(self.dag.stages)
        if extra:
            raise ValueError(f"graphlets reference unknown stages: {sorted(extra)}")

    def has_internal_barriers(self) -> bool:
        """True when some graphlet contains a barrier edge internally.

        Swift's partitioner never produces such graphlets; the whole-job
        (JetScope) baseline does, and its tasks idle across those edges —
        that idling is the resource waste Fig. 3 quantifies.
        """
        for edge in self.dag.edges:
            same_unit = self.stage_to_graphlet[edge.src] == self.stage_to_graphlet[edge.dst]
            if same_unit and self.dag.edge_mode(edge) == EdgeMode.BARRIER:
                return True
        return False

    def graphlet(self, graphlet_id: int) -> Graphlet:
        """The graphlet with ``graphlet_id`` (KeyError if absent)."""
        for graphlet in self.graphlets:
            if graphlet.graphlet_id == graphlet_id:
                return graphlet
        raise KeyError(graphlet_id)

    def graphlet_of(self, stage_name: str) -> Graphlet:
        """The graphlet containing ``stage_name``."""
        return self.graphlet(self.stage_to_graphlet[stage_name])

    def cross_edges(self) -> list[Edge]:
        """Edges whose endpoints live in different graphlets."""
        return [
            edge
            for edge in self.dag.edges
            if self.stage_to_graphlet[edge.src] != self.stage_to_graphlet[edge.dst]
        ]

    def internal_edges(self, graphlet_id: int) -> list[Edge]:
        """Edges with both endpoints inside one graphlet."""
        return [
            edge
            for edge in self.dag.edges
            if self.stage_to_graphlet[edge.src] == graphlet_id
            and self.stage_to_graphlet[edge.dst] == graphlet_id
        ]

    def submission_order(self) -> list[int]:
        """Topological order over graphlets (Kahn; deterministic by id)."""
        indegree = {gid: len(deps) for gid, deps in self.dependencies.items()}
        dependents: dict[int, list[int]] = {gid: [] for gid in self.dependencies}
        for gid, deps in self.dependencies.items():
            for dep in deps:
                dependents[dep].append(gid)
        ready = sorted(gid for gid, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while ready:
            gid = ready.pop(0)
            order.append(gid)
            for successor in sorted(dependents[gid]):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self.dependencies):
            raise ValueError("graphlet dependency graph contains a cycle")
        return order

    def __len__(self) -> int:
        return len(self.graphlets)
