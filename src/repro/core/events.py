"""Structured runtime event log.

The Swift Admin works in an event-driven manner (Section II-C); this module
gives the runtime an inspectable audit trail of those events — job
admission, graphlet submission, resource grants, stage/unit/job completion,
failures, and recoveries.  Tests and debugging tools consume it; the
overhead is a single append per event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class EventKind(enum.Enum):
    """Controller-level event types recorded in the audit trail."""
    JOB_SUBMITTED = "job_submitted"
    UNIT_REQUESTED = "unit_requested"
    UNIT_GRANTED = "unit_granted"
    STAGE_COMPLETED = "stage_completed"
    UNIT_COMPLETED = "unit_completed"
    JOB_COMPLETED = "job_completed"
    JOB_FAILED = "job_failed"
    JOB_RESTARTED = "job_restarted"
    FAILURE_INJECTED = "failure_injected"
    TASK_RECOVERED = "task_recovered"
    MACHINE_QUARANTINED = "machine_quarantined"
    MACHINE_RECOVERED = "machine_recovered"
    CACHE_WORKER_LOST = "cache_worker_lost"


@dataclass(frozen=True)
class RuntimeEvent:
    """One entry in the audit trail."""

    time: float
    kind: EventKind
    job_id: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" {self.detail}" if self.detail else ""
        return f"[{self.time:10.3f}] {self.kind.value:<18} {self.job_id}{suffix}"


@dataclass
class EventLog:
    """Append-only event log with query helpers.

    ``capacity`` bounds memory for long replays; older events are dropped
    from the front once exceeded (0 means unbounded).
    """

    capacity: int = 0
    events: list[RuntimeEvent] = field(default_factory=list)
    dropped: int = 0

    def record(
        self, time: float, kind: EventKind, job_id: str, detail: str = ""
    ) -> None:
        """Append one event, trimming the front past ``capacity``."""
        self.events.append(RuntimeEvent(time, kind, job_id, detail))
        if self.capacity and len(self.events) > self.capacity:
            overflow = len(self.events) - self.capacity
            del self.events[:overflow]
            self.dropped += overflow

    def of_kind(self, kind: EventKind) -> list[RuntimeEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def for_job(self, job_id: str) -> list[RuntimeEvent]:
        """All events of one job, in order."""
        return [e for e in self.events if e.job_id == job_id]

    def first(self, kind: EventKind, job_id: Optional[str] = None) -> Optional[RuntimeEvent]:
        """The earliest event of ``kind`` (optionally for one job)."""
        for event in self.events:
            if event.kind == kind and (job_id is None or event.job_id == job_id):
                return event
        return None

    def __iter__(self) -> Iterator[RuntimeEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format_tail(self, n: int = 20) -> str:
        """Render the last ``n`` events, one per line."""
        return "\n".join(str(e) for e in self.events[-n:])
