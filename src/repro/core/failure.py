"""Failure classification, detection latency, and recovery planning.

Section IV distinguishes, by where the failed task sits relative to its
graphlet, three recovery cases — intra-graphlet (with idempotent and
non-idempotent sub-cases), input failure, output failure — plus the
"useless recovery" class of application-logic errors that are reported
rather than retried.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..sim.config import AdminConfig
from ..sim.failures import FailureKind
from .dag import JobDAG
from .graphlet import GraphletGraph


class RecoveryCase(enum.Enum):
    """Where a failed task sits relative to its graphlet (Section IV-B)."""
    #: Failed task, predecessors and successors all in one graphlet.
    INTRA_GRAPHLET = "intra_graphlet"
    #: Predecessors in a different graphlet (Fig. 7(a)): re-fetch from their
    #: Cache Workers, no producer notification needed.
    INPUT_FAILURE = "input_failure"
    #: Successors in a different graphlet (Fig. 7(b)): just rewrite to the
    #: local Cache Worker, no consumer channel updates needed.
    OUTPUT_FAILURE = "output_failure"
    #: Both predecessors and successors cross graphlet boundaries.
    INPUT_AND_OUTPUT = "input_and_output"
    #: Application-logic error: report, do not retry (Section IV-C).
    USELESS = "useless"


@dataclass(frozen=True)
class RecoveryDecision:
    """What to re-run and what to merely re-send for one failure."""

    case: RecoveryCase
    #: Stage names whose affected tasks must re-run ("" when none).
    rerun_stages: tuple[str, ...] = ()
    #: Predecessor stages that must re-send cached shuffle data (cheap;
    #: idempotent-recovery path within a graphlet).
    resend_from: tuple[str, ...] = ()
    #: True when the failure needs no action at all (idempotent task whose
    #: output was already fully received by every successor).
    noop: bool = False


def classify_failure(
    dag: JobDAG,
    graphlets: GraphletGraph,
    stage_name: str,
    kind: FailureKind = FailureKind.TASK_CRASH,
) -> RecoveryCase:
    """Determine the recovery case for a failure in ``stage_name``."""
    if kind == FailureKind.APPLICATION_ERROR:
        return RecoveryCase.USELESS
    own = graphlets.stage_to_graphlet[stage_name]
    preds_cross = any(
        graphlets.stage_to_graphlet[p] != own for p in dag.predecessors(stage_name)
    )
    succs_cross = any(
        graphlets.stage_to_graphlet[s] != own for s in dag.successors(stage_name)
    )
    if preds_cross and succs_cross:
        return RecoveryCase.INPUT_AND_OUTPUT
    if preds_cross:
        return RecoveryCase.INPUT_FAILURE
    if succs_cross:
        return RecoveryCase.OUTPUT_FAILURE
    return RecoveryCase.INTRA_GRAPHLET


def executed_successor_closure(
    dag: JobDAG,
    graphlets: GraphletGraph,
    stage_name: str,
    has_executed: "dict[str, bool] | None" = None,
) -> list[str]:
    """Same-graphlet successors (transitively) that must re-run when a
    non-idempotent task fails (Section IV-B1(b)).

    ``has_executed`` maps stage name -> whether any of its tasks have run;
    unexecuted successors need no recovery.  ``None`` means assume all
    executed (worst case).
    """
    own = graphlets.stage_to_graphlet[stage_name]
    closure: list[str] = []
    seen = {stage_name}
    frontier = [stage_name]
    while frontier:
        current = frontier.pop()
        for succ in dag.successors(current):
            if succ in seen:
                continue
            if graphlets.stage_to_graphlet[succ] != own:
                continue
            seen.add(succ)
            if has_executed is not None and not has_executed.get(succ, False):
                continue
            closure.append(succ)
            frontier.append(succ)
    return closure


def plan_recovery(
    dag: JobDAG,
    graphlets: GraphletGraph,
    stage_name: str,
    kind: FailureKind = FailureKind.TASK_CRASH,
    task_finished: bool = False,
    output_fully_consumed: bool = False,
    has_executed: "dict[str, bool] | None" = None,
) -> RecoveryDecision:
    """Build the full recovery decision for one failed task.

    Mirrors Section IV-B: idempotent finished tasks whose output every
    successor already received need nothing; otherwise the task re-runs.
    Same-graphlet predecessors re-send cached data (they never re-run);
    cross-graphlet predecessors need no action because the re-launched task
    pulls from their Cache Workers.  Non-idempotent tasks additionally drag
    their executed same-graphlet successors into the re-run set.
    """
    case = classify_failure(dag, graphlets, stage_name, kind)
    if case == RecoveryCase.USELESS:
        return RecoveryDecision(case=case, noop=False)
    stage = dag.stage(stage_name)
    if task_finished and stage.idempotent and output_fully_consumed:
        return RecoveryDecision(case=case, noop=True)

    rerun = [stage_name]
    if not stage.idempotent:
        rerun.extend(
            executed_successor_closure(dag, graphlets, stage_name, has_executed)
        )

    own = graphlets.stage_to_graphlet[stage_name]
    resend = tuple(
        p
        for p in dag.predecessors(stage_name)
        if graphlets.stage_to_graphlet[p] == own
        # Pipeline predecessors push; barrier (cross-unit) data sits in
        # Cache Workers and needs no re-send.
    )
    return RecoveryDecision(case=case, rerun_stages=tuple(rerun), resend_from=resend)


def detection_delay(
    kind: FailureKind,
    admin: AdminConfig,
    n_machines: int,
    heartbeat_phase: float = 0.5,
) -> float:
    """Seconds from failure to Admin awareness.

    Process-level failures self-report quickly (Section IV-A's lazy/passive
    tracking); machine crashes are caught by the next heartbeat, i.e. after
    ``heartbeat_phase`` of the interval on average.
    """
    if kind in (
        FailureKind.TASK_CRASH,
        FailureKind.PROCESS_RESTART,
        FailureKind.APPLICATION_ERROR,
        # Quarantine is an Admin-side decision and Cache Worker death is
        # self-reported by the host machine's agent — both surface fast.
        FailureKind.MACHINE_QUARANTINE,
        FailureKind.CACHE_WORKER_LOSS,
    ):
        return admin.self_report_latency
    if kind == FailureKind.MACHINE_CRASH:
        if not 0 <= heartbeat_phase <= 1:
            raise ValueError("heartbeat_phase must be in [0, 1]")
        return admin.heartbeat_interval(n_machines) * heartbeat_phase
    raise ValueError(f"unknown failure kind {kind}")


@dataclass
class MachineHealthMonitor:
    """Tracks per-machine task failures; flags unhealthy machines read-only.

    Section IV-A: "When a machine is found unhealthy (e.g., a large quantity
    of tasks on the machine failed in a short time), Swift Admin will mark
    it as read-only and stop scheduling new tasks to it."
    """

    admin: AdminConfig
    _failures: dict[int, list[float]] = field(default_factory=dict)
    read_only: set[int] = field(default_factory=set)

    def record_failure(self, machine_id: int, now: float) -> bool:
        """Record one failure; returns True when the machine just became
        read-only."""
        history = self._failures.setdefault(machine_id, [])
        history.append(now)
        cutoff = now - self.admin.unhealthy_window
        history[:] = [t for t in history if t >= cutoff]
        if (
            machine_id not in self.read_only
            and len(history) >= self.admin.unhealthy_task_failures
        ):
            self.read_only.add(machine_id)
            return True
        return False

    def quarantine(self, machine_id: int) -> bool:
        """Force a machine read-only (chaos / operator action); returns True
        when it was not already quarantined."""
        if machine_id in self.read_only:
            return False
        self.read_only.add(machine_id)
        return True

    def recover(self, machine_id: int) -> bool:
        """Clear a machine's read-only flag and failure history so a new
        quarantine episode can begin; returns True when it was read-only."""
        self._failures.pop(machine_id, None)
        if machine_id in self.read_only:
            self.read_only.discard(machine_id)
            return True
        return False
