"""repro — a reproduction of *Swift: Reliable and Low-Latency Data
Processing at Cloud Scale* (ICDE 2021).

Public API quick tour::

    from repro import (
        Cluster, SimConfig, swift_policy, SwiftRuntime, Job,
    )
    from repro.workloads import tpch

    cluster = Cluster.build(n_machines=100, executors_per_machine=32)
    runtime = SwiftRuntime(cluster, swift_policy())
    result = runtime.execute(Job(dag=tpch.query_dag(9)))
    print(result.metrics.run_time)

Sub-packages:

* :mod:`repro.sim` — discrete-event cluster simulator (the substrate).
* :mod:`repro.core` — the paper's contribution: graphlet partitioning,
  fine-grained scheduling, adaptive in-network shuffle, failure recovery.
* :mod:`repro.sql` — the SQL-like front end (Fig. 1) and a row-level
  executor for the examples.
* :mod:`repro.workloads` — TPC-H, Terasort, and trace-calibrated workloads.
* :mod:`repro.baselines` — Spark, JetScope, and Bubble Execution models.
* :mod:`repro.experiments` — harnesses regenerating every table/figure.
"""

from .core import (
    Edge,
    EdgeMode,
    ExecutionPolicy,
    FailureRecovery,
    Job,
    JobDAG,
    JobMetrics,
    JobResult,
    LaunchModel,
    Operator,
    OperatorKind,
    ShuffleScheme,
    Stage,
    SubmissionOrder,
    SwiftPartitioner,
    SwiftRuntime,
    swift_policy,
)
from .sim import (
    Cluster,
    FailureKind,
    FailurePlan,
    FailureSpec,
    SimConfig,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Edge",
    "EdgeMode",
    "ExecutionPolicy",
    "FailureKind",
    "FailurePlan",
    "FailureRecovery",
    "FailureSpec",
    "Job",
    "JobDAG",
    "JobMetrics",
    "JobResult",
    "LaunchModel",
    "Operator",
    "OperatorKind",
    "ShuffleScheme",
    "SimConfig",
    "Simulator",
    "Stage",
    "SubmissionOrder",
    "SwiftPartitioner",
    "SwiftRuntime",
    "swift_policy",
    "__version__",
]
