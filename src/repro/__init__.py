"""repro — a reproduction of *Swift: Reliable and Low-Latency Data
Processing at Cloud Scale* (ICDE 2021).

The stable entry point is the :mod:`repro.api` facade (re-exported here)::

    from repro import RuntimeConfig, Simulation
    from repro.workloads import tpch

    sim = Simulation(RuntimeConfig(n_machines=100, executors_per_machine=32))
    outcome = sim.run(tpch.query_job(9), trace=True)
    print(outcome.makespan, len(outcome.trace))

Lower-level classes (``SwiftRuntime``, ``Cluster``, ``Simulator``) stay
importable for advanced use.

Sub-packages:

* :mod:`repro.api` — the stable facade: ``Simulation``, ``Runtime``,
  ``RuntimeConfig``, ``TraceConfig``, typed results.
* :mod:`repro.obs` — structured tracing and metrics export (JSONL and
  Chrome ``trace_event`` / Perfetto).
* :mod:`repro.sim` — discrete-event cluster simulator (the substrate).
* :mod:`repro.core` — the paper's contribution: graphlet partitioning,
  fine-grained scheduling, adaptive in-network shuffle, failure recovery.
* :mod:`repro.sql` — the SQL-like front end (Fig. 1) plus two answer
  engines: a row-level executor and a vectorized columnar engine behind
  an adaptive dispatcher (:func:`repro.api.run_sql`).
* :mod:`repro.chaos` — deterministic chaos engine: seeded multi-failure
  campaigns, invariant checking, recovery watchdogs, and seed shrinking.
* :mod:`repro.service` — the multi-tenant job-submission gateway behind
  :class:`repro.api.Service`: Poisson/trace arrivals, per-tenant quotas,
  admission control, weighted fair-share + earliest-deadline-first
  dispatch (PAPER.md §VI: Swift as a hosted service).
* :mod:`repro.workloads` — TPC-H, Terasort, and trace-calibrated workloads.
* :mod:`repro.baselines` — Spark, JetScope, and Bubble Execution models.
* :mod:`repro.experiments` — harnesses regenerating every table/figure.
"""

from .api import (
    AdmissionPolicy,
    ChaosEngine,
    ChaosReport,
    QueryOutcome,
    QueuePolicy,
    Runtime,
    RuntimeConfig,
    Service,
    ServiceConfig,
    ServiceResult,
    Simulation,
    SimulationResult,
    SubmitHandle,
    TenantReport,
    TenantSpec,
    TraceConfig,
    run_sql,
    sql_engine_for,
)
from .core import (
    Edge,
    EdgeMode,
    ExecutionPolicy,
    FailureRecovery,
    Job,
    JobDAG,
    JobMetrics,
    JobResult,
    LaunchModel,
    Operator,
    OperatorKind,
    ShuffleScheme,
    Stage,
    SubmissionOrder,
    SwiftPartitioner,
    SwiftRuntime,
    swift_policy,
)
from .obs import (
    MetricsRegistry,
    RecordingTracer,
    TraceRecord,
    Tracer,
)
from .sim import (
    Cluster,
    FailureKind,
    FailurePlan,
    FailureSpec,
    SimConfig,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionPolicy",
    "ChaosEngine",
    "ChaosReport",
    "Cluster",
    "Edge",
    "EdgeMode",
    "ExecutionPolicy",
    "FailureKind",
    "FailurePlan",
    "FailureRecovery",
    "FailureSpec",
    "Job",
    "JobDAG",
    "JobMetrics",
    "JobResult",
    "LaunchModel",
    "MetricsRegistry",
    "Operator",
    "OperatorKind",
    "QueryOutcome",
    "QueuePolicy",
    "RecordingTracer",
    "Runtime",
    "RuntimeConfig",
    "Service",
    "ServiceConfig",
    "ServiceResult",
    "ShuffleScheme",
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "Simulator",
    "Stage",
    "SubmissionOrder",
    "SubmitHandle",
    "TenantReport",
    "TenantSpec",
    "SwiftPartitioner",
    "SwiftRuntime",
    "TraceConfig",
    "TraceRecord",
    "Tracer",
    "run_sql",
    "sql_engine_for",
    "swift_policy",
    "__version__",
]
