"""Campaign shrinking: minimize a failing campaign to a small repro.

Exploits sim determinism: re-running a candidate campaign is cheap and
exact, so a ddmin-style greedy event-subset pass followed by per-event
time bisection converges quickly.  The returned campaign still violates at
least one invariant and is locally minimal — removing any single event
makes it pass.
"""

from __future__ import annotations

from typing import Callable

from .campaign import Campaign, ChaosEvent

#: A predicate that runs a campaign and reports whether it still fails.
StillFails = Callable[[Campaign], bool]


def _subset_pass(
    campaign: Campaign, still_fails: StillFails, budget: list[int]
) -> Campaign:
    """Greedy delta-debugging over the event list.

    Tries dropping progressively smaller chunks (half, quarter, ...,
    single events); keeps any reduction that still fails.
    """
    events = list(campaign.events)
    chunk = max(1, len(events) // 2)
    while chunk >= 1 and len(events) > 1:
        reduced = False
        start = 0
        while start < len(events) and budget[0] > 0:
            candidate = events[:start] + events[start + chunk:]
            if not candidate:
                start += chunk
                continue
            budget[0] -= 1
            if still_fails(campaign.replace_events(candidate)):
                events = candidate
                reduced = True
                # Do not advance: the chunk at ``start`` changed.
            else:
                start += chunk
        if not reduced or budget[0] <= 0:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return campaign.replace_events(events)


def _bisect_times(
    campaign: Campaign,
    still_fails: StillFails,
    budget: list[int],
    rounds: int = 6,
) -> Campaign:
    """Per-event time bisection toward the earliest still-failing time.

    Earlier injection times make repros easier to read (less healthy
    execution before the trigger) and often collapse distinct seeds onto
    the same canonical schedule.
    """
    events = list(campaign.events)
    for i, event in enumerate(events):
        lo, hi = 0.0, event.at_fraction
        best = event.at_fraction
        for _ in range(rounds):
            if budget[0] <= 0 or hi - lo < 1e-3:
                break
            mid = round((lo + hi) / 2, 4)
            trial = ChaosEvent(
                kind=event.kind,
                at_fraction=mid,
                machine_id=event.machine_id,
                stage=event.stage,
                task_index=event.task_index,
                duration=event.duration,
            )
            candidate = events[:i] + [trial] + events[i + 1:]
            budget[0] -= 1
            if still_fails(campaign.replace_events(candidate)):
                best = mid
                hi = mid
            else:
                lo = mid
        if best != event.at_fraction:
            events[i] = ChaosEvent(
                kind=event.kind,
                at_fraction=best,
                machine_id=event.machine_id,
                stage=event.stage,
                task_index=event.task_index,
                duration=event.duration,
            )
    return campaign.replace_events(events)


def shrink_campaign(
    campaign: Campaign,
    still_fails: StillFails,
    max_runs: int = 120,
) -> Campaign:
    """Minimize ``campaign`` while it keeps failing ``still_fails``.

    ``max_runs`` bounds the total number of candidate executions across
    both passes.  The input campaign must itself fail; the result is marked
    ``shrunk=True``.
    """
    if not still_fails(campaign):
        raise ValueError("cannot shrink a passing campaign")
    budget = [max_runs]
    shrunk = _subset_pass(campaign, still_fails, budget)
    shrunk = _bisect_times(shrunk, still_fails, budget)
    # One more subset pass: earlier times sometimes make events redundant.
    shrunk = _subset_pass(shrunk, still_fails, budget)
    shrunk.shrunk = True
    return shrunk
