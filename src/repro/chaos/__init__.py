"""Deterministic chaos engine: randomized multi-failure campaigns.

Generate seeded campaigns of composed failures, inject them into any
workload through the event kernel, check a library of invariants after
every run, and shrink violations to minimal replayable repro files.

Quick start::

    from repro.chaos import ChaosEngine

    engine = ChaosEngine(workload="terasort", profile="standard")
    report = engine.sweep(range(20))
    assert report.ok, report.format_summary()
"""

from .campaign import (
    Campaign,
    ChaosEvent,
    ChaosProfile,
    PROFILES,
    Perturbations,
    generate_campaign,
)
from .engine import (
    CampaignResult,
    ChaosEngine,
    ChaosReport,
    WORKLOADS,
    WorkloadSpec,
)
from .invariants import Violation, check_all
from .shrink import shrink_campaign

__all__ = [
    "Campaign",
    "CampaignResult",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosProfile",
    "ChaosReport",
    "PROFILES",
    "Perturbations",
    "Violation",
    "WORKLOADS",
    "WorkloadSpec",
    "check_all",
    "generate_campaign",
    "shrink_campaign",
]
