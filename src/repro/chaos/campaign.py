"""Chaos campaigns: seeded random schedules of composed failures.

A :class:`Campaign` is a deterministic function of ``(seed, workload,
profile)``: the same triple always generates the same events and
perturbations, which is what makes shrinking (:mod:`repro.chaos.shrink`)
and replayable JSON repro files possible.

Event times are expressed as *fractions* of the failure-free baseline
makespan (like the paper's Fig. 14 normalization), so one campaign is
meaningful across workloads of very different absolute durations.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..sim.config import SimConfig
from ..sim.failures import FailureKind, FailurePlan, FailureSpec

#: Quantized perturbation levels.  Coarse on purpose: the chaos engine
#: caches one failure-free baseline per (workload, perturbations) pair, so
#: a small value set keeps the cache hot across a sweep.
NETWORK_FACTORS = (1.0, 0.5, 0.25)
CACHE_FACTORS = (1.0, 0.25, 0.05)


@dataclass(frozen=True)
class Perturbations:
    """Config-level degradations applied for the whole run.

    ``network_factor`` scales NIC bandwidth (degraded links);
    ``cache_factor`` scales Cache Worker memory (pressure -> LRU spills).
    """

    network_factor: float = 1.0
    cache_factor: float = 1.0

    def apply(self, config: SimConfig) -> SimConfig:
        """Return a perturbed copy of ``config`` (the input is untouched)."""
        out = config.copy()
        out.network.nic_bandwidth *= self.network_factor
        out.cache_worker.memory_capacity *= self.cache_factor
        return out

    def key(self) -> tuple[float, float]:
        """Hashable identity used for baseline caching."""
        return (self.network_factor, self.cache_factor)

    def to_dict(self) -> dict[str, float]:
        return {
            "network_factor": self.network_factor,
            "cache_factor": self.cache_factor,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Perturbations":
        return cls(
            network_factor=float(payload.get("network_factor", 1.0)),
            cache_factor=float(payload.get("cache_factor", 1.0)),
        )


@dataclass(frozen=True)
class ChaosEvent:
    """One discrete failure in a campaign, positioned by baseline fraction."""

    kind: str
    at_fraction: float
    machine_id: Optional[int] = None
    stage: Optional[str] = None
    task_index: Optional[int] = None
    #: Quarantine storms recover after ``duration`` simulated seconds.
    duration: Optional[float] = None

    def to_spec(self) -> FailureSpec:
        """Materialize as an injectable :class:`FailureSpec`."""
        return FailureSpec(
            kind=FailureKind(self.kind),
            stage=self.stage,
            task_index=self.task_index,
            machine_id=self.machine_id,
            at_fraction=self.at_fraction,
            duration=self.duration,
        )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosEvent":
        return cls(
            kind=str(payload["kind"]),
            at_fraction=float(payload["at_fraction"]),
            machine_id=payload.get("machine_id"),
            stage=payload.get("stage"),
            task_index=payload.get("task_index"),
            duration=payload.get("duration"),
        )


@dataclass(frozen=True)
class ChaosProfile:
    """Hostility level of campaign generation."""

    name: str
    min_events: int
    max_events: int
    #: (kind value, weight) pairs for event sampling.
    kind_weights: tuple[tuple[str, float], ...]
    #: Fraction of campaigns that also degrade the network / cache memory.
    perturbation_probability: float
    #: Per-campaign cap on machine crashes as a fraction of the cluster;
    #: keeps gang scheduling satisfiable so livelock signals a real bug.
    max_crash_fraction: float = 0.25
    #: Probability a campaign includes an application error (which fails the
    #: job by design; the invariants expect it).
    app_error_probability: float = 0.0

    def crash_cap(self, n_machines: int) -> int:
        """Most machines this profile may kill on an ``n_machines`` cluster."""
        return max(1, int(n_machines * self.max_crash_fraction))


PROFILES: dict[str, ChaosProfile] = {
    "light": ChaosProfile(
        name="light",
        min_events=1,
        max_events=3,
        kind_weights=(
            (FailureKind.TASK_CRASH.value, 6.0),
            (FailureKind.PROCESS_RESTART.value, 2.0),
            (FailureKind.CACHE_WORKER_LOSS.value, 1.0),
        ),
        perturbation_probability=0.0,
    ),
    "standard": ChaosProfile(
        name="standard",
        min_events=2,
        max_events=6,
        kind_weights=(
            (FailureKind.TASK_CRASH.value, 5.0),
            (FailureKind.PROCESS_RESTART.value, 2.0),
            (FailureKind.MACHINE_CRASH.value, 1.5),
            (FailureKind.MACHINE_QUARANTINE.value, 1.5),
            (FailureKind.CACHE_WORKER_LOSS.value, 1.0),
        ),
        perturbation_probability=0.3,
    ),
    "hostile": ChaosProfile(
        name="hostile",
        min_events=4,
        max_events=10,
        kind_weights=(
            (FailureKind.TASK_CRASH.value, 4.0),
            (FailureKind.PROCESS_RESTART.value, 2.0),
            (FailureKind.MACHINE_CRASH.value, 2.0),
            (FailureKind.MACHINE_QUARANTINE.value, 3.0),
            (FailureKind.CACHE_WORKER_LOSS.value, 2.0),
        ),
        perturbation_probability=0.6,
        app_error_probability=0.1,
    ),
    # Shuffle-v2 targeted profiles: each stresses one leg of the resilient
    # adaptive shuffle (replication failover, mode switching under pressure,
    # and load-aware replica placement under skewed capacity).
    "cache-worker-loss-during-shuffle": ChaosProfile(
        name="cache-worker-loss-during-shuffle",
        min_events=2,
        max_events=6,
        kind_weights=(
            (FailureKind.CACHE_WORKER_LOSS.value, 6.0),
            (FailureKind.TASK_CRASH.value, 1.0),
        ),
        perturbation_probability=0.2,
    ),
    "mode-switch-under-crash": ChaosProfile(
        name="mode-switch-under-crash",
        min_events=2,
        max_events=6,
        kind_weights=(
            (FailureKind.MACHINE_CRASH.value, 2.0),
            (FailureKind.PROCESS_RESTART.value, 2.0),
            (FailureKind.CACHE_WORKER_LOSS.value, 2.0),
            (FailureKind.TASK_CRASH.value, 1.0),
        ),
        # Always perturb: shrunken cache capacity is what drives the
        # pressure-demotion arm of the mode controller mid-campaign.
        perturbation_probability=1.0,
    ),
    "replica-placement-skew": ChaosProfile(
        name="replica-placement-skew",
        min_events=1,
        max_events=4,
        kind_weights=(
            (FailureKind.MACHINE_QUARANTINE.value, 3.0),
            (FailureKind.CACHE_WORKER_LOSS.value, 3.0),
        ),
        # Skewed capacity makes load-aware placement earn its keep.
        perturbation_probability=1.0,
    ),
}


@dataclass
class Campaign:
    """One generated (or shrunk) schedule of failures plus perturbations."""

    seed: int
    workload: str
    profile: str
    events: list[ChaosEvent] = field(default_factory=list)
    perturbations: Perturbations = field(default_factory=Perturbations)
    #: True once the shrinker has minimized this campaign.
    shrunk: bool = False

    def to_failure_plan(self) -> FailurePlan:
        """The injectable plan for this campaign."""
        plan = FailurePlan()
        for event in self.events:
            plan.add(event.to_spec())
        return plan

    def has_kind(self, kind: FailureKind) -> bool:
        """True when any event is of ``kind``."""
        return any(e.kind == kind.value for e in self.events)

    def replace_events(self, events: list[ChaosEvent]) -> "Campaign":
        """A copy of this campaign with a different event list."""
        return Campaign(
            seed=self.seed,
            workload=self.workload,
            profile=self.profile,
            events=list(events),
            perturbations=self.perturbations,
            shrunk=self.shrunk,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "workload": self.workload,
            "profile": self.profile,
            "events": [e.to_dict() for e in self.events],
            "perturbations": self.perturbations.to_dict(),
            "shrunk": self.shrunk,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Campaign":
        return cls(
            seed=int(payload["seed"]),
            workload=str(payload["workload"]),
            profile=str(payload["profile"]),
            events=[ChaosEvent.from_dict(e) for e in payload.get("events", [])],
            perturbations=Perturbations.from_dict(
                payload.get("perturbations", {})
            ),
            shrunk=bool(payload.get("shrunk", False)),
        )

    def save(self, path: str) -> None:
        """Write the replayable JSON repro file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Campaign":
        """Rebuild a campaign from its JSON repro file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def _weighted_choice(rng: random.Random, weights: tuple[tuple[str, float], ...]) -> str:
    total = sum(w for _, w in weights)
    pick = rng.random() * total
    acc = 0.0
    for value, weight in weights:
        acc += weight
        if pick < acc:
            return value
    return weights[-1][0]


def generate_campaign(
    seed: int,
    workload: str,
    profile: ChaosProfile,
    n_machines: int,
) -> Campaign:
    """Deterministically generate one campaign.

    ``random.Random`` is seeded with a string key, which hashes via SHA-512
    (stable across processes and platforms, unlike object ``hash()``).
    """
    rng = random.Random(f"chaos:{seed}:{workload}:{profile.name}")
    n_events = rng.randint(profile.min_events, profile.max_events)
    crash_budget = profile.crash_cap(n_machines)
    events: list[ChaosEvent] = []
    for _ in range(n_events):
        kind = _weighted_choice(rng, profile.kind_weights)
        if (
            kind == FailureKind.MACHINE_CRASH.value
            and sum(1 for e in events if e.kind == kind) >= crash_budget
        ):
            kind = FailureKind.TASK_CRASH.value
        at = round(rng.uniform(0.02, 0.85), 4)
        machine_id: Optional[int] = None
        duration: Optional[float] = None
        if kind in (
            FailureKind.MACHINE_CRASH.value,
            FailureKind.MACHINE_QUARANTINE.value,
            FailureKind.CACHE_WORKER_LOSS.value,
        ):
            machine_id = rng.randrange(n_machines)
        if kind == FailureKind.MACHINE_QUARANTINE.value:
            # Storms always recover; a permanent quarantine would make
            # capacity-starved livelock a generation artifact, not a bug.
            duration = round(rng.uniform(5.0, 30.0), 3)
        events.append(
            ChaosEvent(
                kind=kind, at_fraction=at, machine_id=machine_id,
                duration=duration,
            )
        )
    if rng.random() < profile.app_error_probability:
        events.append(
            ChaosEvent(
                kind=FailureKind.APPLICATION_ERROR.value,
                at_fraction=round(rng.uniform(0.05, 0.6), 4),
            )
        )
    events.sort(key=lambda e: e.at_fraction)
    perturbations = Perturbations()
    if rng.random() < profile.perturbation_probability:
        perturbations = Perturbations(
            network_factor=rng.choice(NETWORK_FACTORS),
            cache_factor=rng.choice(CACHE_FACTORS),
        )
    return Campaign(
        seed=seed,
        workload=workload,
        profile=profile.name,
        events=events,
        perturbations=perturbations,
    )
