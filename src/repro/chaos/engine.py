"""The chaos engine: generate -> inject -> check -> shrink -> report.

One :class:`ChaosEngine` is bound to a workload and a hostility profile.
Per campaign it (1) obtains the failure-free baseline for the campaign's
perturbations (cached per perturbation level), (2) replays the workload
with the campaign's failure plan injected through the event kernel under a
simulated-time watchdog, (3) runs the invariant library, and (4) on a
violation shrinks the campaign to a minimal repro and emits a replayable
JSON file plus ``repro.obs`` failure/recovery spans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.policies import swift_policy
from ..core.runtime import JobResult, SwiftRuntime
from ..obs.exporters import write_jsonl
from ..obs.records import Category
from ..obs.tracer import RecordingTracer
from ..sim.cluster import Cluster
from ..sim.config import SimConfig
from ..workloads import terasort, tpch
from ..workloads.traces import TraceConfig, generate_trace
from .campaign import (
    Campaign,
    ChaosProfile,
    PROFILES,
    Perturbations,
    generate_campaign,
)
from .invariants import Violation, check_all
from .shrink import shrink_campaign

#: Watchdog: a run must terminate within this multiple of the failure-free
#: makespan (plus slack for backoff chains and quarantine durations).
WATCHDOG_FACTOR = 8.0
WATCHDOG_SLACK = 180.0


@dataclass(frozen=True)
class WorkloadSpec:
    """A chaos-able workload: fresh jobs on a fixed cluster shape."""

    name: str
    n_machines: int
    executors_per_machine: int
    build: Callable[[], list]


def _terasort_jobs() -> list:
    return [terasort.terasort_job(24, 24)]


def _tpch_q13_jobs() -> list:
    return [tpch.query_job(13, scale=0.1)]


def _trace_jobs() -> list:
    config = TraceConfig(
        n_jobs=6, mean_interarrival=5.0, max_stage_tasks=48, seed=23
    )
    return generate_trace(config)


WORKLOADS: dict[str, WorkloadSpec] = {
    "terasort": WorkloadSpec("terasort", 8, 8, _terasort_jobs),
    "tpch-q13": WorkloadSpec("tpch-q13", 100, 32, _tpch_q13_jobs),
    "trace": WorkloadSpec("trace", 16, 16, _trace_jobs),
}


@dataclass
class _Baseline:
    """Failure-free reference run for one perturbation level."""

    results: list[JobResult]
    makespan: float
    reference: dict[str, float]


@dataclass
class CampaignResult:
    """Outcome of one campaign run (plus shrink artifacts on failure)."""

    campaign: Campaign
    violations: list[Violation]
    makespan: float
    baseline_makespan: float
    shrunk: Optional[Campaign] = None
    repro_path: Optional[str] = None
    trace_path: Optional[str] = None

    @property
    def passed(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.campaign.seed,
            "workload": self.campaign.workload,
            "profile": self.campaign.profile,
            "n_events": len(self.campaign.events),
            "passed": self.passed,
            "violations": [v.to_dict() for v in self.violations],
            "makespan": self.makespan,
            "baseline_makespan": self.baseline_makespan,
            "shrunk": None if self.shrunk is None else self.shrunk.to_dict(),
            "repro_path": self.repro_path,
            "trace_path": self.trace_path,
        }


@dataclass
class ChaosReport:
    """Aggregate result of a campaign sweep (the ``repro chaos`` output)."""

    workload: str
    profile: str
    runs: int
    passed: int
    failed: int
    campaigns: list[dict[str, Any]] = field(default_factory=list)
    repro_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the whole sweep passed."""
        return self.failed == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "profile": self.profile,
            "runs": self.runs,
            "passed": self.passed,
            "failed": self.failed,
            "campaigns": self.campaigns,
            "repro_files": self.repro_files,
        }

    def format_summary(self) -> str:
        """Human-readable sweep summary."""
        lines = [
            f"chaos sweep: workload={self.workload} profile={self.profile} "
            f"runs={self.runs} passed={self.passed} failed={self.failed}"
        ]
        for entry in self.campaigns:
            if entry["passed"]:
                continue
            lines.append(
                f"  seed {entry['seed']}: {len(entry['violations'])} violation(s)"
            )
            for violation in entry["violations"][:4]:
                lines.append(
                    f"    [{violation['invariant']}] {violation['message']}"
                )
            if entry.get("repro_path"):
                lines.append(f"    repro: {entry['repro_path']}")
        return "\n".join(lines)


class ChaosEngine:
    """Deterministic chaos campaigns against one workload."""

    def __init__(
        self,
        workload: str = "terasort",
        profile: "str | ChaosProfile" = "standard",
        out_dir: Optional[str] = None,
        audit: bool = False,
    ) -> None:
        spec = WORKLOADS.get(workload)
        if spec is None:
            raise ValueError(
                f"unknown workload {workload!r}; choose from "
                f"{sorted(WORKLOADS)}"
            )
        self.spec = spec
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ValueError(
                    f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
                )
            profile = PROFILES[profile]
        self.profile = profile
        self.out_dir = out_dir
        #: Wire a resource-accounting ledger through every campaign run and
        #: surface divergences via the ``resource-conservation`` invariant.
        self.audit = bool(audit)
        self._baselines: dict[tuple[float, float], _Baseline] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _config(self, perturbations: Perturbations, seed: int) -> SimConfig:
        config = perturbations.apply(SimConfig())
        config.seed = seed
        return config

    def baseline(self, perturbations: Perturbations) -> _Baseline:
        """Failure-free reference run, cached per perturbation level."""
        key = perturbations.key()
        cached = self._baselines.get(key)
        if cached is not None:
            return cached
        config = self._config(perturbations, seed=0)
        cluster = Cluster.build(
            self.spec.n_machines, self.spec.executors_per_machine, config=config
        )
        runtime = SwiftRuntime(cluster, swift_policy(), config=config)
        runtime.submit_all(self.spec.build())
        results = runtime.run()
        if not results or any(not r.completed for r in results):
            raise RuntimeError(
                f"failure-free baseline of {self.spec.name} did not complete"
            )
        makespan = max(r.metrics.finish_time for r in results)
        reference = {
            r.job_id: max(r.metrics.latency, 1.0) for r in results
        }
        info = _Baseline(results=results, makespan=makespan, reference=reference)
        self._baselines[key] = info
        return info

    def run_campaign(
        self, campaign: Campaign, tracer: Optional[RecordingTracer] = None
    ) -> CampaignResult:
        """Inject one campaign and check every invariant."""
        base = self.baseline(campaign.perturbations)
        config = self._config(campaign.perturbations, seed=campaign.seed)
        cluster = Cluster.build(
            self.spec.n_machines, self.spec.executors_per_machine, config=config
        )
        jobs = self.spec.build()
        runtime = SwiftRuntime(
            cluster,
            swift_policy(),
            config=config,
            failure_plan=campaign.to_failure_plan(),
            reference_duration=dict(base.reference),
            tracer=tracer,
            # Non-strict so the campaign runs to completion and *all*
            # accounting divergences reach the invariant check.
            audit=self.audit,
            audit_strict=False,
        )
        runtime.submit_all(jobs)
        deadline = base.makespan * WATCHDOG_FACTOR + WATCHDOG_SLACK
        results = runtime.run(until=deadline)
        violations = check_all(
            campaign,
            runtime,
            results,
            base.results,
            [job.job_id for job in jobs],
        )
        runtime.sim.clear_pending()
        makespan = max(
            (r.metrics.finish_time for r in results), default=runtime.sim.now
        )
        return CampaignResult(
            campaign=campaign,
            violations=violations,
            makespan=makespan,
            baseline_makespan=base.makespan,
        )

    # ------------------------------------------------------------------
    # Seeds, shrinking, repro files
    # ------------------------------------------------------------------
    def generate(self, seed: int) -> Campaign:
        """The campaign deterministically derived from ``seed``."""
        return generate_campaign(
            seed, self.spec.name, self.profile, self.spec.n_machines
        )

    def _still_fails(self, campaign: Campaign) -> bool:
        return not self.run_campaign(campaign).passed

    def shrink(self, campaign: Campaign, max_runs: int = 120) -> Campaign:
        """Minimize a failing campaign (see :mod:`repro.chaos.shrink`)."""
        return shrink_campaign(campaign, self._still_fails, max_runs=max_runs)

    def _emit_repro(self, result: CampaignResult) -> None:
        """Write the shrunk campaign's JSON repro + obs failure spans."""
        if self.out_dir is None or result.shrunk is None:
            return
        os.makedirs(self.out_dir, exist_ok=True)
        stem = f"chaos_repro_{result.campaign.workload}_seed{result.campaign.seed}"
        repro_path = os.path.join(self.out_dir, f"{stem}.json")
        result.shrunk.save(repro_path)
        result.repro_path = repro_path
        # Replay the minimal campaign once more with tracing on, keeping
        # only the failure/recovery spans (the debugging trail).
        tracer = RecordingTracer()
        self.run_campaign(result.shrunk, tracer=tracer)
        spans = [
            record
            for record in tracer.records
            if record.cat in (Category.FAILURE, Category.RECOVERY)
        ]
        trace_path = os.path.join(self.out_dir, f"{stem}_obs.jsonl")
        write_jsonl(spans, trace_path)
        result.trace_path = trace_path

    def run_seed(self, seed: int, shrink: bool = True) -> CampaignResult:
        """Generate, run, and (on violation) shrink one seed's campaign."""
        campaign = self.generate(seed)
        result = self.run_campaign(campaign)
        if not result.passed and shrink and campaign.events:
            try:
                result.shrunk = self.shrink(campaign)
            except ValueError:
                # Flaky boundary: the re-run passed.  Keep the original
                # violation report; the unshrunk campaign is the repro.
                result.shrunk = campaign
            self._emit_repro(result)
        return result

    def replay(self, path: str) -> CampaignResult:
        """Re-run a campaign from its JSON repro file."""
        return self.run_campaign(Campaign.load(path))

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        seeds: "list[int] | range",
        jobs: int = 1,
        shrink: bool = True,
    ) -> ChaosReport:
        """Run many seeds; fan out over the parallel cell runner if asked.

        ``jobs > 1`` dispatches campaigns through
        :func:`repro.experiments.parallel.run_cells` (process-pool fan-out
        with the spec-hash cache); ``jobs == 1`` stays in-process, which is
        what tests that monkeypatch runtime internals rely on.
        """
        seed_list = list(seeds)
        if jobs > 1:
            from ..experiments.parallel import Cell, run_cells

            cells = [
                Cell(
                    "repro.experiments.cells",
                    "chaos_campaign_cell",
                    {
                        "seed": seed,
                        "workload": self.spec.name,
                        "profile": self.profile.name,
                        "shrink": shrink,
                        "out_dir": self.out_dir,
                        "audit": self.audit,
                    },
                )
                for seed in seed_list
            ]
            entries = run_cells(cells, jobs=jobs)
        else:
            entries = [
                self.run_seed(seed, shrink=shrink).to_dict() for seed in seed_list
            ]
        passed = sum(1 for e in entries if e["passed"])
        report = ChaosReport(
            workload=self.spec.name,
            profile=self.profile.name,
            runs=len(entries),
            passed=passed,
            failed=len(entries) - passed,
            campaigns=entries,
            repro_files=[
                e["repro_path"] for e in entries if e.get("repro_path")
            ],
        )
        return report
